"""Shared helpers for the benchmark harness (importable by every bench module).

Kept separate from ``conftest.py`` so that benchmark modules can import the
helpers by module name regardless of how pytest loads conftest plugins.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import FusionConfig, PartitionConfig, ResilienceConfig
from repro.paritylab.ledger import Metric, make_record

#: Spatial scale of the benchmark cubes relative to the paper's 320x320.
#: Override with the REPRO_BENCH_SCALE environment variable (1.0 = full size).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: Collected tables, printed by the terminal-summary hook in conftest.py.
REPORT_SINK: List[str] = []


def record_report(title: str, body: str) -> None:
    """Register a regenerated table for the end-of-run summary."""
    REPORT_SINK.append(f"\n{'=' * 78}\n{title}\n{'=' * 78}\n{body}\n")


def scaled_extent(extent: int) -> int:
    """Scale a spatial extent of the paper's setup to the benchmark size."""
    return max(32, int(round(extent * BENCH_SCALE)))


def fusion_config(workers: int, subcubes: int, *, resilient: bool = False,
                  regenerate: bool = True) -> FusionConfig:
    """Benchmark-standard fusion configuration.

    Resilient configurations use the paper's replication level 2 and skip the
    redundant re-execution of replica computations (the virtual-time charge is
    identical; only host wall-clock time is saved).
    """
    config = FusionConfig(partition=PartitionConfig(workers=workers, subcubes=subcubes))
    if resilient:
        config = config.with_resilience(ResilienceConfig(
            replication_level=2, regenerate=regenerate, execute_replicas=False))
    return config


#: ``(name, value, unit, direction)`` shorthand accepted by
#: :func:`write_bench_json` alongside full :class:`Metric` instances.
MetricLike = Union[Metric, Tuple[str, float, str, str]]


def write_bench_json(path: str, benchmark: str,
                     metrics: Sequence[MetricLike], *,
                     payload: Optional[Dict[str, object]] = None,
                     verdict: Optional[str] = None,
                     quick: bool = False) -> Dict[str, object]:
    """Write one schema-versioned bench record (the ``--json`` artifact).

    Every benchmark converges on this helper so the trend ledger
    (``repro-fusion bench-ledger``) can ingest any of their artifacts:
    machine info, git SHA and the metric name/value/unit/direction list
    all follow :data:`repro.paritylab.ledger.RECORD_SCHEMA`.  The
    benchmark's full ad-hoc payload is preserved under ``payload``.
    """
    normalised = [metric if isinstance(metric, Metric) else Metric(*metric)
                  for metric in metrics]
    record = make_record(benchmark, normalised, verdict=verdict,
                         payload=payload, quick=quick)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
    print(f"wrote {path}")
    return record
