"""Shared helpers for the benchmark harness (importable by every bench module).

Kept separate from ``conftest.py`` so that benchmark modules can import the
helpers by module name regardless of how pytest loads conftest plugins.
"""

from __future__ import annotations

import os
from typing import List

from repro.config import FusionConfig, PartitionConfig, ResilienceConfig

#: Spatial scale of the benchmark cubes relative to the paper's 320x320.
#: Override with the REPRO_BENCH_SCALE environment variable (1.0 = full size).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: Collected tables, printed by the terminal-summary hook in conftest.py.
REPORT_SINK: List[str] = []


def record_report(title: str, body: str) -> None:
    """Register a regenerated table for the end-of-run summary."""
    REPORT_SINK.append(f"\n{'=' * 78}\n{title}\n{'=' * 78}\n{body}\n")


def scaled_extent(extent: int) -> int:
    """Scale a spatial extent of the paper's setup to the benchmark size."""
    return max(32, int(round(extent * BENCH_SCALE)))


def fusion_config(workers: int, subcubes: int, *, resilient: bool = False,
                  regenerate: bool = True) -> FusionConfig:
    """Benchmark-standard fusion configuration.

    Resilient configurations use the paper's replication level 2 and skip the
    redundant re-execution of replica computations (the virtual-time charge is
    identical; only host wall-clock time is saved).
    """
    config = FusionConfig(partition=PartitionConfig(workers=workers, subcubes=subcubes))
    if resilient:
        config = config.with_resilience(ResilienceConfig(
            replication_level=2, regenerate=regenerate, execute_replicas=False))
    return config
