"""Ablation: computational resiliency versus static replication under attack.

Section 2 argues that replication alone "provides graceful degradation of
system performance to the point of failure [but] is clearly not sufficient to
aggressively recover assured operation", whereas computational resiliency
regenerates lost replicas.  This ablation injects the same attack campaigns
into three configurations -- resilient (regeneration on), static replication
(regeneration off) and static replication rescued only by application-level
task reassignment -- and tabulates completion, correctness, run time,
failures and regenerations.
"""

import numpy as np
import pytest

from _bench_utils import fusion_config, record_report
from repro.analysis.report import format_table
from repro.baselines.static_replication import StaticReplicationPCT
from repro.core.pipeline import SpectralScreeningPCT
from repro import fuse
from repro.resilience.attack import AttackScenario


class _FacadeEngine:
    """Give the facade the same ``.fuse(cube)`` shape as the baseline engine
    so both variants run through one loop (FusionReport already exposes
    ``elapsed_seconds``/``failures_injected``/``replicas_regenerated``)."""

    def __init__(self, config, attack=None):
        self.config = config
        self.attack = attack

    def fuse(self, cube):
        return fuse(cube, engine="resilient", config=self.config, attack=self.attack)


def scenarios(workers=4):
    return {
        "single replica kill": AttackScenario.single_worker_kill("worker.1", at=0.5),
        "node outage": AttackScenario.node_outage("sun02", at=0.5),
        "group wipe-out": AttackScenario.group_wipeout("worker.0", at=0.5, replicas=2),
        "sustained assault": AttackScenario.sustained_assault(
            [f"worker.{i}" for i in range(workers)], start=0.5, interval=1.0,
            rounds=6, seed=9),
    }


@pytest.fixture(scope="module")
def recovery_results(small_eval_cube):
    cube = small_eval_cube
    workers, subcubes = 4, 8
    reference = SpectralScreeningPCT(fusion_config(workers, subcubes)).fuse(cube)

    rows = []
    outcomes = {}
    for scenario_name, scenario in scenarios(workers).items():
        for variant_name, factory in {
            "resilient": lambda s: _FacadeEngine(
                fusion_config(workers, subcubes, resilient=True), attack=s),
            "static replication + reassignment": lambda s: StaticReplicationPCT(
                fusion_config(workers, subcubes, resilient=True), attack=s,
                reassign_timeout=5.0),
        }.items():
            engine = factory(scenario)
            outcome = engine.fuse(cube)
            correct = bool(np.array_equal(outcome.result.composite, reference.composite))
            rows.append([scenario_name, variant_name, outcome.elapsed_seconds,
                         outcome.failures_injected, outcome.replicas_regenerated,
                         "yes" if correct else "NO"])
            outcomes[(scenario_name, variant_name)] = (outcome, correct)
    return rows, outcomes


def test_ablation_recovery_vs_static_replication(benchmark, small_eval_cube,
                                                 recovery_results):
    rows, outcomes = recovery_results

    attack = AttackScenario.group_wipeout("worker.0", at=0.5, replicas=2)
    benchmark.pedantic(
        lambda: fuse(small_eval_cube, engine="resilient",
                     config=fusion_config(4, 8, resilient=True), attack=attack),
        rounds=1, iterations=1)

    table = format_table(
        ["attack scenario", "configuration", "time (virtual s)", "failures",
         "regenerated", "correct output"],
        rows,
        title="Recovery ablation: dynamic regeneration vs static replication "
              "under identical attack campaigns")
    record_report("Ablation - resiliency vs static replication under attack", table)

    # Every configuration that completed produced the correct composite.
    assert all(correct for _, correct in outcomes.values())
    # The resilient configuration regenerates replicas whenever a whole group
    # or node is taken out; the static one never does.
    wipeout_resilient, _ = outcomes[("group wipe-out", "resilient")]
    assert wipeout_resilient.replicas_regenerated >= 1
    for (scenario_name, variant_name), (outcome, _) in outcomes.items():
        if "static" in variant_name:
            assert outcome.replicas_regenerated == 0

    # After a sustained assault the resilient system has restored every worker
    # group to its target replication level.
    assault_outcome, _ = outcomes[("sustained assault", "resilient")]
    report = assault_outcome.resilience["replication"]
    assert all(entry["live"] >= 1 for entry in report.values())
