"""Ablation: spectral screening versus plain (unscreened) PCT.

Section 3 motivates spectral screening as the guard against the PCT
"highlighting only the variation that dominates numerically": without it a
rare target contributes almost nothing to the covariance and can be washed
out of the leading components.  This ablation fuses the same scene with and
without screening and compares target contrast and the cost of the screening
pass, and also quantifies the optional re-screening merge (step 2 variant).
"""

import dataclasses

import pytest

from _bench_utils import fusion_config, record_report
from repro.analysis.quality import target_contrast
from repro.analysis.report import format_table
from repro.baselines.plain_pct import PlainPCT
from repro.config import ScreeningConfig
from repro.core.pipeline import SpectralScreeningPCT


@pytest.fixture(scope="module")
def ablation_results(small_eval_cube):
    cube = small_eval_cube
    mask = cube.metadata["target_mask"]
    config = fusion_config(workers=1, subcubes=4)

    screened = SpectralScreeningPCT(config).fuse(cube)
    plain = PlainPCT(config).fuse(cube)

    rescreen_config = dataclasses.replace(
        config, screening=dataclasses.replace(config.screening, rescreen_merge=True))
    rescreened = SpectralScreeningPCT(rescreen_config).fuse(cube)

    return {
        "screened": (screened, target_contrast(screened.composite, mask)),
        "plain": (plain, target_contrast(plain.composite, mask)),
        "rescreen-merge": (rescreened, target_contrast(rescreened.composite, mask)),
    }


def test_ablation_screening_vs_plain_pct(benchmark, small_eval_cube, ablation_results):
    cube = small_eval_cube
    config = fusion_config(workers=1, subcubes=4)
    benchmark.pedantic(lambda: SpectralScreeningPCT(config).fuse(cube),
                       rounds=1, iterations=1)

    rows = []
    for name, (result, contrast) in ablation_results.items():
        rows.append([name, result.unique_set_size, contrast,
                     float(result.basis.explained_variance_ratio()[:3].sum())])
    table = format_table(
        ["variant", "statistics sample size (K)", "target contrast",
         "variance in 3 PCs"],
        rows,
        title="Screening ablation: statistics over the screened unique set vs "
              "over every pixel (plain PCT)")
    record_report("Ablation - spectral screening vs plain PCT", table)

    screened_result, screened_contrast = ablation_results["screened"]
    plain_result, plain_contrast = ablation_results["plain"]
    # Screening collapses the statistics sample from every pixel to a small set.
    assert screened_result.unique_set_size < plain_result.unique_set_size / 4
    # Without losing the ability to separate the rare targets.
    assert screened_contrast >= plain_contrast * 0.8
    assert screened_contrast > 1.0


def test_ablation_union_vs_rescreen_merge(benchmark, small_eval_cube, ablation_results):
    union_result, union_contrast = ablation_results["screened"]
    rescreen_result, rescreen_contrast = ablation_results["rescreen-merge"]
    # Time the re-screening merge variant (runs under --benchmark-only).
    rescreen_config = dataclasses.replace(
        fusion_config(1, 4),
        screening=ScreeningConfig(rescreen_merge=True))
    benchmark.pedantic(lambda: SpectralScreeningPCT(rescreen_config).fuse(small_eval_cube),
                       rounds=1, iterations=1)
    # Re-screening the merged set removes cross-partition near-duplicates.
    assert rescreen_result.unique_set_size <= union_result.unique_set_size
    # The composites stay equally useful for target detection.
    assert rescreen_contrast > 1.0
    assert union_contrast > 1.0
