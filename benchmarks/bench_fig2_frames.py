"""Figure 2: raw HYDICE spectral frames at 400 nm and 1998 nm.

The paper's Figure 2 shows two of the 210 collected frames.  This benchmark
regenerates the equivalent artefacts from the synthetic collection: it times
the end-to-end data generation and reports, for the two wavelengths the paper
displays, the frame statistics and the single-band target contrast (which the
fused composite of Figure 3 must beat).
"""

import numpy as np

from _bench_utils import record_report
from repro.analysis.quality import target_contrast
from repro.analysis.report import format_table
from repro.data.hydice import HydiceConfig, HydiceGenerator

#: The wavelengths shown in the paper's Figure 2.
FIGURE2_WAVELENGTHS_NM = (400.0, 1998.0)


def test_fig2_spectral_frames(benchmark, figure4_cube):
    cube = figure4_cube
    mask = cube.metadata["target_mask"]

    def extract_frames():
        return [cube.band_nearest(wl) for wl in FIGURE2_WAVELENGTHS_NM]

    frames = benchmark(extract_frames)

    rows = []
    for wavelength, (index, frame) in zip(FIGURE2_WAVELENGTHS_NM, frames):
        rows.append([
            f"{wavelength:.0f} nm",
            index,
            float(frame.mean()),
            float(frame.std()),
            float(frame.min()),
            float(frame.max()),
            target_contrast(frame, mask),
        ])
    table = format_table(
        ["frame", "band index", "mean", "std", "min", "max", "target contrast"],
        rows,
        title=(f"Figure 2 analogue: raw spectral frames of the synthetic HYDICE "
               f"collection ({cube.bands} bands, {cube.rows}x{cube.cols})"),
    )
    record_report("Figure 2 - raw spectral frames", table)

    for _, (index, frame) in zip(FIGURE2_WAVELENGTHS_NM, frames):
        assert frame.shape == (cube.rows, cube.cols)
        assert np.isfinite(frame).all()
    # The two frames sample very different spectral regions and must differ.
    assert not np.allclose(frames[0][1], frames[1][1])


def test_fig2_collection_generation(benchmark):
    """Time the generation of a (reduced) HYDICE-like collection itself."""
    config = HydiceConfig(bands=210, rows=64, cols=64, seed=7)

    cube = benchmark(lambda: HydiceGenerator(config).generate())
    assert cube.bands == 210
    assert cube.metadata["target_mask"].any()
