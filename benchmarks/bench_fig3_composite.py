"""Figure 3: the colour-composite image produced by the full fusion pipeline.

The paper shows the composite of the full 210-frame data set and reports that
contrast is "significantly improved" and that the camouflaged vehicle in the
lower-left corner is "significantly enhanced against its background".  This
benchmark regenerates the composite from the synthetic collection, times the
end-to-end fusion and quantifies both claims with a signal-to-clutter target
contrast metric:

* the composite separates the vehicles at least as well as the *best* of the
  210 raw bands and far better than a typical (median) band -- without an
  analyst having to know which band to look at, and
* the camouflaged vehicle specifically is enhanced beyond every raw band and
  beyond the unscreened (plain PCT) composite, which is the paper's central
  motivation for spectral screening.
"""

import numpy as np
import pytest

from _bench_utils import fusion_config, record_report
from repro.analysis.quality import rms_contrast, target_contrast
from repro.analysis.report import format_table
from repro.baselines.plain_pct import PlainPCT
from repro.core.pipeline import SpectralScreeningPCT


def camouflage_mask(cube):
    mask = np.zeros(cube.metadata["target_mask"].shape, dtype=bool)
    for vehicle in cube.metadata["vehicles"]:
        if vehicle.camouflaged:
            mask[vehicle.row:vehicle.row + vehicle.height,
                 vehicle.col:vehicle.col + vehicle.width] = True
    return mask


def band_contrast_statistics(cube, mask, stride=5):
    values = np.array([target_contrast(cube.band(b), mask)
                       for b in range(0, cube.bands, stride)])
    return float(np.median(values)), float(values.max())


@pytest.fixture(scope="module")
def figure3_results(figure4_cube):
    cube = figure4_cube
    config = fusion_config(workers=1, subcubes=2)
    screened = SpectralScreeningPCT(config).fuse(cube)
    plain = PlainPCT(config).fuse(cube)
    return screened, plain


def test_fig3_color_composite(benchmark, figure4_cube, figure3_results):
    cube = figure4_cube
    all_targets = cube.metadata["target_mask"]
    camo = camouflage_mask(cube)
    screened, plain = figure3_results

    config = fusion_config(workers=1, subcubes=2)
    benchmark.pedantic(lambda: SpectralScreeningPCT(config).fuse(cube),
                       rounds=1, iterations=1)

    median_band, best_band = band_contrast_statistics(cube, all_targets)
    camo_median_band, camo_best_band = band_contrast_statistics(cube, camo)
    fused = target_contrast(screened.composite, all_targets)
    fused_camo = target_contrast(screened.composite, camo)
    plain_camo = target_contrast(plain.composite, camo)

    rows = [
        ["all vehicles", median_band, best_band,
         target_contrast(plain.composite, all_targets), fused],
        ["camouflaged vehicle", camo_median_band, camo_best_band, plain_camo, fused_camo],
    ]
    table = format_table(
        ["target", "median raw band", "best raw band", "plain PCT composite",
         "screened PCT composite"],
        rows,
        title=(f"Figure 3 analogue: target contrast (signal-to-clutter) of the fused "
               f"composite vs the raw bands "
               f"({cube.bands} bands, {cube.rows}x{cube.cols}, K={screened.unique_set_size})"))
    extra = format_table(
        ["metric", "value"],
        [["unique set size (K)", screened.unique_set_size],
         ["variance captured by 3 PCs", float(screened.basis.explained_variance_ratio()[:3].sum())],
         ["composite RMS contrast", rms_contrast(screened.composite.mean(axis=-1))]],
        title="composite summary")
    record_report("Figure 3 - colour-composite fusion result", table + "\n\n" + extra)

    # --- the paper's qualitative claims, made quantitative -----------------
    assert screened.composite.shape == (cube.rows, cube.cols, 3)
    # Improved contrast: the single composite separates the targets far better
    # than a typical raw band and at least as well as the best raw band.
    assert fused > 1.3 * median_band
    assert fused > 0.95 * best_band
    # The camouflaged vehicle is enhanced against its background: better than
    # every raw band and clearly detectable.
    assert fused_camo > camo_best_band
    assert fused_camo > 1.5 * camo_median_band


def test_fig3_screening_preserves_camouflaged_target(benchmark, figure4_cube,
                                                     figure3_results):
    """Spectral screening's motivating claim: without it, the statistics are
    dominated by the frequent background materials and the rare camouflaged
    signature is washed out of the leading components."""
    cube = figure4_cube
    camo = camouflage_mask(cube)
    screened, plain = figure3_results

    benchmark.pedantic(lambda: target_contrast(screened.composite, camo),
                       rounds=1, iterations=1)

    screened_camo = target_contrast(screened.composite, camo)
    plain_camo = target_contrast(plain.composite, camo)
    assert screened_camo > plain_camo, (
        "screening should enhance the camouflaged vehicle relative to plain PCT")
