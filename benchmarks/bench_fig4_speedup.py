"""Figure 4: speed-up with and without resiliency.

The paper runs the concurrent algorithm on 1, 2, 4, 8 and 16 workstations,
once without resiliency and once with every worker replicated to level 2 (the
manager, representing the sensor, is never replicated), and reports:

* the concurrent algorithm operates within ~20% of linear speed-up,
* the resilient runs cost roughly the replication factor (2x), and
* the protocols add approximately 10% on top of the replication cost.

This benchmark regenerates both series on the simulated Sun/100BaseT cluster
via :func:`repro.experiments.run_figure4` and prints the Figure 4 table, the
log-log chart and the overhead decomposition.  Absolute seconds are virtual
(simulated) time; the quantities compared with the paper are the
speed-up/efficiency shape and the overhead decomposition.
"""

import pytest

from _bench_utils import fusion_config, record_report
from repro.config import PAPER_SETUP
from repro import fuse
from repro.experiments import run_figure4

#: Fixed decomposition used for every processor count (the paper's observed
#: sweet spot); keeping it constant makes the total work identical across the
#: sweep so the curves measure parallelisation, not granularity effects.
FIGURE4_SUBCUBES = 32


@pytest.fixture(scope="module")
def figure4_result(figure4_cube):
    return run_figure4(figure4_cube, subcubes=FIGURE4_SUBCUBES)


def test_fig4_speedup_with_and_without_resiliency(benchmark, figure4_cube, figure4_result):
    result = figure4_result

    # Register a representative single point with pytest-benchmark (the sweep
    # itself is produced once by the module fixture).
    config = fusion_config(PAPER_SETUP.figure4_processors[-1], FIGURE4_SUBCUBES)
    benchmark.pedantic(lambda: fuse(figure4_cube, engine="distributed", config=config),
                       rounds=1, iterations=1)

    record_report("Figure 4 - speed-up with and without resiliency", result.report())

    # --- shape assertions -------------------------------------------------
    speedups = result.plain.speedup()
    # Speed-up must grow monotonically with the processor count.
    ordered = [speedups[p] for p in PAPER_SETUP.figure4_processors]
    assert all(later > earlier for earlier, later in zip(ordered, ordered[1:]))
    # Within (roughly) the paper's 20%-of-linear envelope through 8 processors
    # and not collapsing at 16.
    efficiency = result.plain.efficiency()
    assert efficiency[2] > 0.85
    assert efficiency[8] > 0.75
    assert efficiency[16] > 0.55
    # No super-linear artefacts.
    assert max(efficiency.values()) <= 1.05


def test_fig4_resiliency_overhead_decomposition(benchmark, figure4_result):
    result = figure4_result
    # Register the (cheap) decomposition itself with pytest-benchmark so this
    # check also runs under --benchmark-only.
    benchmark(result.mean_protocol_overhead)

    for d in result.decompositions:
        # The resilient run costs roughly the replication factor...
        assert 1.6 < d.total_slowdown < 2.4
        # ...and the protocol overhead beyond replication stays modest
        # (the paper measures about +10%; our protocol cost model is within
        # a band of that figure on either side, see EXPERIMENTS.md).
        assert -0.20 < d.protocol_overhead_fraction < 0.20

    # The two curves are roughly parallel: the resiliency overhead is
    # "uniform" across processor counts, as the paper states.
    slowdowns = [d.total_slowdown for d in result.decompositions]
    assert max(slowdowns) - min(slowdowns) < 0.5
