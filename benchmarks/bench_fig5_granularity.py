"""Figure 5: granularity control.

The paper decomposes the 320x320x105 cube into #sub-cubes equal to 1x, 2x and
3x the number of workers and shows that over-decomposition lets computation
and communication overlap, improving run time -- until the sub-cubes become
so small (past ~32 for this problem size) that per-message overhead dominates
and performance tails off.

This benchmark regenerates the three Figure 5 series over 2, 4, 8 and 16
workers and an additional tail-off sweep at 16 workers, via
:func:`repro.experiments.run_figure5`.
"""

import pytest

from _bench_utils import fusion_config, record_report
from repro.config import PAPER_SETUP
from repro import fuse
from repro.experiments import run_figure5

#: Sub-cube counts swept to expose the tail-off past the paper's ~32 sub-cubes.
TAIL_OFF_SUBCUBES = (16, 32, 48, 96, 128)


@pytest.fixture(scope="module")
def figure5_result(figure5_cube):
    return run_figure5(figure5_cube, tail_off_subcubes=TAIL_OFF_SUBCUBES)


def test_fig5_granularity_control(benchmark, figure5_cube, figure5_result):
    result = figure5_result

    # Representative single point for pytest-benchmark.
    config = fusion_config(16, 32)
    benchmark.pedantic(lambda: fuse(figure5_cube, engine="distributed", config=config),
                       rounds=1, iterations=1)

    record_report("Figure 5 - granularity control", result.report())

    for workers in PAPER_SETUP.figure5_processors:
        base = result.curves[1].time_at(workers)
        doubled = result.curves[2].time_at(workers)
        tripled = result.curves[3].time_at(workers)
        # Over-decomposition by 2x enables computation/communication overlap.
        assert doubled < base, (
            f"2x over-decomposition should be faster at P={workers}")
        # 3x is comparable to 2x (the paper's curves nearly coincide).
        assert tripled < base
        assert abs(tripled - doubled) / doubled < 0.25
        # The improvement is a genuine, measurable effect.
        assert result.improvement_from_overlap(workers) > 0.0


def test_fig5_tail_off_past_32_subcubes(benchmark, figure5_cube, figure5_result):
    times = figure5_result.tail_off
    # Representative point at the finest decomposition (runs under --benchmark-only).
    benchmark.pedantic(
        lambda: fuse(figure5_cube, engine="distributed",
                     config=fusion_config(16, max(TAIL_OFF_SUBCUBES))),
        rounds=1, iterations=1)

    best_subcubes = figure5_result.best_subcubes()
    # The sweet spot lies in the paper's 2-3x over-decomposition region ...
    assert 32 <= best_subcubes <= 96
    # ... and decomposing far beyond it stops helping (tail-off).
    assert times[max(TAIL_OFF_SUBCUBES)] >= times[best_subcubes]
    # The coarsest decomposition is never the best one.
    assert times[16] > times[best_subcubes]
