"""Compute-kernel tier: registered backends vs the unfused step functions.

The PR-10 tentpole added a pluggable compute-kernel registry
(:mod:`repro.core.kernels`): named, bit-identical implementations of the
hot covariance and step-7/8 kernels -- scratch-pooled ``out=`` BLAS for the
``numpy`` tier, jit-fused elementwise passes around the *same* BLAS
reductions for the ``numba`` tier.  This benchmark measures them old vs
new on the acceptance scene (a synthetic 256x256x64 HYDICE cube;
``--quick`` shrinks it for the CI smoke job):

* **covariance** -- fused centre+SYRK partial over the scene's pixel
  matrix, against :func:`repro.core.steps.statistics.covariance_sum`;
* **projection** -- fused centre+project+stretch+mix of the whole scene,
  against :func:`~repro.core.steps.transform.project_cube_block` followed
  by :func:`~repro.core.steps.colormap.color_map`.

Before any number is trusted, every backend's outputs are checked
**bit-identical** to the unfused float64 reference -- the tier is only
allowed to change the clock, never a bit.  The acceptance gate asserts a
**>= 2x** combined covariance+projection speed-up, but only when numba is
importable (the jit tier is the one making that claim); without numba the
numpy tier's measured speed-up is recorded ungated so the trend ledger can
still watch it drift::

    python benchmarks/bench_kernel_tier.py --quick --json kernel_tier.json
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from _bench_utils import record_report, write_bench_json
from repro.analysis.report import format_table
from repro.core.kernels import NumbaBackend, resolve_compute
from repro.core.steps.colormap import color_map, color_map_flops, component_statistics
from repro.core.steps.statistics import (covariance_matrix, covariance_sum,
                                         covariance_sum_flops, mean_vector)
from repro.core.steps.transform import (project, project_cube_block,
                                        projection_flops,
                                        transformation_matrix)
from repro.data.hydice import HydiceConfig, HydiceGenerator

#: Required combined covariance+projection speed-up of the jit tier over
#: the unfused step functions; asserted only when numba is importable.
REQUIRED_SPEEDUP = 2.0

#: Timed repetitions per kernel; the minimum is reported.
ROUNDS = 3


def _scene(*, quick: bool):
    """The acceptance scene (256x256x64; smaller in CI smoke mode)."""
    extent, bands = (96, 32) if quick else (256, 64)
    return HydiceGenerator(HydiceConfig(bands=bands, rows=extent, cols=extent,
                                        seed=7)).generate()


@dataclass
class TierPoint:
    """Old-vs-new measurement of one compute backend."""

    compute: str
    covariance_seconds: float
    projection_seconds: float
    seed_covariance_seconds: float
    seed_projection_seconds: float
    n_pixels: int
    bands: int

    @property
    def combined_speedup(self) -> float:
        old = self.seed_covariance_seconds + self.seed_projection_seconds
        return old / (self.covariance_seconds + self.projection_seconds)

    @property
    def covariance_speedup(self) -> float:
        return self.seed_covariance_seconds / self.covariance_seconds

    @property
    def projection_speedup(self) -> float:
        return self.seed_projection_seconds / self.projection_seconds

    @property
    def covariance_gflops(self) -> float:
        flops = covariance_sum_flops(self.n_pixels, self.bands)
        return flops / self.covariance_seconds / 1e9

    @property
    def projection_gflops(self) -> float:
        flops = (projection_flops(self.n_pixels, self.bands, self.bands)
                 + color_map_flops(self.n_pixels))
        return flops / self.projection_seconds / 1e9

    def as_dict(self) -> Dict[str, object]:
        return {
            "compute": self.compute,
            "covariance_seconds": self.covariance_seconds,
            "projection_seconds": self.projection_seconds,
            "seed_covariance_seconds": self.seed_covariance_seconds,
            "seed_projection_seconds": self.seed_projection_seconds,
            "covariance_speedup": self.covariance_speedup,
            "projection_speedup": self.projection_speedup,
            "combined_speedup": self.combined_speedup,
            "covariance_gflops": self.covariance_gflops,
            "projection_gflops": self.projection_gflops,
        }


@dataclass
class TierSweep:
    """The full per-backend sweep plus judging context."""

    points: List[TierPoint]
    n_pixels: int
    bands: int
    rounds: int
    numba_available: bool

    def best_point(self) -> TierPoint:
        return max(self.points, key=lambda p: p.combined_speedup)

    def report(self) -> str:
        rows = [[p.compute,
                 f"{p.seed_covariance_seconds:.4f}", f"{p.covariance_seconds:.4f}",
                 f"{p.covariance_speedup:.2f}x",
                 f"{p.seed_projection_seconds:.4f}", f"{p.projection_seconds:.4f}",
                 f"{p.projection_speedup:.2f}x", f"{p.combined_speedup:.2f}x"]
                for p in self.points]
        return format_table(
            ["compute", "cov_old_s", "cov_s", "cov_x",
             "proj_old_s", "proj_s", "proj_x", "combined"],
            rows,
            title=f"compute-kernel tier, {self.n_pixels:,} pixels x "
                  f"{self.bands} bands, best of {self.rounds}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_pixels": self.n_pixels,
            "bands": self.bands,
            "rounds": self.rounds,
            "numba_available": self.numba_available,
            "required_speedup": REQUIRED_SPEEDUP,
            "points": [p.as_dict() for p in self.points],
        }


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(*, quick: bool) -> TierSweep:
    cube = _scene(quick=quick)
    pixels = cube.data.reshape(cube.bands, -1).T.copy()
    rounds = 2 if quick else ROUNDS
    mean = mean_vector(pixels)
    covariance = covariance_matrix([covariance_sum(pixels, mean)],
                                   total_pixels=pixels.shape[0])
    basis = transformation_matrix(covariance, mean, n_components=cube.bands)
    stretch_mean, stretch_std = component_statistics(
        project(pixels, basis)[:, :3])

    # The unfused float64 reference: the step functions the kernels replace.
    def seed_covariance():
        return covariance_sum(pixels, mean)

    def seed_projection():
        components = project_cube_block(cube.data, basis)[..., :3]
        composite = color_map(components, normalize=True,
                              mean=stretch_mean, std=stretch_std)
        return components, composite

    reference_cov = seed_covariance()
    reference_components, reference_composite = seed_projection()
    seed_cov_seconds = _best_of(seed_covariance, rounds)
    seed_proj_seconds = _best_of(seed_projection, rounds)

    computes = ["numpy"] + (["numba"] if NumbaBackend.available() else [])
    points = []
    for compute in computes:
        kernel = resolve_compute(compute)

        def tier_covariance(k=kernel):
            return k.covariance_sum(pixels, mean)

        def tier_projection(k=kernel):
            return k.project_and_map(cube.data, basis, n_components=3,
                                     normalize=True, stretch_mean=stretch_mean,
                                     stretch_std=stretch_std)

        # Bit-identity is re-checked before any timing is trusted: the tier
        # may only move the clock, never a bit of the float64 outputs.
        tier_cov = tier_covariance()
        tier_components, tier_composite = tier_projection()
        if not np.array_equal(tier_cov, reference_cov):
            raise AssertionError(
                f"compute={compute!r} covariance partial diverged from the "
                f"unfused reference -- outputs must be bit-identical")
        if not (np.array_equal(tier_components, reference_components)
                and np.array_equal(tier_composite, reference_composite)):
            raise AssertionError(
                f"compute={compute!r} fused projection diverged from the "
                f"unfused reference -- outputs must be bit-identical")

        points.append(TierPoint(
            compute=compute,
            covariance_seconds=_best_of(tier_covariance, rounds),
            projection_seconds=_best_of(tier_projection, rounds),
            seed_covariance_seconds=seed_cov_seconds,
            seed_projection_seconds=seed_proj_seconds,
            n_pixels=pixels.shape[0], bands=cube.bands))
    return TierSweep(points=points, n_pixels=pixels.shape[0],
                     bands=cube.bands, rounds=rounds,
                     numba_available=NumbaBackend.available())


def check_tier_speedup(sweep: TierSweep) -> str:
    """The acceptance gate: >= 2x combined covariance+projection.

    The 2x claim belongs to the jit tier, so the gate only arms when numba
    is importable; the always-available numpy tier's measured speed-up is
    still recorded (ungated) so the trend ledger watches it drift.
    """
    best = sweep.best_point()
    if not sweep.numba_available:
        return (f"UNGATED: numba not installed; numpy tier measured "
                f"{best.combined_speedup:.2f}x combined "
                f"covariance+projection (bit-identical outputs)")
    if best.combined_speedup < REQUIRED_SPEEDUP:
        raise AssertionError(
            f"compute tier measured only {best.combined_speedup:.2f}x the "
            f"unfused step functions on combined covariance+projection; "
            f"gate is {REQUIRED_SPEEDUP}x")
    return (f"PASS: {best.combined_speedup:.2f}x combined "
            f"covariance+projection via compute={best.compute!r} "
            f"(gate {REQUIRED_SPEEDUP}x); bit-identical outputs")


# --------------------------------------------------------------------------
# pytest entry point
# --------------------------------------------------------------------------

def test_kernel_tier_beats_step_functions(benchmark):
    sweep = measure(quick=False)
    verdict = check_tier_speedup(sweep)
    record_report("Compute-kernel tier: backends vs unfused step functions",
                  f"{sweep.report()}\n{verdict}")
    if sweep.numba_available:
        assert sweep.best_point().combined_speedup >= REQUIRED_SPEEDUP

    cube = _scene(quick=True)
    pixels = cube.data.reshape(cube.bands, -1).T.copy()
    mean = mean_vector(pixels)
    kernel = resolve_compute("numpy")
    benchmark.pedantic(lambda: kernel.covariance_sum(pixels, mean),
                       rounds=3, iterations=1)


# --------------------------------------------------------------------------
# standalone entry point (CI smoke job artifact)
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the registered compute backends against the "
                    "unfused step functions (bit-identical outputs)")
    parser.add_argument("--quick", action="store_true",
                        help="96x96x32 scene (CI smoke mode); default is the "
                             "256x256x64 acceptance scene")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the measured sweep to this JSON file")
    args = parser.parse_args(argv)

    sweep = measure(quick=args.quick)
    verdict = check_tier_speedup(sweep)
    print(sweep.report())
    print(verdict)

    if args.json_path:
        metrics = []
        for point in sweep.points:
            metrics.append((f"cov_speedup_{point.compute}",
                            point.covariance_speedup, "x", "higher"))
            metrics.append((f"proj_speedup_{point.compute}",
                            point.projection_speedup, "x", "higher"))
            metrics.append((f"combined_speedup_{point.compute}",
                            point.combined_speedup, "x", "higher"))
            metrics.append((f"proj_gflops_{point.compute}",
                            point.projection_gflops, "GFLOP/s", "higher"))
        write_bench_json(args.json_path, "kernel_tier", metrics,
                         payload=sweep.as_dict(), verdict=verdict,
                         quick=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
