"""Streaming pipeline throughput: cubes/second for a queue of fusions.

The service-shaped question behind the pipeline engine: when N independent
fusion requests are queued, how many composites per second does the system
produce?  The serial baseline runs the sequential reference engine request
after request (one process, whole-cube batches); the streaming path opens a
``pipeline`` session and pushes the same queue through
``session.fuse_stream``, overlapping the stages of several cubes on the
worker slots with a bounded in-flight window.

Acceptance gate (the ISSUE's criterion): on a host with >= 4 usable cores
the streaming path must deliver **>= 1.3x** the serial cubes/sec.  On
smaller hosts the numbers are recorded and the assertion is skipped, the
established policy of the other measured benchmarks.  Composites are
checked bit-identical across the two paths before any timing is trusted.

The module doubles as a standalone script for the CI smoke job::

    python benchmarks/bench_pipeline_throughput.py --quick --json pipeline_throughput.json
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from _bench_utils import record_report, scaled_extent, write_bench_json
import repro
from repro.data.hydice import HydiceConfig, HydiceGenerator
from repro.experiments.measured import available_cpus
from repro.scp.pool import default_start_method

#: Queued fusion requests per path (the ISSUE's "8 queued fusions").
QUEUE_DEPTH = 8

#: Worker slots of the full benchmark (CI smoke uses --quick's 2).
WORKERS = 4

#: Concurrent cubes kept in flight by the streaming path.
MAX_INFLIGHT = 4

#: Required streaming speed-up on hosts with >= 4 usable cores.
REQUIRED_SPEEDUP = 1.3


def _cubes(*, quick: bool, depth: int) -> List:
    extent = 48 if quick else scaled_extent(160)
    bands = 24 if quick else 64
    return [HydiceGenerator(HydiceConfig(bands=bands, rows=extent, cols=extent,
                                         seed=60 + index)).generate()
            for index in range(depth)]


@dataclass
class PipelineThroughputResult:
    """Measured rates of the two paths plus the judging context."""

    queue_depth: int
    workers: int
    max_inflight: int
    serial_seconds: float
    pipeline_seconds: float
    available_cpus: int

    @property
    def serial_cubes_per_second(self) -> float:
        return self.queue_depth / self.serial_seconds

    @property
    def pipeline_cubes_per_second(self) -> float:
        return self.queue_depth / self.pipeline_seconds

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.pipeline_seconds

    def report(self) -> str:
        return "\n".join([
            f"{self.queue_depth} queued fusions, {self.workers} worker slots, "
            f"max_inflight={self.max_inflight} "
            f"({self.available_cpus} usable CPUs)",
            f"  serial sequential fuse_many : {self.serial_seconds:8.3f} s "
            f"({self.serial_cubes_per_second:6.2f} cubes/s)",
            f"  pipeline fuse_stream        : {self.pipeline_seconds:8.3f} s "
            f"({self.pipeline_cubes_per_second:6.2f} cubes/s)",
            f"  streaming speed-up          : {self.speedup:8.2f}x",
        ])

    def as_dict(self) -> Dict[str, object]:
        return {
            "queue_depth": self.queue_depth,
            "workers": self.workers,
            "max_inflight": self.max_inflight,
            "serial_seconds": self.serial_seconds,
            "pipeline_seconds": self.pipeline_seconds,
            "serial_cubes_per_second": self.serial_cubes_per_second,
            "pipeline_cubes_per_second": self.pipeline_cubes_per_second,
            "speedup": self.speedup,
            "available_cpus": self.available_cpus,
        }


def measure(*, quick: bool, depth: int = QUEUE_DEPTH) -> PipelineThroughputResult:
    """Time the same queue of fusions through both paths.

    The serial baseline is the sequential engine -- the strongest
    single-process implementation, so the measured gain is the streaming
    overlap, not a weak straw man.  Every streamed composite is checked
    bit-identical to its serial counterpart.
    """
    cubes = _cubes(quick=quick, depth=depth)
    workers = 2 if quick else WORKERS
    inflight = 2 if quick else MAX_INFLIGHT
    method = default_start_method()

    with repro.open_session(engine="sequential", workers=workers,
                            subcubes=workers * 2) as serial_session:
        start = time.perf_counter()
        serial_reports = serial_session.fuse_many(cubes)
        serial_seconds = time.perf_counter() - start

    with repro.open_session(engine="pipeline", backend=f"process:{method}",
                            workers=workers, subcubes=workers * 2,
                            max_inflight=inflight,
                            max_placements=depth) as session:
        start = time.perf_counter()
        pipeline_reports = list(session.fuse_stream(cubes))
        pipeline_seconds = time.perf_counter() - start

    for serial, streamed in zip(serial_reports, pipeline_reports):
        if not np.array_equal(serial.composite, streamed.composite):
            raise AssertionError("streamed composite diverged from the "
                                 "sequential reference")

    return PipelineThroughputResult(queue_depth=depth, workers=workers,
                                    max_inflight=inflight,
                                    serial_seconds=serial_seconds,
                                    pipeline_seconds=pipeline_seconds,
                                    available_cpus=available_cpus())


def check_throughput(result: PipelineThroughputResult, *,
                     assert_speedup: bool = True) -> str:
    """The acceptance gate, core-count gated like the other measured benches."""
    measured = result.speedup
    if result.available_cpus < 4:
        return (f"SKIPPED pipeline-throughput assertion: host exposes "
                f"{result.available_cpus} usable core(s); >= 4 required "
                f"(measured {measured:.2f}x)")
    if not assert_speedup:
        return (f"INFO (smoke mode): streaming ran {measured:.2f}x the serial "
                f"rate; the full benchmark asserts >= {REQUIRED_SPEEDUP}x")
    if measured < REQUIRED_SPEEDUP:
        # An explicit raise (not `assert`) so the acceptance gate survives -O.
        raise AssertionError(
            f"streaming throughput below the gate: {measured:.2f}x < "
            f"{REQUIRED_SPEEDUP}x over {result.queue_depth} queued fusions")
    return (f"PASS: streaming delivered {measured:.2f}x the serial cubes/sec "
            f"(gate {REQUIRED_SPEEDUP}x)")


# --------------------------------------------------------------------------
# pytest entry point
# --------------------------------------------------------------------------

def test_pipeline_throughput_beats_serial(benchmark):
    result = measure(quick=False)
    verdict = check_throughput(result)
    record_report("Streaming pipeline vs serial fusion throughput",
                  f"{result.report()}\n{verdict}")

    assert result.serial_seconds > 0 and result.pipeline_seconds > 0

    # Register one representative streamed batch with pytest-benchmark.
    cubes = _cubes(quick=True, depth=2)
    with repro.open_session(engine="pipeline", backend="process",
                            workers=2, subcubes=4, max_inflight=2) as session:
        list(session.fuse_stream(cubes))  # warm-up: spawn slots, place cubes
        benchmark.pedantic(lambda: list(session.fuse_stream(cubes)),
                           rounds=1, iterations=1)


# --------------------------------------------------------------------------
# standalone entry point (CI smoke job artifact)
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure streaming pipeline vs serial fusion throughput")
    parser.add_argument("--quick", action="store_true",
                        help="small cubes and 2 workers (CI smoke mode)")
    parser.add_argument("--depth", type=int, default=QUEUE_DEPTH,
                        help="queued fusion requests per path")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the measured results to this JSON file")
    parser.add_argument("--strict", action="store_true",
                        help="fail unless the streaming path PASSes the "
                             "throughput assertion")
    args = parser.parse_args(argv)

    result = measure(quick=args.quick, depth=args.depth)
    verdict = check_throughput(result,
                               assert_speedup=args.strict or not args.quick)
    print(result.report())
    print(verdict)

    if args.json_path:
        metrics = [
            ("serial_cubes_per_second", result.serial_cubes_per_second,
             "cubes/s", "higher"),
            ("pipeline_cubes_per_second", result.pipeline_cubes_per_second,
             "cubes/s", "higher"),
            ("streaming_speedup", result.speedup, "x", "higher"),
        ]
        write_bench_json(args.json_path, "pipeline_throughput", metrics,
                         payload=result.as_dict(), verdict=verdict,
                         quick=args.quick)

    if args.strict and not verdict.startswith("PASS"):
        print("strict mode: pipeline-throughput assertion did not PASS",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
