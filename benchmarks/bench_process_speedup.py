"""Measured wall-clock speed-up: sequential vs the process-parallel backend.

Every other benchmark in this harness regenerates a figure from *virtual*
time on the simulated cluster.  This one measures the real thing: the
sequential :class:`~repro.core.pipeline.SpectralScreeningPCT` is timed on the
host, then ``repro.fuse(..., engine="distributed", backend="process")`` runs
the identical problem
on real OS processes, and the measured wall-clock speed-up curve is printed.

Because measured speed-up is a property of the host, the >1.5x assertion is
gated on the number of usable cores: a CI box pinned to one core cannot
exhibit parallel speed-up, and pretending otherwise would make the benchmark
flaky rather than informative.  The measured numbers are always recorded.

The module doubles as a standalone script for the CI smoke job::

    python benchmarks/bench_process_speedup.py --quick --json speedup.json
"""

from __future__ import annotations

import argparse
import sys

from _bench_utils import record_report, scaled_extent, write_bench_json
from repro.data.hydice import HydiceConfig, HydiceGenerator
from repro.experiments.measured import (MeasuredSpeedupResult,
                                        run_measured_speedup)

#: Worker count the acceptance assertion targets (the paper's smallest
#: interesting configuration; also the core count of standard CI runners).
TARGET_WORKERS = 4

#: Minimum measured speed-up over sequential required at TARGET_WORKERS when
#: the host has at least that many usable cores.
MIN_SPEEDUP = 1.5


def _quick_cube():
    """Small cube for the CI smoke run (a few seconds end to end)."""
    return HydiceGenerator(HydiceConfig(bands=48, rows=96, cols=96, seed=44)).generate()


def _full_cube():
    """The granularity-experiment cube at benchmark scale."""
    config = HydiceConfig(bands=105, rows=scaled_extent(320),
                          cols=scaled_extent(320), seed=44)
    return HydiceGenerator(config).generate()


def measure(*, quick: bool, processors=None) -> MeasuredSpeedupResult:
    cube = _quick_cube() if quick else _full_cube()
    processors = tuple(processors or ((1, 2) if quick else (1, 2, TARGET_WORKERS)))
    return run_measured_speedup(cube, processors=processors)


def check_speedup(result: MeasuredSpeedupResult, *, assert_speedup: bool = True) -> str:
    """Assert the acceptance speed-up where the host can physically show it.

    ``assert_speedup=False`` (the quick/CI-smoke mode) reports the measured
    number without failing: a small smoke cube on a noisy shared runner is a
    liveness check, not a performance measurement.  Returns a verdict line.
    """
    speedup = result.speedup()
    if TARGET_WORKERS not in speedup:
        best = max(speedup.values())
        return (f"INFO: {TARGET_WORKERS}-worker point not in this sweep "
                f"(best measured {best:.2f}x); the full benchmark asserts it")
    measured = speedup[TARGET_WORKERS]
    if result.available_cpus < TARGET_WORKERS:
        return (f"SKIPPED speed-up assertion: host exposes {result.available_cpus} "
                f"core(s) < {TARGET_WORKERS} workers (measured {measured:.2f}x)")
    if not assert_speedup:
        return (f"INFO (smoke mode): measured {measured:.2f}x with "
                f"{TARGET_WORKERS} workers; the full benchmark asserts "
                f"> {MIN_SPEEDUP}x")
    if measured <= MIN_SPEEDUP:
        # An explicit raise (not `assert`) so the acceptance gate survives -O.
        raise AssertionError(
            f"process backend reached only {measured:.2f}x speed-up with "
            f"{TARGET_WORKERS} workers on {result.available_cpus} cores "
            f"(required > {MIN_SPEEDUP}x)")
    return f"PASS: {measured:.2f}x > {MIN_SPEEDUP}x with {TARGET_WORKERS} workers"


# --------------------------------------------------------------------------
# pytest entry point
# --------------------------------------------------------------------------

def test_process_speedup_vs_sequential(benchmark):
    result = measure(quick=False)
    verdict = check_speedup(result)
    record_report("Measured process-parallel speed-up (wall clock)",
                  f"{result.report()}\n{verdict}")

    # Every worker count must at least complete and produce a sane time.
    assert result.sequential_seconds > 0
    assert all(point.elapsed_seconds > 0 for point in result.curve.points)

    # Register one representative measured point with pytest-benchmark.
    from repro import fuse
    from repro.scp.pool import default_start_method

    cube = _quick_cube()
    benchmark.pedantic(
        lambda: fuse(cube, engine="distributed",
                     backend=f"process:{default_start_method()}:2", subcubes=4),
        rounds=1, iterations=1)


# --------------------------------------------------------------------------
# standalone entry point (CI smoke job artifact)
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure sequential vs process-parallel wall-clock speed-up")
    parser.add_argument("--quick", action="store_true",
                        help="small cube and worker sweep (CI smoke mode)")
    parser.add_argument("--workers", type=int, nargs="+", default=None,
                        help="worker counts to sweep (default depends on --quick)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the measured results to this JSON file")
    parser.add_argument("--strict", action="store_true",
                        help="fail if the speed-up assertion cannot PASS "
                             "(instead of skipping on core-starved hosts)")
    args = parser.parse_args(argv)

    result = measure(quick=args.quick, processors=args.workers)
    verdict = check_speedup(result, assert_speedup=args.strict or not args.quick)
    print(result.report())
    print(verdict)

    if args.json_path:
        metrics = [("sequential_seconds", result.sequential_seconds,
                    "seconds", "lower")]
        for workers, speedup in sorted(result.speedup().items()):
            metrics.append((f"speedup_{workers}w", speedup, "x", "higher"))
        write_bench_json(args.json_path, "process_speedup", metrics,
                         payload=result.as_dict(), verdict=verdict,
                         quick=args.quick)

    if args.strict and not verdict.startswith("PASS"):
        print("strict mode: speed-up assertion did not PASS", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
