"""Screening-kernel overhaul: incremental kernel vs the seed kernel.

The PR-5 tentpole rewrote spectral screening around an incremental
:class:`~repro.core.steps.screening.UniqueSetBuffer` with cosine-domain
admission (no per-chunk re-stack/re-normalise of the unique set, no
``arccos`` over the hot ``(chunk, unique)`` matrix, no per-row survivor
loop).  This benchmark measures that single-core kernel speed-up directly,
old vs new, on the acceptance scene (a synthetic 256x256x64 HYDICE cube;
``--quick`` shrinks it for the CI smoke job) across three thresholds
spanning sparse to rich unique sets.

Before any number is trusted, the two kernels' unique sets are checked
**bit-identical** -- the optimisation is only allowed to change the clock,
never a decision.  The acceptance gate asserts a **>= 2x** speed-up at the
default screening threshold on a single core (locally the full scene
measures >= 3x); the CI smoke job uploads the JSON artifact::

    python benchmarks/bench_screening_kernel.py --quick --json screening_kernel.json
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from _bench_utils import record_report, write_bench_json
from repro.analysis.report import format_table
from repro.core.steps.screening import (screen_unique_set,
                                        screen_unique_set_reference,
                                        screening_flops)
from repro.data.hydice import HydiceConfig, HydiceGenerator

#: Thresholds swept: the config default (0.05) plus a tighter and a looser
#: setting, spanning rich (thousands) to sparse (tens) unique sets.
THRESHOLDS = (0.03, 0.05, 0.1)

#: The threshold whose speed-up the acceptance gate judges (config default).
GATE_THRESHOLD = 0.05

#: Required single-core speed-up of the incremental kernel at the gate
#: threshold (the local full-scene target is 3x; CI smoke asserts 2x).
REQUIRED_SPEEDUP = 2.0

#: Timed repetitions per kernel; the minimum is reported.
ROUNDS = 3


def _pixel_matrix(*, quick: bool) -> np.ndarray:
    """Pixel vectors of the acceptance scene (256x256x64; smaller on CI)."""
    extent, bands = (96, 32) if quick else (256, 64)
    cube = HydiceGenerator(HydiceConfig(bands=bands, rows=extent, cols=extent,
                                        seed=7)).generate()
    return cube.data.reshape(cube.bands, -1).T.copy()


@dataclass
class KernelPoint:
    """Old-vs-new measurement at one screening threshold."""

    threshold: float
    unique_size: int
    seed_seconds: float
    kernel_seconds: float
    n_pixels: int
    bands: int

    @property
    def speedup(self) -> float:
        return self.seed_seconds / self.kernel_seconds

    @property
    def kernel_gflops(self) -> float:
        flops = screening_flops(self.n_pixels, self.unique_size, self.bands)
        return flops / self.kernel_seconds / 1e9

    def as_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "unique_size": self.unique_size,
            "seed_seconds": self.seed_seconds,
            "kernel_seconds": self.kernel_seconds,
            "speedup": self.speedup,
            "kernel_gflops": self.kernel_gflops,
        }


@dataclass
class KernelSweep:
    """The full old-vs-new sweep plus judging context."""

    points: List[KernelPoint]
    n_pixels: int
    bands: int
    rounds: int

    def gate_point(self) -> KernelPoint:
        return next(p for p in self.points if p.threshold == GATE_THRESHOLD)

    def report(self) -> str:
        rows = [[p.threshold, p.unique_size, f"{p.seed_seconds:.3f}",
                 f"{p.kernel_seconds:.3f}", f"{p.speedup:.2f}x",
                 f"{p.kernel_gflops:.2f}"] for p in self.points]
        table = format_table(
            ["threshold", "unique", "seed_s", "kernel_s", "speedup", "GFLOP/s"],
            rows,
            title=f"screening kernel, {self.n_pixels:,} pixels x "
                  f"{self.bands} bands, best of {self.rounds}")
        return table

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_pixels": self.n_pixels,
            "bands": self.bands,
            "rounds": self.rounds,
            "gate_threshold": GATE_THRESHOLD,
            "required_speedup": REQUIRED_SPEEDUP,
            "points": [p.as_dict() for p in self.points],
        }


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(*, quick: bool) -> KernelSweep:
    pixels = _pixel_matrix(quick=quick)
    rounds = 2 if quick else ROUNDS
    points = []
    for threshold in THRESHOLDS:
        seed = screen_unique_set_reference(pixels, threshold, max_unique=4096)
        kernel = screen_unique_set(pixels, threshold, max_unique=4096)
        if not np.array_equal(seed, kernel):
            raise AssertionError(
                f"incremental kernel diverged from the seed kernel at "
                f"threshold {threshold} -- outputs must be bit-identical")
        seed_seconds = _best_of(
            lambda: screen_unique_set_reference(pixels, threshold,
                                                max_unique=4096), rounds)
        kernel_seconds = _best_of(
            lambda: screen_unique_set(pixels, threshold, max_unique=4096),
            rounds)
        points.append(KernelPoint(threshold=threshold,
                                  unique_size=int(seed.shape[0]),
                                  seed_seconds=seed_seconds,
                                  kernel_seconds=kernel_seconds,
                                  n_pixels=pixels.shape[0],
                                  bands=pixels.shape[1]))
    return KernelSweep(points=points, n_pixels=pixels.shape[0],
                       bands=pixels.shape[1], rounds=rounds)


def check_kernel_speedup(sweep: KernelSweep) -> str:
    """The acceptance gate: >= 2x single-core at the default threshold.

    Unlike the multi-worker benchmarks this gate is *not* core-count gated:
    both kernels run on one core, so the ratio is meaningful on any host.
    """
    gate = sweep.gate_point()
    if gate.speedup < REQUIRED_SPEEDUP:
        raise AssertionError(
            f"incremental screening kernel measured only {gate.speedup:.2f}x "
            f"the seed kernel at threshold {GATE_THRESHOLD}; gate is "
            f"{REQUIRED_SPEEDUP}x")
    return (f"PASS: {gate.speedup:.2f}x single-core at the default threshold "
            f"(gate {REQUIRED_SPEEDUP}x); bit-identical unique sets at every "
            f"threshold")


# --------------------------------------------------------------------------
# pytest entry point
# --------------------------------------------------------------------------

def test_incremental_kernel_beats_seed(benchmark):
    sweep = measure(quick=False)
    verdict = check_kernel_speedup(sweep)
    record_report("Screening kernel: incremental vs seed",
                  f"{sweep.report()}\n{verdict}")
    assert sweep.gate_point().speedup >= REQUIRED_SPEEDUP

    pixels = _pixel_matrix(quick=True)
    benchmark.pedantic(
        lambda: screen_unique_set(pixels, GATE_THRESHOLD, max_unique=4096),
        rounds=3, iterations=1)


# --------------------------------------------------------------------------
# standalone entry point (CI smoke job artifact)
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the incremental screening kernel against the "
                    "seed kernel (single core, bit-identical outputs)")
    parser.add_argument("--quick", action="store_true",
                        help="96x96x32 scene (CI smoke mode); default is the "
                             "256x256x64 acceptance scene")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the measured sweep to this JSON file")
    args = parser.parse_args(argv)

    sweep = measure(quick=args.quick)
    verdict = check_kernel_speedup(sweep)
    print(sweep.report())
    print(verdict)

    if args.json_path:
        metrics = []
        for point in sweep.points:
            label = f"{point.threshold:g}".replace(".", "p")
            metrics.append((f"speedup_thr{label}", point.speedup, "x",
                            "higher"))
            metrics.append((f"gflops_thr{label}", point.kernel_gflops,
                            "GFLOP/s", "higher"))
        write_bench_json(args.json_path, "screening_kernel", metrics,
                         payload=sweep.as_dict(), verdict=verdict,
                         quick=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
