"""Session reuse vs one-shot fusion: measured amortisation of setup cost.

A one-shot ``repro.fuse(..., backend="process")`` pays two setup costs per
call: the worker processes are spawned fresh and the cube is copied into a
new shared-memory segment.  ``repro.open_session`` keeps both alive, so a
stream of fusions pays them once.  This benchmark runs the *same* workload
both ways -- N consecutive fusions of one cube -- and measures the total
wall-clock of each path.

On a multi-core host the session total must come in measurably below the
one-shot total (that is this PR's acceptance criterion); on a single-core
host the numbers are still recorded but the assertion is skipped, matching
the policy of ``bench_process_speedup.py``.

The module doubles as a standalone script for the CI smoke job::

    python benchmarks/bench_session_reuse.py --quick --json session_reuse.json
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

from _bench_utils import record_report, scaled_extent, write_bench_json
import repro
from repro.data.hydice import HydiceConfig, HydiceGenerator
from repro.experiments.measured import available_cpus
from repro.scp.pool import default_start_method

#: Consecutive fusions per path (the acceptance criterion's "5 consecutive
#: fusions").
RUNS = 5

#: Worker count of the full benchmark (CI smoke uses --quick's 2).
WORKERS = 4


def _quick_cube():
    return HydiceGenerator(HydiceConfig(bands=32, rows=64, cols=64, seed=45)).generate()


def _full_cube():
    config = HydiceConfig(bands=64, rows=scaled_extent(208),
                          cols=scaled_extent(208), seed=45)
    return HydiceGenerator(config).generate()


@dataclass
class SessionReuseResult:
    """Totals of the two paths plus the context needed to judge them."""

    runs: int
    workers: int
    oneshot_seconds: float
    session_seconds: float
    session_spawned_processes: int
    available_cpus: int

    @property
    def amortisation_factor(self) -> float:
        """How many times faster the session path completed the stream."""
        return self.oneshot_seconds / self.session_seconds

    def report(self) -> str:
        lines = [
            f"{self.runs} consecutive fusions, {self.workers} workers, "
            f"process backend ({self.available_cpus} usable CPUs)",
            f"  one-shot repro.fuse total : {self.oneshot_seconds:8.3f} s",
            f"  session.fuse total        : {self.session_seconds:8.3f} s "
            f"({self.session_spawned_processes} processes spawned once)",
            f"  amortisation factor       : {self.amortisation_factor:8.2f}x",
        ]
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "runs": self.runs,
            "workers": self.workers,
            "oneshot_seconds": self.oneshot_seconds,
            "session_seconds": self.session_seconds,
            "session_spawned_processes": self.session_spawned_processes,
            "available_cpus": self.available_cpus,
            "amortisation_factor": self.amortisation_factor,
        }


def measure(*, quick: bool, runs: int = RUNS) -> SessionReuseResult:
    """Time ``runs`` fusions through one-shot calls, then through a session.

    Both paths are pinned to the same ``multiprocessing`` start method, so
    the measured difference is what the session actually amortises -- pool
    reuse and shared-memory placement -- not a fork-vs-spawn artefact.  The
    composites of every run are checked bit-identical across the two paths.
    """
    cube = _quick_cube() if quick else _full_cube()
    workers = 2 if quick else WORKERS
    subcubes = workers * 2
    method = default_start_method()

    start = time.perf_counter()
    oneshot_reports = [
        repro.fuse(cube, engine="distributed", backend=f"process:{method}",
                   workers=workers, subcubes=subcubes)
        for _ in range(runs)
    ]
    oneshot_seconds = time.perf_counter() - start

    start = time.perf_counter()
    with repro.open_session(backend="process", workers=workers,
                            subcubes=subcubes, start_method=method) as session:
        session_reports = [session.fuse(cube) for _ in range(runs)]
        spawned = session.spawned_processes
    session_seconds = time.perf_counter() - start

    for oneshot, pooled in zip(oneshot_reports, session_reports):
        if not np.array_equal(oneshot.composite, pooled.composite):
            raise AssertionError("session fusion diverged from one-shot fusion")

    return SessionReuseResult(runs=runs, workers=workers,
                              oneshot_seconds=oneshot_seconds,
                              session_seconds=session_seconds,
                              session_spawned_processes=spawned,
                              available_cpus=available_cpus())


def check_amortisation(result: SessionReuseResult, *,
                       assert_speedup: bool = True) -> str:
    """The acceptance gate: sessions must beat one-shot calls on multi-core.

    ``assert_speedup=False`` (quick/CI-smoke mode) reports the measured
    numbers without failing: a shared runner under noisy neighbours is a
    liveness check, not a measurement.  Returns a verdict line.
    """
    measured = result.amortisation_factor
    if result.available_cpus < 2:
        return (f"SKIPPED session-reuse assertion: host exposes "
                f"{result.available_cpus} usable core(s) "
                f"(measured {measured:.2f}x)")
    if not assert_speedup:
        return (f"INFO (smoke mode): session path {measured:.2f}x the one-shot "
                f"path over {result.runs} runs; the full benchmark asserts > 1x")
    if result.session_seconds >= result.oneshot_seconds:
        # An explicit raise (not `assert`) so the acceptance gate survives -O.
        raise AssertionError(
            f"session reuse did not amortise setup: {result.runs} session "
            f"fusions took {result.session_seconds:.3f}s vs "
            f"{result.oneshot_seconds:.3f}s one-shot")
    return (f"PASS: {result.runs} session fusions {measured:.2f}x faster than "
            f"{result.runs} one-shot fusions")


# --------------------------------------------------------------------------
# pytest entry point
# --------------------------------------------------------------------------

def test_session_reuse_beats_oneshot(benchmark):
    result = measure(quick=False)
    verdict = check_amortisation(result)
    record_report("Session reuse vs one-shot fusion (wall clock)",
                  f"{result.report()}\n{verdict}")

    assert result.oneshot_seconds > 0 and result.session_seconds > 0

    # Register one representative warm-session fusion with pytest-benchmark.
    cube = _quick_cube()
    with repro.open_session(backend="process", workers=2, subcubes=4) as session:
        session.fuse(cube)  # warm-up: spawn pool, place cube
        benchmark.pedantic(lambda: session.fuse(cube), rounds=1, iterations=1)


# --------------------------------------------------------------------------
# standalone entry point (CI smoke job artifact)
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure session reuse vs one-shot fusion wall-clock")
    parser.add_argument("--quick", action="store_true",
                        help="small cube and 2 workers (CI smoke mode)")
    parser.add_argument("--runs", type=int, default=RUNS,
                        help="consecutive fusions per path")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the measured results to this JSON file")
    parser.add_argument("--strict", action="store_true",
                        help="fail unless the session path PASSes the "
                             "amortisation assertion")
    args = parser.parse_args(argv)

    result = measure(quick=args.quick, runs=args.runs)
    verdict = check_amortisation(result,
                                 assert_speedup=args.strict or not args.quick)
    print(result.report())
    print(verdict)

    if args.json_path:
        metrics = [
            ("oneshot_seconds", result.oneshot_seconds, "seconds", "lower"),
            ("session_seconds", result.session_seconds, "seconds", "lower"),
            ("amortisation_factor", result.amortisation_factor, "x", "higher"),
        ]
        write_bench_json(args.json_path, "session_reuse", metrics,
                         payload=result.as_dict(), verdict=verdict,
                         quick=args.quick)

    if args.strict and not verdict.startswith("PASS"):
        print("strict mode: session-reuse assertion did not PASS", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
