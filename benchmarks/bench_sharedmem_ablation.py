"""Shared-memory ablation (Section 4, closing paragraph).

The paper notes that on a shared-memory multiprocessor the concurrent
algorithm "operates within 5% of linear speedup on a wide range of problem
sizes and machine sizes" because no network communication is involved.  This
benchmark runs the same distributed algorithm on the shared-memory cluster
preset and on the 100BaseT LAN preset (via
:func:`repro.experiments.run_shared_memory_comparison`) and compares their
efficiency.
"""

import pytest

from _bench_utils import fusion_config, record_report
from repro.cluster.presets import shared_memory_smp
from repro import fuse
from repro.experiments import run_shared_memory_comparison

PROCESSORS = (1, 2, 4, 8)
SUBCUBES = 16


@pytest.fixture(scope="module")
def shared_memory_result(figure5_cube):
    return run_shared_memory_comparison(figure5_cube, processors=PROCESSORS,
                                        subcubes=SUBCUBES)


def test_sharedmem_within_five_percent_of_linear(benchmark, figure5_cube,
                                                 shared_memory_result):
    result = shared_memory_result

    config = fusion_config(PROCESSORS[-1], SUBCUBES)
    benchmark.pedantic(
        lambda: fuse(figure5_cube, engine="distributed", config=config,
                     cluster=shared_memory_smp(PROCESSORS[-1])),
        rounds=1, iterations=1)

    record_report("Section 4 - shared-memory multiprocessor ablation", result.report())

    smp_efficiency = result.smp.efficiency()
    lan_efficiency = result.lan.efficiency()
    for workers in PROCESSORS[1:]:
        # The SMP runs essentially without communication overhead.
        assert smp_efficiency[workers] > 0.93, (
            f"SMP efficiency at {workers} processors should be within ~5% of linear")
        # And it is never less efficient than the LAN.
        assert smp_efficiency[workers] >= lan_efficiency[workers] - 1e-9
