"""Step-6 (eigen-decomposition) sequential fraction (Section 4).

The paper observes that although the eigen-solve of step 6 is O(n^3) in the
number of spectral bands and runs sequentially at the manager, "at the
typical problem size of 210 frames, the time used for Step 6 does not
dominate the overall performance".  This benchmark measures the fraction of
total compute time spent in step 6 as the band count grows, confirming the
claim at 210 bands and locating the band count at which it would start to
matter.
"""

import pytest

from _bench_utils import fusion_config, record_report, scaled_extent
from repro.analysis.report import format_table
from repro import fuse
from repro.data.hydice import HydiceConfig, HydiceGenerator

BAND_SWEEP = (52, 105, 210, 420)
WORKERS = 16


def run_band_sweep():
    rows = []
    fractions = {}
    for bands in BAND_SWEEP:
        config = HydiceConfig(bands=bands, rows=scaled_extent(208), cols=scaled_extent(208),
                              seed=17)
        cube = HydiceGenerator(config).generate()
        outcome = fuse(cube, engine="distributed", config=fusion_config(WORKERS, 32))
        metrics = outcome.metrics
        eigen_seconds = metrics.phase_seconds.get("eigendecomposition", 0.0)
        fraction_of_elapsed = eigen_seconds / metrics.elapsed_seconds
        fractions[bands] = fraction_of_elapsed
        rows.append([bands, metrics.elapsed_seconds, eigen_seconds,
                     fraction_of_elapsed, metrics.phase_fraction("eigendecomposition")])
    table = format_table(
        ["bands", "elapsed (virtual s)", "step 6 (s)",
         "step6 / elapsed", "step6 / total compute"],
        rows,
        title=(f"Step 6 (eigen-decomposition) share at {WORKERS} workers; "
               f"the paper notes it does not dominate at 210 bands"))
    return table, fractions


@pytest.fixture(scope="module")
def band_sweep_results():
    return run_band_sweep()


def test_step6_does_not_dominate_at_210_bands(benchmark, band_sweep_results):
    table, fractions = band_sweep_results
    record_report("Section 4 - step 6 sequential fraction vs band count", table)

    # Cheap representative measurement for pytest-benchmark: the eigen-solve
    # itself at the paper's 210 bands.
    import numpy as np
    from repro.core.steps.transform import transformation_matrix
    rng = np.random.default_rng(0)
    samples = rng.random((1000, 210))
    cov = np.cov(samples, rowvar=False)
    benchmark(lambda: transformation_matrix(cov, samples.mean(axis=0), n_components=3))

    # At the paper's 210 bands the sequential eigen-solve is a small share of
    # the end-to-end run even on 16 workers...
    assert fractions[210] < 0.15
    # ...and the share grows monotonically with the band count (O(n^3) versus
    # roughly O(n) to O(n^2) for the distributed work).
    ordered = [fractions[b] for b in BAND_SWEEP]
    assert all(later >= earlier for earlier, later in zip(ordered, ordered[1:]))
