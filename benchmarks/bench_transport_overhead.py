"""Per-task dispatch overhead of the worker transports (PR 9).

The transport seam (``repro.scp.transport``) promises that the stage
executor behaves identically over forked pool slots and the socket node
agent -- but the substrates pay different dispatch costs: the forked
transport hands a task frame to a slot over a pipe, while the socket
transport serialises it through a length-prefixed TCP frame, the node
agent re-frames it to a worker, and the committed result still travels
the shared spool.  This benchmark puts a number on that difference so
the trend ledger can catch regressions in either hop.

Two rounds per transport, both with trivially cheap task bodies so the
measured time *is* the dispatch plumbing:

* ``dispatch`` -- a burst of tiny integer tasks (``operator.add``);
  per-task wall time is the round-trip overhead of the substrate.
* ``payload`` -- the same burst carrying a 256 KiB argument (``len``),
  isolating the cost of moving task *bytes* through each transport.

The task callables are stdlib functions on purpose: stage functions
travel to workers pickled *by reference*, and when this file runs as a
script its module is ``__main__``, which a fresh node-agent interpreter
cannot import.  ``operator.add`` and ``len`` resolve everywhere.

There is no "socket must be faster" gate -- it never will be on one
host; the node agent exists as the stepping stone toward multi-host
specs.  The artifact records both costs and the ratio, and the trend
ledger gates drift across CI history::

    python benchmarks/bench_transport_overhead.py --quick --json transport_overhead.json
"""

from __future__ import annotations

import argparse
import operator
import sys
import time
from dataclasses import dataclass
from typing import Dict

from _bench_utils import record_report, write_bench_json
from repro.experiments.measured import available_cpus
from repro.scp.pool import ProcessPool
from repro.scp.stages import PoolStageExecutor, TransportStageExecutor
from repro.scp.transport import SocketTransport

#: Tiny-task burst size of the full benchmark (CI smoke uses --quick's 100).
DISPATCH_TASKS = 400

#: Payload-task burst size of the full benchmark.
PAYLOAD_TASKS = 60

#: Argument size of the payload round.
PAYLOAD_BYTES = 256 * 1024

#: Worker slots per transport.
WORKERS = 2


def _make_executor(kind: str, workers: int):
    if kind == "forked":
        return PoolStageExecutor(ProcessPool(), workers=workers,
                                 owns_pool=True)
    if kind == "socket":
        return TransportStageExecutor(SocketTransport(workers=workers),
                                      workers=workers)
    raise ValueError(f"unknown transport kind {kind!r}")


def _time_burst(executor, fn, args_for, count: int) -> float:
    start = time.perf_counter()
    futures = [executor.submit("screen", fn, *args_for(index))
               for index in range(count)]
    results = [future.result(timeout=120) for future in futures]
    elapsed = time.perf_counter() - start
    expected = [fn(*args_for(index)) for index in range(count)]
    if results != expected:
        raise AssertionError("transport returned wrong results; timing "
                             "numbers would be meaningless")
    return elapsed


@dataclass
class TransportOverheadResult:
    """Measured dispatch costs of both process-backed transports."""

    workers: int
    dispatch_tasks: int
    payload_tasks: int
    payload_bytes: int
    dispatch_seconds: Dict[str, float]
    payload_seconds: Dict[str, float]
    available_cpus: int

    def dispatch_ms(self, kind: str) -> float:
        return 1000.0 * self.dispatch_seconds[kind] / self.dispatch_tasks

    def payload_ms(self, kind: str) -> float:
        return 1000.0 * self.payload_seconds[kind] / self.payload_tasks

    @property
    def socket_over_forked(self) -> float:
        return self.dispatch_ms("socket") / self.dispatch_ms("forked")

    def report(self) -> str:
        lines = [
            f"{self.dispatch_tasks} tiny tasks + {self.payload_tasks} tasks "
            f"of {self.payload_bytes // 1024} KiB, {self.workers} workers "
            f"({self.available_cpus} usable CPUs)",
        ]
        for kind in ("forked", "socket"):
            lines.append(
                f"  {kind:7s}: {self.dispatch_ms(kind):7.3f} ms/task dispatch, "
                f"{self.payload_ms(kind):7.3f} ms/task with payload")
        lines.append(f"  socket/forked dispatch ratio: "
                     f"{self.socket_over_forked:5.2f}x")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "dispatch_tasks": self.dispatch_tasks,
            "payload_tasks": self.payload_tasks,
            "payload_bytes": self.payload_bytes,
            "dispatch_seconds": dict(self.dispatch_seconds),
            "payload_seconds": dict(self.payload_seconds),
            "forked_dispatch_ms": self.dispatch_ms("forked"),
            "socket_dispatch_ms": self.dispatch_ms("socket"),
            "forked_payload_ms": self.payload_ms("forked"),
            "socket_payload_ms": self.payload_ms("socket"),
            "socket_over_forked": self.socket_over_forked,
            "available_cpus": self.available_cpus,
        }


def measure(*, quick: bool, workers: int = WORKERS) -> TransportOverheadResult:
    """Run both bursts on both transports and collect per-task costs."""
    dispatch_tasks = 100 if quick else DISPATCH_TASKS
    payload_tasks = 20 if quick else PAYLOAD_TASKS
    payload = b"\xa5" * PAYLOAD_BYTES

    dispatch_seconds: Dict[str, float] = {}
    payload_seconds: Dict[str, float] = {}
    for kind in ("forked", "socket"):
        with _make_executor(kind, workers) as executor:
            # Warm-up: spawn slots (and the node agent) off the clock.
            _time_burst(executor, operator.add, lambda i: (i, 1), workers * 2)
            dispatch_seconds[kind] = _time_burst(
                executor, operator.add, lambda i: (i, 1), dispatch_tasks)
            payload_seconds[kind] = _time_burst(
                executor, len, lambda i: (payload,), payload_tasks)

    return TransportOverheadResult(workers=workers,
                                   dispatch_tasks=dispatch_tasks,
                                   payload_tasks=payload_tasks,
                                   payload_bytes=PAYLOAD_BYTES,
                                   dispatch_seconds=dispatch_seconds,
                                   payload_seconds=payload_seconds,
                                   available_cpus=available_cpus())


def check_overhead(result: TransportOverheadResult) -> str:
    """Informational verdict: the ledger, not a fixed threshold, judges it."""
    return (f"INFO: socket dispatch costs {result.socket_over_forked:.2f}x "
            f"the forked pool's ({result.dispatch_ms('socket'):.3f} ms vs "
            f"{result.dispatch_ms('forked'):.3f} ms per task); drift is "
            f"gated by the trend ledger, not a fixed bound")


# --------------------------------------------------------------------------
# pytest entry point
# --------------------------------------------------------------------------

def test_transport_overhead_measures_both_substrates():
    result = measure(quick=True)
    record_report("Worker-transport dispatch overhead (forked vs socket)",
                  f"{result.report()}\n{check_overhead(result)}")
    assert result.dispatch_seconds["forked"] > 0
    assert result.dispatch_seconds["socket"] > 0


# --------------------------------------------------------------------------
# standalone entry point (CI smoke job artifact)
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure per-task dispatch overhead of the forked and "
                    "socket worker transports")
    parser.add_argument("--quick", action="store_true",
                        help="small bursts (CI smoke mode)")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help="worker slots per transport")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the measured results to this JSON file")
    args = parser.parse_args(argv)

    result = measure(quick=args.quick, workers=args.workers)
    verdict = check_overhead(result)
    print(result.report())
    print(verdict)

    if args.json_path:
        metrics = [
            ("forked_dispatch_ms", result.dispatch_ms("forked"),
             "ms/task", "lower"),
            ("socket_dispatch_ms", result.dispatch_ms("socket"),
             "ms/task", "lower"),
            ("socket_payload_ms", result.payload_ms("socket"),
             "ms/task", "lower"),
        ]
        write_bench_json(args.json_path, "transport_overhead", metrics,
                         payload=result.as_dict(), verdict=verdict,
                         quick=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
