"""Zero-copy result placement vs the pickle spool: bytes and throughput.

The streaming engine's projection stage can return its tiles two ways: as
pickled arrays committed to the tmpfs spool (the crash-safe transport every
stage uses) or written directly into a preallocated
:class:`~repro.data.shared.SharedComposite` segment with only a row-range
acknowledgement travelling back (the zero-copy path, default on process
executors).  This benchmark measures both on the same cube:

* **payload bytes** -- the spool path pickles O(pixels) per run; the
  zero-copy path pickles O(tiles) acknowledgements.  The acceptance gate
  requires the spool path to move **>= 10x** more ``project``-stage payload
  bytes, asserted unconditionally (byte counts are deterministic).
* **throughput** -- with adaptive tile scheduling on top, the zero-copy
  pipeline must be at least as fast as the fixed-tile spool pipeline on a
  host with >= 4 usable cores (skipped on smaller hosts, the established
  policy of the measured benchmarks).

Composites are checked bit-identical to the sequential reference in both
modes before any number is trusted.  The module doubles as a standalone
script for the CI smoke job::

    python benchmarks/bench_zero_copy.py --quick --json zero_copy.json
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

from _bench_utils import record_report, scaled_extent, write_bench_json
import repro
from repro.config import FusionConfig, PartitionConfig
from repro.core.streaming import run_pipeline
from repro.data.hydice import HydiceConfig, HydiceGenerator
from repro.data.shared import SharedCube
from repro.experiments.measured import available_cpus
from repro.scp.pool import ProcessPool, default_start_method
from repro.scp.stages import PoolStageExecutor

#: Worker slots of the full benchmark (CI smoke uses --quick's 2).
WORKERS = 4

#: Timed pipeline runs per mode; the minimum is reported (standard
#: best-of-N to suppress scheduler noise).
ROUNDS = 3

#: Required spool/zero-copy ratio of ``project``-stage payload bytes.
REQUIRED_BYTES_RATIO = 10.0

#: Required zero-copy/spool throughput ratio on hosts with >= 4 cores.
REQUIRED_THROUGHPUT = 1.0


def _cube(*, quick: bool):
    extent = 48 if quick else scaled_extent(160)
    bands = 24 if quick else 64
    return HydiceGenerator(HydiceConfig(bands=bands, rows=extent, cols=extent,
                                        seed=77)).generate()


@dataclass
class ZeroCopyResult:
    """Measured transports of the two result paths plus judging context."""

    workers: int
    rounds: int
    spool_seconds: float
    zero_copy_seconds: float
    spool_project_bytes: int
    zero_copy_project_bytes: int
    available_cpus: int

    @property
    def bytes_ratio(self) -> float:
        return self.spool_project_bytes / max(self.zero_copy_project_bytes, 1)

    @property
    def throughput_ratio(self) -> float:
        return self.spool_seconds / self.zero_copy_seconds

    def report(self) -> str:
        return "\n".join([
            f"{self.workers} worker slots, best of {self.rounds} rounds "
            f"({self.available_cpus} usable CPUs)",
            f"  spool path (fixed tiles)       : {self.spool_seconds:8.3f} s, "
            f"{self.spool_project_bytes:>12,} project payload bytes",
            f"  zero-copy path (adaptive tiles): {self.zero_copy_seconds:8.3f} s, "
            f"{self.zero_copy_project_bytes:>12,} project payload bytes",
            f"  payload-byte reduction         : {self.bytes_ratio:8.1f}x",
            f"  throughput vs fixed-tile spool : {self.throughput_ratio:8.2f}x",
        ])

    def as_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "rounds": self.rounds,
            "spool_seconds": self.spool_seconds,
            "zero_copy_seconds": self.zero_copy_seconds,
            "spool_project_bytes": self.spool_project_bytes,
            "zero_copy_project_bytes": self.zero_copy_project_bytes,
            "bytes_ratio": self.bytes_ratio,
            "throughput_ratio": self.throughput_ratio,
            "available_cpus": self.available_cpus,
        }


def _run_mode(pool, placed, config, *, workers: int, rounds: int,
              zero_copy: bool, adaptive: bool, reference) -> tuple:
    """Best-of-N timed runs of one transport mode on a fresh executor.

    A fresh executor gives the mode its own ``stage_payload_bytes`` ledger;
    the pool (and its warm slots) is shared so neither mode pays spawning.
    """
    with PoolStageExecutor(pool, workers=workers) as executor:
        result = run_pipeline(placed, config, executor, zero_copy=zero_copy,
                              adaptive_tiles=adaptive)  # warm-up + parity
        if not np.array_equal(result.composite, reference.composite):
            raise AssertionError("pipeline composite diverged from the "
                                 "sequential reference")
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            run_pipeline(placed, config, executor, zero_copy=zero_copy,
                         adaptive_tiles=adaptive)
            best = min(best, time.perf_counter() - start)
        payload = executor.stage_payload_bytes.get("project", 0)
    # The ledger covered warm-up + rounds; report the per-run average.
    return best, payload // (rounds + 1)


def measure(*, quick: bool) -> ZeroCopyResult:
    cube = _cube(quick=quick)
    workers = 2 if quick else WORKERS
    rounds = 2 if quick else ROUNDS
    config = FusionConfig(partition=PartitionConfig(workers=workers,
                                                    subcubes=workers * 2))
    reference = repro.fuse(cube, config=config)
    placed = SharedCube.from_cube(cube)
    try:
        with ProcessPool(start_method=default_start_method(),
                         warm=workers) as pool:
            spool_seconds, spool_bytes = _run_mode(
                pool, placed, config, workers=workers, rounds=rounds,
                zero_copy=False, adaptive=False, reference=reference)
            zero_seconds, zero_bytes = _run_mode(
                pool, placed, config, workers=workers, rounds=rounds,
                zero_copy=True, adaptive=True, reference=reference)
    finally:
        placed.close()
    return ZeroCopyResult(workers=workers, rounds=rounds,
                          spool_seconds=spool_seconds,
                          zero_copy_seconds=zero_seconds,
                          spool_project_bytes=spool_bytes,
                          zero_copy_project_bytes=zero_bytes,
                          available_cpus=available_cpus())


def check_zero_copy(result: ZeroCopyResult, *,
                    assert_throughput: bool = True) -> str:
    """The acceptance gates.

    The payload-byte reduction is deterministic and asserted always; the
    throughput comparison is core-count gated like every measured benchmark.
    """
    if result.bytes_ratio < REQUIRED_BYTES_RATIO:
        raise AssertionError(
            f"zero-copy result path moved only {result.bytes_ratio:.1f}x "
            f"fewer project payload bytes; gate is {REQUIRED_BYTES_RATIO}x")
    measured = result.throughput_ratio
    if result.available_cpus < 4:
        return (f"PASS bytes ({result.bytes_ratio:.1f}x >= "
                f"{REQUIRED_BYTES_RATIO}x); SKIPPED throughput assertion: "
                f"host exposes {result.available_cpus} usable core(s); "
                f">= 4 required (measured {measured:.2f}x)")
    if not assert_throughput:
        return (f"PASS bytes ({result.bytes_ratio:.1f}x); INFO (smoke mode): "
                f"zero-copy ran {measured:.2f}x the spool path; the full "
                f"benchmark asserts >= {REQUIRED_THROUGHPUT}x")
    if measured < REQUIRED_THROUGHPUT:
        raise AssertionError(
            f"zero-copy pipeline slower than the fixed-tile spool pipeline: "
            f"{measured:.2f}x < {REQUIRED_THROUGHPUT}x")
    return (f"PASS: {result.bytes_ratio:.1f}x fewer project payload bytes "
            f"(gate {REQUIRED_BYTES_RATIO}x) at {measured:.2f}x the "
            f"fixed-tile throughput (gate {REQUIRED_THROUGHPUT}x)")


# --------------------------------------------------------------------------
# pytest entry point
# --------------------------------------------------------------------------

def test_zero_copy_beats_spool_on_bytes(benchmark):
    result = measure(quick=False)
    verdict = check_zero_copy(result)
    record_report("Zero-copy result placement vs pickle spool",
                  f"{result.report()}\n{verdict}")
    assert result.bytes_ratio >= REQUIRED_BYTES_RATIO

    # Register one representative zero-copy run with pytest-benchmark.
    cube = _cube(quick=True)
    config = FusionConfig(partition=PartitionConfig(workers=2, subcubes=4))
    placed = SharedCube.from_cube(cube)
    try:
        with ProcessPool(warm=2) as pool:
            with PoolStageExecutor(pool, workers=2) as executor:
                run_pipeline(placed, config, executor, zero_copy=True,
                             adaptive_tiles=True)  # warm-up
                benchmark.pedantic(
                    lambda: run_pipeline(placed, config, executor,
                                         zero_copy=True, adaptive_tiles=True),
                    rounds=1, iterations=1)
    finally:
        placed.close()


# --------------------------------------------------------------------------
# standalone entry point (CI smoke job artifact)
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the zero-copy result path against the pickle "
                    "spool (payload bytes and throughput)")
    parser.add_argument("--quick", action="store_true",
                        help="small cube and 2 workers (CI smoke mode)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the measured results to this JSON file")
    parser.add_argument("--strict", action="store_true",
                        help="fail unless the throughput assertion PASSes")
    args = parser.parse_args(argv)

    result = measure(quick=args.quick)
    verdict = check_zero_copy(result,
                              assert_throughput=args.strict or not args.quick)
    print(result.report())
    print(verdict)

    if args.json_path:
        metrics = [
            ("bytes_ratio", result.bytes_ratio, "x", "higher"),
            ("throughput_ratio", result.throughput_ratio, "x", "higher"),
            ("spool_seconds", result.spool_seconds, "seconds", "lower"),
            ("zero_copy_seconds", result.zero_copy_seconds, "seconds",
             "lower"),
        ]
        write_bench_json(args.json_path, "zero_copy", metrics,
                         payload=result.as_dict(), verdict=verdict,
                         quick=args.quick)

    if args.strict and not verdict.startswith("PASS:"):
        print("strict mode: zero-copy assertions did not fully PASS",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
