"""Fixtures and reporting plumbing for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md, "Per-experiment index").  Because pytest captures
stdout, the regenerated tables are collected into ``_bench_utils.REPORT_SINK``
and printed from the terminal-summary hook below, so they always appear in
``bench_output.txt`` alongside pytest-benchmark's timing table.

Scaling note
------------
The paper's measurements were taken on 16 physical workstations with a
320x320 cube.  The benchmarks default to a spatially scaled cube (160x160,
``REPRO_BENCH_SCALE=0.5``) so the whole harness regenerates every figure in a
few minutes of host time; the simulated virtual times and therefore the
*shape* of every curve are unaffected by the host machine.
"""

from __future__ import annotations

import pytest

from _bench_utils import REPORT_SINK, scaled_extent
from repro.data.hydice import HydiceConfig, HydiceGenerator
from repro.logging_utils import silence


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103
    if not REPORT_SINK:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("Reproduced paper figures and tables")
    for entry in REPORT_SINK:
        terminalreporter.write(entry)


@pytest.fixture(scope="session", autouse=True)
def _quiet_logging():
    silence()


@pytest.fixture(scope="session")
def figure4_cube():
    """The full 210-channel collection used by the speed-up experiment."""
    config = HydiceConfig(bands=210, rows=scaled_extent(320), cols=scaled_extent(320),
                          seed=41)
    return HydiceGenerator(config).generate()


@pytest.fixture(scope="session")
def figure5_cube():
    """The 105-band granularity-experiment cube (320x320x105 in the paper)."""
    config = HydiceConfig(bands=105, rows=scaled_extent(320), cols=scaled_extent(320),
                          seed=42)
    return HydiceGenerator(config).generate()


@pytest.fixture(scope="session")
def small_eval_cube():
    """A small cube for the cheap ablation benchmarks."""
    config = HydiceConfig(bands=48, rows=64, cols=64, seed=43)
    return HydiceGenerator(config).generate()
