#!/usr/bin/env python
"""Camouflaged-vehicle detection: why spectral screening matters.

The paper's motivating scenario (Section 3 and Figure 3) is a mechanised
vehicle hidden under camouflage netting in a foliated scene: in the raw data
it is nearly invisible, and a plain principal-component fusion tends to wash
it out because the statistics are dominated by the abundant background.  The
spectral-screening PCT gives the rare signature equal weight, so the fused
composite shows it clearly.

This example reproduces that story end to end on synthetic data:

1. build a scene with several vehicles in the open and one under camouflage,
2. fuse it three ways -- best single raw band, plain PCT, spectral-screening
   PCT -- and compare how strongly the camouflaged vehicle stands out,
3. run a simple detector (chromatic anomaly threshold on the composite) and
   report hits/false alarms for each variant.

Run with::

    python examples/camouflage_detection.py [--size 128] [--bands 96]
"""

import argparse

import numpy as np

import repro
from repro import FusionConfig, HydiceGenerator
from repro.analysis.quality import best_band_contrast, target_contrast
from repro.analysis.report import format_table
from repro.baselines.plain_pct import PlainPCT
from repro.data.hydice import HydiceConfig


def camouflage_mask(cube) -> np.ndarray:
    mask = np.zeros(cube.metadata["target_mask"].shape, dtype=bool)
    for vehicle in cube.metadata["vehicles"]:
        if vehicle.camouflaged:
            mask[vehicle.row:vehicle.row + vehicle.height,
                 vehicle.col:vehicle.col + vehicle.width] = True
    return mask


def chromatic_anomaly_detector(composite: np.ndarray, percentile: float = 98.0) -> np.ndarray:
    """Flag pixels whose colour deviates most from the scene's mean colour.

    This is deliberately the simplest possible post-processing step ("detect
    edges ... and use structural information" is left to downstream tools in
    the paper); it only demonstrates that the information is present in the
    composite.
    """
    flat = composite.reshape(-1, 3)
    mean = flat.mean(axis=0)
    covariance = np.cov(flat, rowvar=False) + 1e-9 * np.eye(3)
    inverse = np.linalg.inv(covariance)
    centred = flat - mean
    mahalanobis = np.einsum("ij,jk,ik->i", centred, inverse, centred)
    threshold = np.percentile(mahalanobis, percentile)
    return (mahalanobis >= threshold).reshape(composite.shape[:2])


def detection_score(detections: np.ndarray, truth: np.ndarray) -> tuple:
    hits = int(np.count_nonzero(detections & truth))
    false_alarms = int(np.count_nonzero(detections & ~truth))
    return hits, false_alarms


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=128)
    parser.add_argument("--bands", type=int, default=96)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--quick", action="store_true",
                        help="shrink the problem so the example finishes in seconds (CI)")
    args = parser.parse_args()
    if args.quick:
        args.size, args.bands = 48, 24

    print("Generating a foliated scene with camouflaged and open vehicles ...")
    cube = HydiceGenerator(HydiceConfig(bands=args.bands, rows=args.size, cols=args.size,
                                        seed=args.seed, vehicles=3,
                                        camouflaged_vehicles=1)).generate()
    camo = camouflage_mask(cube)
    all_targets = cube.metadata["target_mask"]
    print(f"  scene {cube.rows}x{cube.cols}, {int(all_targets.sum())} vehicle pixels, "
          f"{int(camo.sum())} of them camouflaged")

    config = FusionConfig()
    print("Fusing with the spectral-screening PCT and with plain PCT ...")
    screened = repro.fuse(cube, config=config).result
    plain = PlainPCT(config).fuse(cube)
    best_band_index, best_band_value = best_band_contrast(cube, camo, stride=2)

    rows = [
        ["best raw band", f"band {best_band_index}", best_band_value,
         *detection_score(chromatic_anomaly_detector(
             np.repeat(cube.band(best_band_index)[..., None], 3, axis=-1)), camo)],
        ["plain PCT composite", f"K={plain.unique_set_size}",
         target_contrast(plain.composite, camo),
         *detection_score(chromatic_anomaly_detector(plain.composite), camo)],
        ["spectral-screening PCT", f"K={screened.unique_set_size}",
         target_contrast(screened.composite, camo),
         *detection_score(chromatic_anomaly_detector(screened.composite), camo)],
    ]
    print(format_table(
        ["variant", "statistics", "camouflage contrast", "hit pixels", "false alarms"],
        rows, title="Camouflaged-vehicle separability"))

    screened_contrast = target_contrast(screened.composite, camo)
    plain_contrast = target_contrast(plain.composite, camo)
    print(f"\nSpectral screening improves the camouflaged-vehicle contrast by "
          f"{screened_contrast / max(plain_contrast, 1e-9):.2f}x over plain PCT "
          f"and {screened_contrast / max(best_band_value, 1e-9):.2f}x over the best raw band.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
