#!/usr/bin/env python
"""Granularity tuning: choosing the number of sub-cubes (the paper's Figure 5).

The manager/worker decomposition splits the image cube into sub-cubes; how
many to use is a tuning decision.  Too few (one per worker) and communication
cannot be overlapped with computation; too many and per-message overhead
starts to dominate.  The paper studies this for a 320x320x105 cube and finds
the sweet spot at roughly 2-3x the number of workers, tailing off past ~32
sub-cubes.

This example runs the same study on the simulated cluster for a problem size
of your choosing and prints the resulting table, together with the advice the
resource manager would give.

Run with::

    python examples/granularity_tuning.py [--workers 8] [--size 128] [--bands 64]
"""

import argparse

import repro
from repro import FusionConfig, HydiceGenerator, PartitionConfig
from repro.analysis.report import format_table
from repro.data.hydice import HydiceConfig
from repro.resilience.resource import ResourceManager


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--size", type=int, default=128)
    parser.add_argument("--bands", type=int, default=64)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--multipliers", type=int, nargs="+", default=[1, 2, 3, 4, 6])
    parser.add_argument("--quick", action="store_true",
                        help="shrink the problem so the example finishes in seconds (CI)")
    args = parser.parse_args()
    if args.quick:
        args.workers, args.size, args.bands = 4, 64, 24
        args.multipliers = [1, 2, 3]

    print("Generating the collection ...")
    cube = HydiceGenerator(HydiceConfig(bands=args.bands, rows=args.size, cols=args.size,
                                        seed=args.seed)).generate()

    rows = []
    best = None
    for multiplier in args.multipliers:
        subcubes = args.workers * multiplier
        if subcubes > cube.rows:
            continue
        config = FusionConfig(partition=PartitionConfig(workers=args.workers,
                                                        subcubes=subcubes))
        outcome = repro.fuse(cube, engine="distributed", config=config)
        metrics = outcome.metrics
        rows.append([multiplier, subcubes, outcome.elapsed_seconds,
                     metrics.messages, metrics.bytes_sent / 1e6,
                     metrics.mean_utilisation()])
        if best is None or outcome.elapsed_seconds < best[1]:
            best = (subcubes, outcome.elapsed_seconds)

    print(format_table(
        ["multiplier", "sub-cubes", "time (virtual s)", "messages", "MB on the wire",
         "mean node utilisation"],
        rows,
        title=(f"Granularity sweep at {args.workers} workers "
               f"({args.bands} bands, {args.size}x{args.size})")))

    advised = ResourceManager.suggest_subcubes(args.workers, multiplier=2)
    print(f"\nBest measured decomposition : {best[0]} sub-cubes ({best[1]:.2f} virtual s)")
    print(f"Resource-manager suggestion : {advised} sub-cubes "
          f"(2x workers, capped at the paper's ~32 sub-cube tail-off point)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
