#!/usr/bin/env python
"""Real parallel speed-up: the process backend vs the sequential pipeline.

The paper's central performance claim is near-linear speed-up of the
manager/worker decomposition on real hardware.  This example measures it on
*your* machine:

1. generate a synthetic HYDICE-like cube,
2. time the sequential spectral-screening PCT reference,
3. run the identical problem on ``DistributedPCT(backend="process")`` --
   real OS processes, the cube shared zero-copy between them -- for a sweep
   of worker counts, and
4. print the measured wall-clock speed-up table and verify the composites
   are bit-identical to the sequential reference.

Run it with::

    python examples/process_speedup.py [--bands 64] [--size 128] [--workers 1 2 4]
"""

import argparse

import numpy as np

import repro
from repro import FusionConfig, HydiceGenerator, PartitionConfig
from repro.data.hydice import HydiceConfig
from repro.experiments.measured import available_cpus, run_measured_speedup


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bands", type=int, default=64,
                        help="number of spectral channels (the paper uses 105/210)")
    parser.add_argument("--size", type=int, default=128,
                        help="spatial extent in pixels (the paper uses 320)")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--quick", action="store_true",
                        help="shrink the problem so the example finishes in seconds (CI)")
    args = parser.parse_args()
    if args.quick:
        args.bands, args.size, args.workers = 32, 64, [1, 2]

    print(f"Host exposes {available_cpus()} usable CPU core(s).")
    print("Generating the synthetic HYDICE collection ...")
    cube = HydiceGenerator(HydiceConfig(bands=args.bands, rows=args.size,
                                        cols=args.size, seed=args.seed)).generate()

    # Measured sweep: sequential baseline plus one process-parallel run per
    # worker count, all with the same decomposition so the work is identical.
    result = run_measured_speedup(cube, processors=tuple(args.workers))
    print()
    print(result.report())

    # Parity check: the parallel composite is bit-identical to sequential.
    workers = max(args.workers)
    config = FusionConfig(partition=PartitionConfig(workers=workers,
                                                    subcubes=2 * max(args.workers)))
    sequential = repro.fuse(cube, config=config)
    parallel = repro.fuse(cube, engine="distributed", backend="process", config=config)
    np.testing.assert_array_equal(parallel.composite, sequential.composite)
    print(f"\nComposite from {workers} worker processes is bit-identical "
          f"to the sequential reference.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
