#!/usr/bin/env python
"""Quickstart: generate a synthetic HYDICE scene and fuse it.

This is the five-minute tour of the library:

1. generate a small synthetic hyper-spectral collection (the stand-in for the
   paper's HYDICE data),
2. inspect two raw spectral frames (the paper's Figure 2),
3. run the sequential spectral-screening PCT pipeline (Section 3), and
4. look at what came out: the colour composite (Figure 3), the principal
   component basis, and how strongly the embedded vehicles stand out.

Run it with::

    python examples/quickstart.py [--bands 64] [--size 96] [--out composite.npz]
"""

import argparse

import numpy as np

import repro
from repro import HydiceGenerator
from repro.analysis.quality import enhancement_report
from repro.analysis.report import dict_table
from repro.data.hydice import HydiceConfig


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bands", type=int, default=64,
                        help="number of spectral channels (the paper uses 210)")
    parser.add_argument("--size", type=int, default=96,
                        help="spatial extent in pixels (the paper uses 320)")
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--out", default=None, help="optional .npz to store the composite")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the problem so the example finishes in seconds (CI)")
    args = parser.parse_args()
    if args.quick:
        args.bands, args.size = 16, 48

    # 1. Synthetic HYDICE collection: a foliated scene with a road, open
    #    vehicles and one camouflaged vehicle, observed over 400-2500 nm.
    print("Generating the synthetic HYDICE collection ...")
    cube = HydiceGenerator(HydiceConfig(bands=args.bands, rows=args.size,
                                        cols=args.size, seed=args.seed)).generate()
    print(f"  cube: {cube.bands} bands x {cube.rows} x {cube.cols} pixels "
          f"({cube.nbytes_estimate() / 1e6:.1f} MB)")

    # 2. Figure 2 analogue: two raw frames from opposite ends of the spectrum.
    for wavelength in (400.0, 1998.0):
        index, frame = cube.band_nearest(wavelength)
        print(f"  raw frame near {wavelength:6.0f} nm -> band {index:3d}, "
              f"mean={frame.mean():8.1f}, std={frame.std():7.1f}")

    # 3. The spectral-screening PCT pipeline (all eight steps of Section 3),
    #    through the library's one front door.
    print("\nFusing with repro.fuse (sequential engine) ...")
    report = repro.fuse(cube)
    result = report.result

    # 4. What came out.
    summary = {
        "composite shape": str(result.composite.shape),
        "unique set size (K)": result.unique_set_size,
        "variance captured by 3 PCs":
            f"{result.basis.explained_variance_ratio()[:3].sum():.3f}",
        "estimated work (GFLOP)": f"{result.total_flops() / 1e9:.2f}",
    }
    target_mask = cube.metadata["target_mask"]
    report = enhancement_report(cube, result.composite, target_mask)
    summary["best single-band target contrast"] = f"{report['raw_contrast']:.2f}"
    summary["fused composite target contrast"] = f"{report['fused_contrast']:.2f}"
    print(dict_table("fusion summary", summary))

    if args.out:
        np.savez_compressed(args.out, composite=result.composite,
                            components=result.components,
                            eigenvalues=result.basis.eigenvalues)
        print(f"\nWrote the composite to {args.out}")
        print("Load it with numpy and display composite[:, :, :3] as an RGB image.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
