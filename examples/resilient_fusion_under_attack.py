#!/usr/bin/env python
"""Resilient distributed fusion surviving an information-warfare attack.

This example reproduces the paper's core demonstration: the distributed
spectral-screening PCT runs on a simulated 100BaseT cluster of workstations
with every worker replicated to level 2 (the manager -- the sensor -- is not
replicated), while an adversary repeatedly destroys worker replicas and an
entire workstation mid-run.  Computational resiliency detects each loss
through missed heartbeats, regenerates the replica on another node, replays
any in-flight messages and reconfigures the communication structure -- and
the fused image that comes out is bit-identical to an undisturbed run.

Run with::

    python examples/resilient_fusion_under_attack.py [--workers 8] [--size 96]
"""

import argparse

import numpy as np

import repro
from repro import (FusionConfig, HydiceGenerator, PartitionConfig,
                   ResilienceConfig)
from repro.analysis.report import dict_table
from repro.data.hydice import HydiceConfig
from repro.resilience.attack import AttackScenario


def build_attack(workers: int) -> AttackScenario:
    """A campaign of escalating attacks against the worker pool."""
    scenario = AttackScenario("escalating-campaign")
    scenario.add(0.5, "kill_replica", "worker.0")          # a single shadow lost
    scenario.add(1.0, "fail_node", "sun01")                # a whole workstation down
    # Wipe out every replica of one worker in quick succession: static
    # replication cannot survive this, regeneration can.
    for i in range(3):
        scenario.add(2.0 + 0.001 * i, "kill_replica", f"worker.{workers - 1}")
    return scenario


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--size", type=int, default=96)
    parser.add_argument("--bands", type=int, default=64)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--quick", action="store_true",
                        help="shrink the problem so the example finishes in seconds (CI)")
    args = parser.parse_args()
    if args.quick:
        args.workers, args.size, args.bands = 4, 48, 24

    print("Generating the hyper-spectral collection ...")
    cube = HydiceGenerator(HydiceConfig(bands=args.bands, rows=args.size, cols=args.size,
                                        seed=args.seed)).generate()

    partition = PartitionConfig(workers=args.workers, subcubes=args.workers * 2)

    print(f"Reference run: {args.workers} workers, no resiliency, no attack ...")
    plain = repro.fuse(cube, engine="distributed",
                       config=FusionConfig(partition=partition))
    print(f"  virtual time {plain.elapsed_seconds:8.2f} s")

    resilience = ResilienceConfig(replication_level=2, heartbeat_period=0.1,
                                  heartbeat_misses=2)
    config = FusionConfig(partition=partition, resilience=resilience)
    attack = build_attack(args.workers)

    print(f"Resilient run under attack ({len(attack)} scheduled faults) ...")
    resilient = repro.fuse(cube, engine="resilient", config=config, attack=attack)

    report = resilient.resilience
    summary = {
        "plain distributed time (virtual s)": f"{plain.elapsed_seconds:.2f}",
        "resilient time under attack (virtual s)": f"{resilient.elapsed_seconds:.2f}",
        "slowdown vs plain": f"{resilient.elapsed_seconds / plain.elapsed_seconds:.2f}x",
        "replication level": resilience.replication_level,
        "attacks that hit a live target": report["attacks_executed"],
        "replicas lost": resilient.failures_injected,
        "replicas regenerated": resilient.replicas_regenerated,
        "reconfigurations completed": report["reconfigurations"]["completed"],
        "composite identical to reference": str(bool(np.array_equal(
            resilient.result.composite, plain.result.composite))),
    }
    print(dict_table("resilient run summary", summary))

    print("\nPer-worker replica groups after the run:")
    for logical, entry in sorted(report["replication"].items()):
        if not logical.startswith("worker"):
            continue
        print(f"  {logical:10s} live={entry['live']} target={entry['target']} "
              f"lost={entry['lost']} regenerated={entry['regenerated']}")

    assert np.array_equal(resilient.result.composite, plain.result.composite), \
        "the attacked, resilient run must still produce the correct composite"
    print("\nThe attacked run produced exactly the same fused image as the "
          "undisturbed run -- operational readiness was restored, not merely degraded.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
