#!/usr/bin/env python
"""Reusable sessions: fuse a stream of collections on warm resources.

A fusion *service* -- the ROADMAP's production north star -- does not run one
cube; it runs thousands, back to back.  This example shows the difference
between the two API shapes on exactly that workload:

1. the one-shot path: ``repro.fuse(cube, backend="process")`` per request,
   which spawns the worker processes and copies the cube into shared memory
   every single time, and
2. the session path: ``repro.open_session`` once, ``session.fuse`` per
   request, which keeps the worker-process pool and the shared-memory cube
   placement alive across calls.

Both paths produce bit-identical composites; only the total wall-clock
differs.  Run it with::

    python examples/session_reuse.py [--requests 5] [--workers 4]
"""

import argparse
import time

import numpy as np

import repro
from repro.analysis.report import dict_table
from repro.data.hydice import HydiceConfig, HydiceGenerator


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=5,
                        help="fusion requests in the simulated stream")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--bands", type=int, default=48)
    parser.add_argument("--size", type=int, default=96)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--quick", action="store_true",
                        help="shrink the problem so the example finishes in seconds (CI)")
    args = parser.parse_args()
    if args.quick:
        args.requests, args.workers, args.bands, args.size = 3, 2, 24, 48

    print("Generating the synthetic HYDICE collection ...")
    cube = HydiceGenerator(HydiceConfig(bands=args.bands, rows=args.size,
                                        cols=args.size, seed=args.seed)).generate()
    subcubes = args.workers * 2

    print(f"Serving {args.requests} requests with one-shot repro.fuse calls ...")
    start = time.perf_counter()
    oneshot = [repro.fuse(cube, engine="distributed", backend="process",
                          workers=args.workers, subcubes=subcubes)
               for _ in range(args.requests)]
    oneshot_seconds = time.perf_counter() - start

    print(f"Serving the same {args.requests} requests through a session ...")
    start = time.perf_counter()
    with repro.open_session(backend="process", workers=args.workers,
                            subcubes=subcubes) as session:
        pooled = session.fuse_many([cube] * args.requests)
        spawned = session.spawned_processes
        placed = session.cubes_placed
    session_seconds = time.perf_counter() - start

    for a, b in zip(oneshot, pooled):
        assert np.array_equal(a.composite, b.composite), \
            "session fusion must be bit-identical to one-shot fusion"

    summary = {
        "requests served": args.requests,
        "workers per request": args.workers,
        "one-shot total (s)": f"{oneshot_seconds:.3f}",
        "session total (s)": f"{session_seconds:.3f}",
        "session amortisation": f"{oneshot_seconds / session_seconds:.2f}x",
        "processes spawned by the session": spawned,
        "shared-memory placements": placed,
        "composites bit-identical": "yes",
    }
    print(dict_table("session reuse summary", summary))

    print("\nThe session spawned its worker pool and placed the cube in shared "
          "memory once; every further request reused both.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
