#!/usr/bin/env python
"""Streaming a queue of fusion requests through the pipeline engine.

A fusion service does not receive one cube; it receives a *queue*.  The
batch engines drain that queue strictly serially -- each request
materialises the whole cube and runs the eight steps as one barrier-
synchronised batch.  The ``pipeline`` engine instead splits every cube into
row tiles that flow through a staged dataflow (screen -> covariance
partials -> eigendecomposition barrier -> projection + colour map) on a
shared pool of worker slots, so *independent requests overlap*: while one
cube is in its projection stage, the next is already screening.

This example serves the same queue three ways and prints the wall clock of
each:

1. a loop of one-shot ``repro.fuse`` calls (sequential reference engine),
2. ``session.fuse_many`` on a pipeline session (warm slots, still serial),
3. ``session.fuse_stream`` on the same session (overlapped, bounded
   in-flight window).

All three produce bit-identical composites -- streaming is a pure
throughput knob.  Run it with::

    python examples/streaming_throughput.py [--requests 8] [--workers 4]
"""

import argparse
import time

import numpy as np

import repro
from repro.analysis.report import dict_table
from repro.data.hydice import HydiceConfig, HydiceGenerator


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=8,
                        help="fusion requests in the simulated queue")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker slots of the pipeline session")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="concurrent cubes kept in flight by the stream")
    parser.add_argument("--tile-rows", type=int, default=None,
                        help="rows per streaming tile (default ~2 tiles/worker)")
    parser.add_argument("--bands", type=int, default=48)
    parser.add_argument("--size", type=int, default=96)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--quick", action="store_true",
                        help="shrink the problem so the example finishes in seconds (CI)")
    args = parser.parse_args()
    if args.quick:
        args.requests, args.workers, args.max_inflight = 4, 2, 2
        args.bands, args.size = 24, 48

    print(f"Generating {args.requests} synthetic HYDICE collections ...")
    cubes = [HydiceGenerator(HydiceConfig(bands=args.bands, rows=args.size,
                                          cols=args.size,
                                          seed=args.seed + index)).generate()
             for index in range(args.requests)]
    subcubes = args.workers * 2

    print("Serving the queue with one-shot sequential fusions ...")
    # Same partition shape as the session: screening decomposition and
    # covariance summation order follow it, and bit-identity demands both.
    start = time.perf_counter()
    serial = [repro.fuse(cube, workers=args.workers, subcubes=subcubes)
              for cube in cubes]
    serial_seconds = time.perf_counter() - start

    print("Serving the queue through a pipeline session ...")
    with repro.open_session(engine="pipeline", backend="process",
                            workers=args.workers, subcubes=subcubes,
                            tile_rows=args.tile_rows,
                            max_inflight=args.max_inflight,
                            max_placements=args.requests) as session:
        start = time.perf_counter()
        batched = session.fuse_many(cubes)
        batch_seconds = time.perf_counter() - start

        start = time.perf_counter()
        streamed = list(session.fuse_stream(cubes))
        stream_seconds = time.perf_counter() - start

    for one_shot, batch, stream in zip(serial, batched, streamed):
        assert np.array_equal(one_shot.composite, batch.composite)
        assert np.array_equal(one_shot.composite, stream.composite)
    print("All three paths produced bit-identical composites.")

    rate = args.requests / stream_seconds
    print(dict_table("queue throughput", {
        "requests": args.requests,
        "worker_slots": args.workers,
        "max_inflight": args.max_inflight,
        "sequential_loop_seconds": f"{serial_seconds:.3f}",
        "pipeline_fuse_many_seconds": f"{batch_seconds:.3f}",
        "pipeline_fuse_stream_seconds": f"{stream_seconds:.3f}",
        "stream_cubes_per_second": f"{rate:.2f}",
        "stream_vs_sequential": f"{serial_seconds / stream_seconds:.2f}x",
    }))
    print("On multi-core hosts the stream row should win; "
          "benchmarks/bench_pipeline_throughput.py asserts it.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
