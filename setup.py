"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` works in fully offline environments: without network
access pip cannot create the isolated build environment required by a
``[build-system]`` table, and falls back to the legacy ``setup.py develop``
code path, which only needs the setuptools already present on the machine.
"""

from setuptools import setup

setup()
