"""Resilient Image Fusion: reproduction of Achalakul, Lee & Taylor (ICPP 2000).

Quick start -- everything goes through one facade::

    import repro

    cube = repro.HydiceGenerator.quicklook_cube()
    report = repro.fuse(cube)                                   # sequential
    report = repro.fuse(cube, engine="distributed", workers=8)  # simulated LAN
    report = repro.fuse(cube, engine="distributed", backend="process:4")
    print(report.composite.shape, report.unique_set_size, report.elapsed_seconds)

For repeated workloads, a session keeps the worker-process pool and the
shared-memory cube placement alive between calls; on the streaming
``pipeline`` engine it also overlaps independent cubes on the shared
worker slots::

    with repro.open_session(backend="process", workers=4) as session:
        reports = session.fuse_many(cubes)

    with repro.open_session(engine="pipeline", backend="process:4") as session:
        for report in session.fuse_stream(cubes):
            ...

Engines (``repro.engine_names()``) orchestrate the algorithm -- sequential
reference, manager/worker distribution, distribution plus computational
resiliency, streaming tile-pipelined dataflow -- and backends
(``repro.backend_names()``) decide where the threads execute: a
discrete-event simulated cluster (``"sim"``, virtual
time), host threads (``"local"``) or real processes with shared-memory data
placement (``"process"``, measured wall-clock speed-up).  New engines and
backends register with :func:`repro.register_engine` /
:func:`repro.register_backend` and become available everywhere, CLI
included.

The library layers underneath (see DESIGN.md for the full inventory):

* :mod:`repro.data`        -- synthetic HYDICE-like hyper-spectral scenes,
* :mod:`repro.scp`         -- the SCPlib-like message-passing runtime and
  its backends, plus the persistent worker pool (:mod:`repro.scp.pool`),
* :mod:`repro.resilience`  -- replication, detection, regeneration,
  reconfiguration, attacks, camouflage,
* :mod:`repro.core`        -- the spectral-screening PCT fusion algorithm,
* :mod:`repro.api`         -- the unified facade, registries and sessions.

The constructor-style entry points ``DistributedPCT`` and ``ResilientPCT``
still work but are deprecated shims over :func:`repro.fuse`.
"""

from .api import (BackendContext, BackendSpec, FusionReport, FusionRequest,
                  FusionSession, backend_names, create_backend,
                  describe_backends, engine_names, fuse, get_engine,
                  open_session, register_backend, register_engine, run_request)
from .config import (COMPUTE_DTYPES, FusionConfig, PAPER_SETUP, PaperSetup,
                     PartitionConfig, ResilienceConfig, ScreeningConfig)
from .core import (DistributedPCT, DistributedRunOutcome, FusionResult,
                   ResilientPCT, ResilientRunOutcome, SpectralScreeningPCT)
from .core.kernels import compute_names, register_compute
from .core.profiling import StageTiming
from .data import HydiceConfig, HydiceGenerator, HyperspectralCube, generate_cube

__version__ = "1.10.0"

__all__ = [
    # Unified fusion API
    "fuse",
    "open_session",
    "run_request",
    "FusionRequest",
    "FusionReport",
    "FusionSession",
    "BackendContext",
    "BackendSpec",
    "backend_names",
    "create_backend",
    "describe_backends",
    "engine_names",
    "get_engine",
    "register_backend",
    "register_engine",
    # Compute-kernel tier
    "compute_names",
    "register_compute",
    # Profiling
    "StageTiming",
    # Configuration
    "COMPUTE_DTYPES",
    "FusionConfig",
    "PAPER_SETUP",
    "PaperSetup",
    "PartitionConfig",
    "ResilienceConfig",
    "ScreeningConfig",
    # Engines (constructor style; DistributedPCT/ResilientPCT are deprecated)
    "DistributedPCT",
    "DistributedRunOutcome",
    "FusionResult",
    "ResilientPCT",
    "ResilientRunOutcome",
    "SpectralScreeningPCT",
    # Data
    "HydiceConfig",
    "HydiceGenerator",
    "HyperspectralCube",
    "generate_cube",
    "__version__",
]
