"""Resilient Image Fusion: reproduction of Achalakul, Lee & Taylor (ICPP 2000).

The library has four layers (see DESIGN.md for the full inventory):

* :mod:`repro.data`        -- synthetic HYDICE-like hyper-spectral scenes,
* :mod:`repro.scp`         -- the SCPlib-like message-passing runtime with a
  real-thread backend, a real-process backend (shared-memory data placement,
  measured wall-clock speed-up) and a discrete-event simulated-cluster
  backend,
* :mod:`repro.resilience`  -- computational resiliency: replication,
  detection, regeneration, reconfiguration, attacks, camouflage,
* :mod:`repro.core`        -- the spectral-screening PCT fusion algorithm in
  sequential, distributed and resilient forms.

Quick start::

    from repro import HydiceGenerator, SpectralScreeningPCT

    cube = HydiceGenerator.quicklook_cube()
    result = SpectralScreeningPCT().fuse(cube)
    print(result.composite.shape, result.unique_set_size)
"""

from .config import (FusionConfig, PAPER_SETUP, PaperSetup, PartitionConfig,
                     ResilienceConfig, ScreeningConfig)
from .core import (DistributedPCT, DistributedRunOutcome, FusionResult,
                   ResilientPCT, ResilientRunOutcome, SpectralScreeningPCT)
from .data import HydiceConfig, HydiceGenerator, HyperspectralCube, generate_cube

__version__ = "1.1.0"

__all__ = [
    "FusionConfig",
    "PAPER_SETUP",
    "PaperSetup",
    "PartitionConfig",
    "ResilienceConfig",
    "ScreeningConfig",
    "DistributedPCT",
    "DistributedRunOutcome",
    "FusionResult",
    "ResilientPCT",
    "ResilientRunOutcome",
    "SpectralScreeningPCT",
    "HydiceConfig",
    "HydiceGenerator",
    "HyperspectralCube",
    "generate_cube",
    "__version__",
]
