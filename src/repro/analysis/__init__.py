"""Evaluation utilities: speed-up analysis, image quality metrics, reporting."""

from .quality import (band_contrast, best_band_contrast, enhancement_report,
                      rms_contrast, target_contrast)
from .report import (dict_table, figure4_table, figure5_table, format_table,
                     overhead_table)
from .speedup import (OverheadDecomposition, SpeedupCurve, SpeedupPoint,
                      crossover_processors, mean_protocol_overhead,
                      overhead_decomposition)

__all__ = [
    "band_contrast",
    "best_band_contrast",
    "enhancement_report",
    "rms_contrast",
    "target_contrast",
    "dict_table",
    "figure4_table",
    "figure5_table",
    "format_table",
    "overhead_table",
    "OverheadDecomposition",
    "SpeedupCurve",
    "SpeedupPoint",
    "crossover_processors",
    "mean_protocol_overhead",
    "overhead_decomposition",
]
