"""Plain-text (ASCII) figure rendering.

The paper presents its evaluation as two charts.  The benchmark harness and
the CLI regenerate them as text so the "figures" can live inside terminal
output, log files and ``bench_output.txt`` without a plotting dependency:

* :func:`line_chart` -- a general multi-series scatter/line chart on linear or
  logarithmic axes,
* :func:`figure4_chart` -- log-log time vs. processors for the plain and
  resilient series (the paper's Figure 4), and
* :func:`figure5_chart` -- time vs. processors for the granularity multipliers
  (the paper's Figure 5).

The renderer is intentionally simple: each series is plotted with its own
marker character on a shared canvas, with collisions resolved in favour of the
later series (and marked with ``*`` when two series genuinely overlap).
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

from .speedup import SpeedupCurve

#: Marker characters assigned to successive series.
_MARKERS = "ox+#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("logarithmic axes require positive values")
        return math.log10(value)
    return value


def _ticks(low: float, high: float, count: int, log: bool) -> List[float]:
    if count < 2:
        raise ValueError("need at least two ticks")
    if log:
        return [10 ** (low + (high - low) * i / (count - 1)) for i in range(count)]
    return [low + (high - low) * i / (count - 1) for i in range(count)]


def line_chart(series: Mapping[str, Sequence[Tuple[float, float]]], *,
               width: int = 60, height: int = 18,
               log_x: bool = False, log_y: bool = False,
               x_label: str = "x", y_label: str = "y",
               title: Optional[str] = None) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping from series label to its (x, y) samples.
    width / height:
        Plot-area size in character cells (axes and legend are added around it).
    log_x / log_y:
        Use logarithmic axes (the paper's Figure 4 is log-log).
    x_label / y_label / title:
        Axis labels and an optional title line.
    """
    if not series:
        raise ValueError("no series to plot")
    points = [(x, y) for samples in series.values() for x, y in samples]
    if not points:
        raise ValueError("series contain no points")
    xs = [_transform(x, log_x) for x, _ in points]
    ys = [_transform(y, log_y) for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    canvas = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = int(round((_transform(x, log_x) - x_low) / (x_high - x_low) * (width - 1)))
        row = int(round((_transform(y, log_y) - y_low) / (y_high - y_low) * (height - 1)))
        row = height - 1 - row
        current = canvas[row][column]
        canvas[row][column] = "*" if current not in (" ", marker) else marker

    legend = []
    for index, (label, samples) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"  {marker} {label}")
        for x, y in samples:
            place(x, y, marker)

    lines: List[str] = []
    if title:
        lines.append(title)
    y_ticks = _ticks(y_low, y_high, 5, log_y)
    tick_rows = {height - 1 - int(round(i * (height - 1) / 4)): tick
                 for i, tick in enumerate(y_ticks)}
    for row_index, row in enumerate(canvas):
        tick = tick_rows.get(row_index)
        prefix = f"{tick:10.3g} |" if tick is not None else " " * 10 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    x_ticks = _ticks(x_low, x_high, 5, log_x)
    tick_line = [" "] * (width + 12)
    for i, tick in enumerate(x_ticks):
        column = 12 + int(round(i * (width - 1) / 4))
        text = f"{tick:g}"
        for offset, char in enumerate(text):
            if column + offset < len(tick_line):
                tick_line[column + offset] = char
    lines.append("".join(tick_line))
    lines.append(f"{'':11s} {x_label}   (y: {y_label}"
                 f"{', log-log' if log_x and log_y else ''})")
    lines.extend(legend)
    return "\n".join(lines)


def figure4_chart(no_resiliency: SpeedupCurve, resiliency: SpeedupCurve, *,
                  width: int = 60, height: int = 16) -> str:
    """The paper's Figure 4: log-log time vs. processors for both series."""
    series = {
        no_resiliency.label: [(p.processors, p.elapsed_seconds)
                              for p in no_resiliency.sorted_points()],
        resiliency.label: [(p.processors, p.elapsed_seconds)
                           for p in resiliency.sorted_points()],
    }
    return line_chart(series, width=width, height=height, log_x=True, log_y=True,
                      x_label="processors", y_label="time (virtual s)",
                      title="Figure 4: time vs processors (log-log)")


def figure5_chart(curves: Mapping[int, SpeedupCurve], *, width: int = 60,
                  height: int = 16) -> str:
    """The paper's Figure 5: time vs. processors per granularity multiplier."""
    series = {
        f"#sub-cube = #proc x {multiplier}": [
            (p.processors, p.elapsed_seconds) for p in curve.sorted_points()]
        for multiplier, curve in sorted(curves.items())
    }
    return line_chart(series, width=width, height=height, log_x=False, log_y=False,
                      x_label="processors", y_label="time (virtual s)",
                      title="Figure 5: granularity control")


def efficiency_bar_chart(curve: SpeedupCurve, *, width: int = 50,
                         title: Optional[str] = None) -> str:
    """Horizontal bar chart of parallel efficiency per processor count."""
    efficiency = curve.efficiency()
    lines = [title] if title else []
    for processors in sorted(efficiency):
        value = efficiency[processors]
        filled = int(round(min(max(value, 0.0), 1.2) / 1.2 * width))
        bar = "#" * filled
        lines.append(f"P={processors:3d} |{bar:<{width}s}| {value:5.2f}")
    lines.append(" " * 6 + "0" + " " * (int(width / 1.2) - 1) + "1.0")
    return "\n".join(lines)


__all__ = ["line_chart", "figure4_chart", "figure5_chart", "efficiency_bar_chart"]
