"""Image quality metrics for the fused composite.

The paper's qualitative claim about Figure 3 -- "significantly improved
contrast levels ... the camouflaged vehicle in the lower left corner is
significantly enhanced against its background" -- is made quantitative here
so it can be asserted by tests and tabulated by benchmarks:

* :func:`target_contrast` measures how far the target pixels' colour deviates
  from the local background in the composite,
* :func:`band_contrast` computes the same quantity on a single raw spectral
  frame (the Figure 2 view), so enhancement = composite contrast relative to
  the best raw-band contrast, and
* :func:`rms_contrast` summarises the global contrast of an image.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.steps.colormap import luminance
from ..data.cube import HyperspectralCube


def rms_contrast(image: np.ndarray) -> float:
    """Root-mean-square contrast of a grey-scale image (std / mean)."""
    image = np.asarray(image, dtype=np.float64)
    mean = float(image.mean())
    if mean == 0:
        return 0.0
    return float(image.std() / abs(mean))


def _as_grey(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 3 and image.shape[-1] == 3:
        return luminance(image)
    return image


def target_contrast(image: np.ndarray, target_mask: np.ndarray, *,
                    dilate: int = 6) -> float:
    """Separation between target pixels and their local background.

    The metric is the absolute difference between the mean target intensity
    and the mean intensity of a surrounding background annulus, normalised by
    the background standard deviation (a signal-to-clutter ratio).  For RGB
    inputs the per-channel separations are combined in quadrature, so a
    target that differs from the background only chromatically (the
    camouflage case) still scores high.
    """
    target_mask = np.asarray(target_mask, dtype=bool)
    if not target_mask.any():
        raise ValueError("target mask selects no pixels")
    image = np.asarray(image, dtype=np.float64)
    background_mask = _annulus(target_mask, dilate)

    if image.ndim == 3:
        separations = []
        for channel in range(image.shape[-1]):
            plane = image[..., channel]
            separations.append(_separation(plane, target_mask, background_mask))
        return float(np.sqrt(np.sum(np.square(separations))))
    return float(_separation(image, target_mask, background_mask))


def _separation(plane: np.ndarray, target_mask: np.ndarray,
                background_mask: np.ndarray) -> float:
    target = plane[target_mask]
    background = plane[background_mask]
    spread = float(background.std())
    if spread == 0:
        spread = 1e-9
    return abs(float(target.mean()) - float(background.mean())) / spread


def _annulus(mask: np.ndarray, dilate: int) -> np.ndarray:
    """Background annulus: pixels within ``dilate`` steps of the target but
    not the target itself (simple binary dilation without SciPy ndimage)."""
    grown = mask.copy()
    for _ in range(max(1, dilate)):
        shifted = np.zeros_like(grown)
        shifted[1:, :] |= grown[:-1, :]
        shifted[:-1, :] |= grown[1:, :]
        shifted[:, 1:] |= grown[:, :-1]
        shifted[:, :-1] |= grown[:, 1:]
        grown |= shifted
    annulus = grown & ~mask
    if not annulus.any():
        # Degenerate case (target covers the whole image): fall back to all
        # non-target pixels.
        annulus = ~mask
    return annulus


def band_contrast(cube: HyperspectralCube, target_mask: np.ndarray, *,
                  wavelength_nm: Optional[float] = None, dilate: int = 6) -> float:
    """Target contrast measured on a single raw spectral frame."""
    if wavelength_nm is None:
        index = cube.bands // 2
        frame = cube.band(index)
    else:
        _, frame = cube.band_nearest(wavelength_nm)
    return target_contrast(frame, target_mask, dilate=dilate)


def best_band_contrast(cube: HyperspectralCube, target_mask: np.ndarray, *,
                       stride: int = 8, dilate: int = 6) -> Tuple[int, float]:
    """Best single-band target contrast over a strided band sweep.

    Returns ``(band_index, contrast)``; the composite's enhancement factor is
    measured against this, which is a conservative comparison (the composite
    must beat the best individual band, not an average one).
    """
    best_index, best_value = 0, -np.inf
    for index in range(0, cube.bands, max(1, stride)):
        value = target_contrast(cube.band(index), target_mask, dilate=dilate)
        if value > best_value:
            best_index, best_value = index, value
    return best_index, float(best_value)


def enhancement_report(cube: HyperspectralCube, composite: np.ndarray,
                       target_mask: np.ndarray) -> Dict[str, float]:
    """Summary used by the Figure 3 benchmark: raw vs fused target contrast."""
    best_band, raw = best_band_contrast(cube, target_mask)
    fused = target_contrast(composite, target_mask)
    return {
        "best_band_index": float(best_band),
        "raw_contrast": raw,
        "fused_contrast": fused,
        "enhancement_factor": fused / raw if raw > 0 else np.inf,
        "composite_rms_contrast": rms_contrast(_as_grey(composite)),
    }


__all__ = [
    "rms_contrast",
    "target_contrast",
    "band_contrast",
    "best_band_contrast",
    "enhancement_report",
]
