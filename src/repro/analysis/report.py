"""Plain-text tables and figure series for the benchmark harness.

The paper's evaluation is presented as two charts (Figures 4 and 5) plus
prose claims.  The benchmark harness regenerates them as text tables printed
to stdout and captured into ``bench_output.txt``; this module owns the
formatting so every benchmark prints consistent, diff-able rows.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

from .speedup import OverheadDecomposition, SpeedupCurve


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, title: Optional[str] = None, float_fmt: str = "{:.3f}") -> str:
    """Render a fixed-width text table."""
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    rendered_rows = [[render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def figure4_table(no_resiliency: SpeedupCurve, resiliency: SpeedupCurve,
                  *, replication_level: int = 2) -> str:
    """The Figure 4 series: time vs processors, with and without resiliency."""
    headers = ["processors", "time_no_resiliency_s", "time_resiliency_s",
               "speedup_plain", "speedup_resilient", "efficiency_plain"]
    speed_plain = no_resiliency.speedup()
    speed_res = resiliency.speedup()
    eff_plain = no_resiliency.efficiency()
    rows = []
    res_by_p = {p.processors: p.elapsed_seconds for p in resiliency.sorted_points()}
    for point in no_resiliency.sorted_points():
        p = point.processors
        rows.append([
            p,
            point.elapsed_seconds,
            res_by_p.get(p, float("nan")),
            speed_plain[p],
            speed_res.get(p, float("nan")),
            eff_plain[p],
        ])
    return format_table(headers, rows,
                        title=f"Figure 4: speed-up with and without resiliency "
                              f"(replication level {replication_level})")


def overhead_table(decompositions: Sequence[OverheadDecomposition]) -> str:
    """The Section 4 overhead decomposition (replication + ~10% protocols)."""
    headers = ["processors", "plain_s", "resilient_s", "total_slowdown",
               "replication_factor", "protocol_overhead"]
    rows = [[d.processors, d.plain_seconds, d.resilient_seconds, d.total_slowdown,
             d.replication_factor, d.protocol_overhead_fraction]
            for d in decompositions]
    return format_table(headers, rows,
                        title="Resiliency overhead decomposition "
                              "(protocol overhead is beyond the cost of replication)")


def figure5_table(curves: Mapping[int, SpeedupCurve]) -> str:
    """The Figure 5 series: time vs processors per granularity multiplier.

    ``curves`` maps granularity multiplier (1, 2, 3) to its timing curve.
    """
    multipliers = sorted(curves)
    processors = sorted({p.processors for curve in curves.values()
                         for p in curve.sorted_points()})
    headers = ["processors"] + [f"#sub-cube=#proc x {m}" for m in multipliers]
    rows = []
    for p in processors:
        row: List[object] = [p]
        for m in multipliers:
            try:
                row.append(curves[m].time_at(p))
            except KeyError:
                row.append(float("nan"))
        rows.append(row)
    return format_table(headers, rows,
                        title="Figure 5: granularity control (seconds)")


def dict_table(title: str, values: Mapping[str, object]) -> str:
    """Render a flat mapping as a two-column table."""
    return format_table(["metric", "value"],
                        [[k, v] for k, v in values.items()], title=title)


__all__ = ["format_table", "figure4_table", "figure5_table", "overhead_table",
           "dict_table"]
