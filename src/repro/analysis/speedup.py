"""Speed-up, efficiency and resiliency-overhead analysis.

These are the derived quantities Section 4 reports: speed-up relative to the
single-processor run (Figure 4 plots its inverse, run time, on a log-log
scale), closeness to linear speed-up ("within 20% of linear"), and the
decomposition of the resilient run's extra cost into the replication factor
and the protocol overhead ("approximately 10% plus the cost of replication").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class SpeedupPoint:
    """One processor-count sample of a scaling curve."""

    processors: int
    elapsed_seconds: float

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("processors must be >= 1")
        if self.elapsed_seconds <= 0:
            raise ValueError("elapsed_seconds must be positive")


@dataclass
class SpeedupCurve:
    """A scaling curve: elapsed time as a function of processor count."""

    label: str
    points: List[SpeedupPoint] = field(default_factory=list)

    def add(self, processors: int, elapsed_seconds: float) -> "SpeedupCurve":
        self.points.append(SpeedupPoint(processors, elapsed_seconds))
        return self

    def sorted_points(self) -> List[SpeedupPoint]:
        return sorted(self.points, key=lambda p: p.processors)

    # ------------------------------------------------------------ derivations
    def baseline_seconds(self) -> float:
        """Elapsed time of the smallest processor count (usually 1)."""
        pts = self.sorted_points()
        if not pts:
            raise ValueError(f"curve {self.label!r} has no points")
        return pts[0].elapsed_seconds * pts[0].processors  # normalise to 1 proc

    def time_at(self, processors: int) -> float:
        for point in self.points:
            if point.processors == processors:
                return point.elapsed_seconds
        raise KeyError(f"curve {self.label!r} has no point at {processors} processors")

    def speedup(self, baseline_seconds: Optional[float] = None) -> Dict[int, float]:
        """Speed-up per processor count, relative to ``baseline_seconds``.

        When ``baseline_seconds`` is omitted the curve's own smallest
        processor count is used (scaled to an equivalent one-processor time),
        matching the paper's self-relative speed-up.
        """
        base = baseline_seconds if baseline_seconds is not None else self.baseline_seconds()
        return {p.processors: base / p.elapsed_seconds for p in self.sorted_points()}

    def efficiency(self, baseline_seconds: Optional[float] = None) -> Dict[int, float]:
        """Parallel efficiency (speed-up divided by processor count)."""
        return {p: s / p for p, s in self.speedup(baseline_seconds).items()}

    def fraction_of_linear(self, baseline_seconds: Optional[float] = None) -> Dict[int, float]:
        """Identical to :meth:`efficiency`; named after the paper's phrasing
        ("operates within 20% of linear speedup" means this value >= 0.8)."""
        return self.efficiency(baseline_seconds)

    def worst_efficiency(self, baseline_seconds: Optional[float] = None) -> float:
        eff = self.efficiency(baseline_seconds)
        return min(eff.values())


@dataclass(frozen=True)
class OverheadDecomposition:
    """Decomposition of a resilient run's cost versus the plain run.

    Attributes
    ----------
    processors:
        Worker count at which the comparison is made.
    plain_seconds / resilient_seconds:
        Elapsed times of the two runs.
    replication_level:
        Replication level of the resilient run.
    replication_factor:
        Expected slow-down from replication alone (the replicated processes
        consume processor resources): equals the replication level when
        replicas share the same set of workstations.
    protocol_overhead_fraction:
        The extra cost beyond replication, expressed as a fraction of the
        replication-adjusted time -- the quantity the paper reports as
        "approximately 10%".
    """

    processors: int
    plain_seconds: float
    resilient_seconds: float
    replication_level: int

    @property
    def total_slowdown(self) -> float:
        return self.resilient_seconds / self.plain_seconds

    @property
    def replication_factor(self) -> float:
        return float(self.replication_level)

    @property
    def protocol_overhead_fraction(self) -> float:
        expected = self.plain_seconds * self.replication_factor
        return self.resilient_seconds / expected - 1.0


def overhead_decomposition(plain: SpeedupCurve, resilient: SpeedupCurve,
                           replication_level: int) -> List[OverheadDecomposition]:
    """Pair up two curves processor-by-processor and decompose the overhead."""
    decompositions = []
    resilient_by_p = {p.processors: p.elapsed_seconds for p in resilient.sorted_points()}
    for point in plain.sorted_points():
        if point.processors not in resilient_by_p:
            continue
        decompositions.append(OverheadDecomposition(
            processors=point.processors,
            plain_seconds=point.elapsed_seconds,
            resilient_seconds=resilient_by_p[point.processors],
            replication_level=replication_level))
    return decompositions


def mean_protocol_overhead(decompositions: Sequence[OverheadDecomposition]) -> float:
    """Average protocol overhead fraction across processor counts."""
    if not decompositions:
        raise ValueError("no decompositions to average")
    return sum(d.protocol_overhead_fraction for d in decompositions) / len(decompositions)


def crossover_processors(curve: SpeedupCurve, *, efficiency_floor: float = 0.5
                         ) -> Optional[int]:
    """Smallest processor count whose efficiency drops below ``efficiency_floor``.

    The paper observes that, for its problem size, "using more than 16
    computers will not buy substantial performance improvement"; this helper
    locates that roll-off point in a regenerated curve.
    """
    efficiency = curve.efficiency()
    for processors in sorted(efficiency):
        if efficiency[processors] < efficiency_floor:
            return processors
    return None


__all__ = [
    "SpeedupPoint",
    "SpeedupCurve",
    "OverheadDecomposition",
    "overhead_decomposition",
    "mean_protocol_overhead",
    "crossover_processors",
]
