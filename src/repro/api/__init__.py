"""Unified fusion API: one facade, pluggable engines and backends.

This package is the stable surface of the library:

* :func:`repro.fuse` -- one-shot fusion of a cube on any registered engine
  (``sequential`` / ``distributed`` / ``resilient``) and backend (``sim`` /
  ``local`` / ``process``),
* :func:`repro.open_session` -- a context-managed session that keeps the
  worker-process pool and shared-memory cube placement alive across
  repeated :meth:`~repro.api.session.FusionSession.fuse` calls,
* :func:`register_engine` / :func:`register_backend` -- extension points a
  new orchestration strategy or execution substrate plugs into, replacing
  the string ``if/elif`` dispatch that used to be threaded through the CLI
  and the experiment harness.

See the package README for the engine x backend support matrix.
"""

from ..scp.registry import (BackendContext, BackendSpec, backend_names,
                            create_backend, describe_backends, register_backend)
from .engines import (FusionEngine, engine_names, get_engine, register_engine)
from .facade import fuse, run_request
from .request import FusionReport, FusionRequest
from .session import FusionSession, open_session

__all__ = [
    "BackendContext",
    "BackendSpec",
    "backend_names",
    "create_backend",
    "describe_backends",
    "register_backend",
    "FusionEngine",
    "engine_names",
    "get_engine",
    "register_engine",
    "fuse",
    "run_request",
    "FusionReport",
    "FusionRequest",
    "FusionSession",
    "open_session",
]
