"""Engine registry: named fusion engines behind one protocol.

An *engine* decides how the eight algorithm steps are orchestrated
(sequentially in-process, manager/worker on an SCP backend, manager/worker
with computational resiliency); a *backend* decides where the orchestrated
threads execute (simulated cluster, host threads, real processes).  Engines
are registered by name with :func:`register_engine` and looked up with
:func:`get_engine`; :func:`repro.fuse` and :class:`repro.api.session.
FusionSession` drive everything through the common :class:`FusionEngine`
protocol, so adding an engine is one decorated class -- no CLI or
experiment-harness surgery.

Built-in engines
----------------
==========  ==============================================  ================
name        orchestration                                   backends
==========  ==============================================  ================
sequential  single-process reference pipeline (Section 3)   -- (inline)
distributed manager/worker on the SCP runtime (Section 4)   sim, local, process
resilient   distributed + replication/detection/recovery    sim, local, process
pipeline    streaming tile-pipelined dataflow on pooled     process, local, sim
            worker slots (:mod:`repro.core.streaming`)
==========  ==============================================  ================

All engines produce bit-identical composites for the same request -- that
is the paper's correctness claim, and the cross-engine parity tests assert
it through this registry.
"""

from __future__ import annotations

import time
from typing import (Callable, Dict, List, Optional, Protocol, Type, TypeVar,
                    cast, runtime_checkable)

from ..cluster.metrics import RunMetrics
from ..core.distributed import _DistributedPCT
from ..core.pipeline import FusionResult, SpectralScreeningPCT
from ..core.profiling import (StageTiming, build_stage_timings,
                              stage_timings_from_result)
from ..core.resilient import _ResilientPCT
from ..scp.runtime import Backend
from .request import FusionReport, FusionRequest


@runtime_checkable
class FusionEngine(Protocol):
    """What every registered engine implements."""

    #: Registered name (filled in by :func:`register_engine`).
    name: str
    #: Whether the engine executes on an SCP backend (``False`` = inline).
    uses_backend: bool

    def run(self, request: FusionRequest,
            backend: Optional[Backend] = None) -> FusionReport:
        """Execute ``request`` and return the unified report.

        ``backend`` optionally injects an already-built backend instance
        (sessions use this to hand engines their pooled backend); when it is
        ``None`` the engine resolves ``request.backend`` via the registry.
        """
        ...


_ENGINES: Dict[str, Type[object]] = {}

#: The decorated engine class passes through :func:`register_engine` unchanged.
_EngineClass = TypeVar("_EngineClass", bound=Type[object])


def register_engine(name: str) -> Callable[[_EngineClass], _EngineClass]:
    """Class decorator registering a :class:`FusionEngine` under ``name``."""
    def decorator(cls: _EngineClass) -> _EngineClass:
        if name in _ENGINES:
            raise ValueError(f"engine {name!r} is already registered")
        cls.name = name
        _ENGINES[name] = cls
        return cls
    return decorator


def engine_names() -> List[str]:
    """Sorted names of every registered engine."""
    return sorted(_ENGINES)


def get_engine(name: str) -> FusionEngine:
    """Instantiate the engine registered under ``name``.

    Raises a :class:`ValueError` listing the registered names when ``name``
    is unknown, so a typo in ``repro.fuse(cube, engine="...")`` is a
    one-line fix.
    """
    try:
        cls = _ENGINES[name]
    except (KeyError, TypeError):
        raise ValueError(f"unknown engine {name!r}; registered engines: "
                         f"{', '.join(engine_names())}") from None
    return cast(FusionEngine, cls())


def _reject_resilience_options(request: FusionRequest, engine: str) -> None:
    """Actionable error when resiliency knobs reach a non-resilient engine."""
    for option in ("replication", "attack", "camouflage_period"):
        if getattr(request, option) is not None:
            raise ValueError(
                f"engine {engine!r} does not support the {option!r} option; "
                f"use engine='resilient' for replication, attacks and camouflage")


def _backend_stage_timings(request: FusionRequest, result: FusionResult,
                           metrics: RunMetrics) -> Dict[str, StageTiming]:
    """Stage timings of a manager/worker run, from the backend's metrics.

    Every SCP backend charges :class:`~repro.scp.effects.Compute` effects
    into ``metrics.phase_seconds`` (virtual seconds on the simulated
    backend, measured wall clock on the local/process backends).  Rows and
    the FLOP estimates come from the problem shape and the step cost models;
    the ``transform`` phase fuses steps 7 and 8, so its estimate is the sum
    of both.  With replica execution enabled the phase seconds aggregate
    every replica's work, so the derived rates are cluster-wide, not
    per-node.
    """
    cube = request.cube
    estimator = SpectralScreeningPCT(request.resolved_config(),
                                     n_components=request.n_components,
                                     full_projection=request.full_projection)
    estimates = estimator.estimate_phase_flops(cube, result.unique_set_size)
    flops = {"screening": estimates["screening"],
             "mean": estimates["mean"],
             "covariance": estimates["covariance"],
             "eigendecomposition": estimates["eigendecomposition"],
             "transform": estimates["projection"] + estimates["colormap"]}
    rows = {"screening": cube.pixels, "mean": result.unique_set_size,
            "covariance": result.unique_set_size, "transform": cube.pixels}
    return build_stage_timings(metrics.phase_seconds,
                               phase_invocations=metrics.phase_invocations,
                               phase_rows=rows, phase_flops=flops)


def _reject_pipeline_options(request: FusionRequest, engine: str) -> None:
    """Actionable error when streaming knobs reach a batch engine."""
    if request.tile_rows is not None:
        raise ValueError(
            f"engine {engine!r} runs the steps as one batch and has no "
            f"streaming tiles; use engine='pipeline' for tile_rows")
    if request.max_inflight is not None:
        raise ValueError(
            f"engine {engine!r} runs its batches serially; max_inflight "
            f"applies to session streams -- use "
            f"repro.open_session(engine='pipeline', max_inflight=...)")
    if request.adaptive_tiles is not None:
        raise ValueError(
            f"engine {engine!r} has no streaming tile scheduler; "
            f"adaptive_tiles needs engine='pipeline'")
    if request.zero_copy is not None:
        raise ValueError(
            f"engine {engine!r} has no streaming result path to place in "
            f"shared memory; zero_copy needs engine='pipeline'")


@register_engine("sequential")
class SequentialEngine:
    """The single-process reference pipeline, timed on the host.

    It always executes inline, so a request that names a backend is a
    mistake (the caller believes they selected parallel execution) and is
    rejected with a pointer at the backend-using engines.
    """

    uses_backend = False

    def run(self, request: FusionRequest,
            backend: Optional[Backend] = None) -> FusionReport:
        _reject_resilience_options(request, self.name)
        _reject_pipeline_options(request, self.name)
        if request.backend is not None or backend is not None:
            raise ValueError(
                "engine 'sequential' executes inline and accepts no backend; "
                "use engine='distributed' or engine='resilient' to run on a "
                "registered backend, or omit backend=")
        config = request.resolved_config()
        pipeline = SpectralScreeningPCT(config, n_components=request.n_components,
                                        full_projection=request.full_projection)
        start = time.perf_counter()
        result = pipeline.fuse(request.cube)
        elapsed = time.perf_counter() - start
        metrics = RunMetrics(elapsed_seconds=elapsed, backend="sequential",
                             workers=1,
                             subcubes=config.partition.effective_subcubes)
        return FusionReport(result=result, metrics=metrics,
                            engine=self.name, backend="inline",
                            stage_timings=stage_timings_from_result(result))


@register_engine("distributed")
class DistributedEngine:
    """Manager/worker fusion on any registered SCP backend."""

    uses_backend = True

    def run(self, request: FusionRequest,
            backend: Optional[Backend] = None) -> FusionReport:
        _reject_resilience_options(request, self.name)
        _reject_pipeline_options(request, self.name)
        impl = _DistributedPCT(
            request.resolved_config(), cluster=request.cluster,
            backend=backend if backend is not None else request.backend_choice(),
            n_components=request.n_components,
            full_projection=request.full_projection,
            prefetch=request.prefetch,
            reassign_timeout=request.reassign_timeout,
            protocol=request.protocol,
            share_replica_results=request.share_replica_results)
        outcome = impl.fuse(request.cube)
        label = backend.kind if backend is not None else request.backend_label()
        return FusionReport(result=outcome.result, metrics=outcome.metrics,
                            engine=self.name, backend=label, run=outcome.run,
                            stage_timings=_backend_stage_timings(
                                request, outcome.result, outcome.metrics))


@register_engine("resilient")
class ResilientEngine:
    """Distributed fusion with computational resiliency armed.

    ``request.replication`` overrides the replication level (paper default
    2); ``request.attack`` and ``request.camouflage_period`` layer scripted
    failures and camouflage migration on top without touching the
    algorithm, exactly as in the paper's Section 4 experiments.
    """

    uses_backend = True

    def run(self, request: FusionRequest,
            backend: Optional[Backend] = None) -> FusionReport:
        _reject_pipeline_options(request, self.name)
        if request.protocol is not None:
            raise ValueError(
                "engine 'resilient' derives its protocol cost model from the "
                "resilience configuration; set config.resilience instead of "
                "passing protocol=...")
        impl = _ResilientPCT(
            request.resolved_config(), cluster=request.cluster,
            backend=backend if backend is not None else request.backend_choice(),
            n_components=request.n_components,
            full_projection=request.full_projection,
            prefetch=request.prefetch,
            reassign_timeout=request.reassign_timeout,
            attack=request.attack,
            camouflage_period=request.camouflage_period,
            share_replica_results=request.share_replica_results)
        outcome = impl.fuse(request.cube)
        label = backend.kind if backend is not None else request.backend_label()
        return FusionReport(result=outcome.result, metrics=outcome.metrics,
                            engine=self.name, backend=label, run=outcome.run,
                            resilience=outcome.resilience_report,
                            stage_timings=_backend_stage_timings(
                                request, outcome.result, outcome.metrics))


# Registered at the bottom: the streaming module must see register_engine
# (defined above) while this module is still initialising.
from ..core.streaming import PipelineEngine  # noqa: E402

register_engine("pipeline")(PipelineEngine)


__all__ = ["FusionEngine", "register_engine", "engine_names", "get_engine",
           "SequentialEngine", "DistributedEngine", "ResilientEngine",
           "PipelineEngine"]
