"""`repro.fuse`: the one-shot front door of the library.

Every engine x backend combination is reachable through this single
function; the CLI, the experiments and the benchmarks are all thin layers
over it.  For repeated workloads, :func:`repro.open_session` amortises the
setup the one-shot path pays per call.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..config import FusionConfig
from ..data.cube import HyperspectralCube
from ..scp.registry import BackendSpec
from ..scp.runtime import Backend
from .engines import get_engine
from .request import FusionReport, FusionRequest


def run_request(request: FusionRequest) -> FusionReport:
    """Execute an already-built :class:`FusionRequest`."""
    return get_engine(request.engine).run(request)


def fuse(cube: HyperspectralCube, *,
         engine: str = "sequential",
         backend: Union[str, BackendSpec, Backend, None] = None,
         workers: Optional[int] = None,
         subcubes: Optional[int] = None,
         config: Optional[FusionConfig] = None,
         **options: Any) -> FusionReport:
    """Fuse ``cube`` into a colour composite with one call.

    Parameters
    ----------
    cube:
        The hyper-spectral cube to fuse.
    engine:
        Registered engine name: ``"sequential"`` (default, the in-process
        reference), ``"distributed"`` or ``"resilient"``.
        :func:`repro.engine_names` lists what is registered.
    backend:
        Backend spec for backend-using engines -- ``"sim"`` (default),
        ``"local"``, ``"process"``, or a parameterised spec such as
        ``"process:8"`` (worker-count hint), ``"process:fork"`` (start
        method) or ``"sim:switched"`` (cluster preset).  Already-built
        :class:`~repro.scp.runtime.Backend` instances are accepted too.
        :func:`repro.backend_names` lists what is registered.
    workers / subcubes:
        Partition overrides (defaults: 4 workers, ``subcubes == workers``).
    config:
        Full :class:`~repro.config.FusionConfig` when the shorthand knobs
        are not enough.
    options:
        Any further :class:`~repro.api.request.FusionRequest` field --
        ``n_components``, ``prefetch``, ``cluster``, and for the resilient
        engine ``replication``, ``attack``, ``camouflage_period``.

    Returns
    -------
    FusionReport
        Unified result: ``report.composite``, ``report.metrics``,
        ``report.elapsed_seconds``, plus the raw run and resiliency report
        where applicable.

    Examples
    --------
    >>> report = repro.fuse(cube)                                   # sequential
    >>> report = repro.fuse(cube, engine="distributed", workers=8)  # simulated
    >>> report = repro.fuse(cube, engine="distributed", backend="process:4")
    >>> report = repro.fuse(cube, engine="resilient", attack=scenario)
    """
    unknown = set(options) - set(FusionRequest.__dataclass_fields__)
    if unknown:
        valid = sorted(set(FusionRequest.__dataclass_fields__) - {"cube"})
        raise ValueError(f"unknown fuse option(s) {sorted(unknown)}; "
                         f"valid options: {', '.join(valid)}")
    request = FusionRequest(cube=cube, engine=engine, backend=backend,
                            workers=workers, subcubes=subcubes, config=config,
                            **options)
    return run_request(request)


__all__ = ["fuse", "run_request"]
