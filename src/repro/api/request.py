"""Normalised inputs and outputs of the unified fusion API.

:class:`FusionRequest` is the single value object every fusion engine
consumes: it carries the cube, the engine and backend choices, and every
tuning knob the three engines collectively expose, with one normalisation
path (:meth:`FusionRequest.resolved_config`) replacing the ad-hoc
``FusionConfig`` assembly that used to be duplicated across the CLI, the
experiments and the benchmarks.

:class:`FusionReport` is the single result object every engine returns.  It
unifies the three historical result shapes -- the sequential engine's bare
:class:`~repro.core.pipeline.FusionResult`, the distributed engine's
``DistributedRunOutcome`` (result + metrics + raw run) and the resilient
engine's ``ResilientRunOutcome`` (the same plus a resiliency report) -- so
callers stop caring which engine produced their composite.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

import numpy as np

from ..cluster.machine import Cluster
from ..cluster.metrics import RunMetrics
from ..config import FusionConfig, PartitionConfig, ResilienceConfig
from ..core.pipeline import FusionResult
from ..core.profiling import StageTiming, stage_timings_table
from ..data.cube import HyperspectralCube
from ..resilience.attack import AttackScenario
from ..scp.registry import BackendSpec
from ..scp.runtime import Backend, RunResult
from ..scp.sim_backend import ProtocolConfig


@dataclass
class FusionRequest:
    """Everything a fusion run needs, in normalised form.

    Only ``cube`` is required.  ``engine`` names a registered engine
    (:func:`repro.engine_names` lists them) and ``backend`` a registered
    backend spec (string such as ``"process:8"``, parsed
    :class:`~repro.scp.registry.BackendSpec`, or an already-built
    :class:`~repro.scp.runtime.Backend` instance).  ``workers``/``subcubes``
    are conveniences that override the partition section of ``config``;
    engine-specific options (``replication``, ``attack``,
    ``camouflage_period`` for the resilient engine) are rejected with an
    actionable error by engines that do not support them.
    """

    cube: HyperspectralCube
    engine: str = "sequential"
    backend: Union[str, BackendSpec, Backend, None] = None
    workers: Optional[int] = None
    subcubes: Optional[int] = None
    config: Optional[FusionConfig] = None
    n_components: int = 3
    full_projection: bool = True
    prefetch: int = 2
    reassign_timeout: Optional[float] = None
    cluster: Optional[Cluster] = None
    protocol: Optional[ProtocolConfig] = None
    share_replica_results: bool = True
    #: Resilient engine only: worker replication level (paper default 2).
    replication: Optional[int] = None
    #: Resilient engine only: scripted attack injected during the run.
    attack: Optional[AttackScenario] = None
    #: Resilient engine only: periodic camouflage migration period (seconds).
    camouflage_period: Optional[float] = None
    #: Pipeline engine only: rows per streaming tile in the projection /
    #: colour-map stage.  ``None`` picks ~2 tiles per worker.  Tiling never
    #: changes the composite (the eigendecomposition barrier pins one global
    #: basis), only the streaming granularity.
    tile_rows: Optional[int] = None
    #: Batch scheduling only: concurrent cubes a session's
    #: :meth:`~repro.api.session.FusionSession.fuse_stream` /
    #: :meth:`~repro.api.session.FusionSession.submit` keep in flight
    #: (pipeline engine; other engines run their batches serially).
    max_inflight: Optional[int] = None
    #: Pipeline engine only: size projection tiles adaptively from the
    #: measured stage throughput (EWMA of rows/sec) instead of the fixed
    #: ``tile_rows`` plan.  Like ``tile_rows`` it can never change the
    #: composite -- scheduling only repartitions the projection rows.
    #: ``tile_rows`` then sets the initial probe size.
    adaptive_tiles: Optional[bool] = None
    #: Pipeline engine only: result transport of the projection stage.
    #: ``None`` (default) auto-selects -- workers write tiles straight into
    #: a shared-memory output placement on process executors, thread
    #: executors return blocks in-process; ``True``/``False`` force it.
    zero_copy: Optional[bool] = None
    #: Arithmetic precision of the hot kernels (screening and the step-7
    #: projection): ``"float64"`` (default, bit-identical to the seed
    #: arithmetic) or ``"float32"`` (the documented fast mode).  ``None``
    #: keeps whatever ``config`` says.
    compute_dtype: Optional[str] = None
    #: Compute backend of the hot kernels (:func:`repro.compute_names` lists
    #: the registered tiers): ``"numpy"`` (reference) or ``"numba"``
    #: (jit-fused; degrades to numpy with a warning when numba is missing).
    #: Bit-identical in float64 on every engine and transport.  ``None``
    #: keeps whatever ``config`` says.
    compute: Optional[str] = None

    # ---------------------------------------------------------- normalisation
    def backend_choice(self, default: str = "sim") -> Union[BackendSpec, Backend]:
        """The validated backend selection (spec parsed, instances passed through)."""
        backend = self.backend if self.backend is not None else default
        if isinstance(backend, Backend):
            return backend
        return BackendSpec.parse(backend)

    def backend_label(self) -> str:
        """Human-readable backend name recorded in the report."""
        choice = self.backend_choice()
        return choice.kind if isinstance(choice, Backend) else str(choice)

    def resolved_config(self) -> FusionConfig:
        """Merge ``config`` with the ``workers``/``subcubes``/``replication``
        conveniences (and any worker-count hint in the backend spec, e.g.
        ``"process:8"``) into the final :class:`FusionConfig`."""
        base = self.config if self.config is not None else FusionConfig()
        workers = self.workers
        if workers is None and isinstance(self.backend, (str, BackendSpec)):
            workers = BackendSpec.parse(self.backend).workers
        if workers is not None or self.subcubes is not None:
            partition = base.partition
            new_workers = workers if workers is not None else partition.workers
            new_subcubes = self.subcubes if self.subcubes is not None else (
                partition.subcubes if self.config is not None
                and (partition.subcubes is None or partition.subcubes >= new_workers)
                else None)
            partition = PartitionConfig(workers=new_workers, subcubes=new_subcubes,
                                        axis=partition.axis)
            base = dataclasses.replace(base, partition=partition)
        if self.replication is not None:
            resilience = base.resilience if base.resilience is not None else ResilienceConfig()
            base = base.with_resilience(
                dataclasses.replace(resilience, replication_level=self.replication))
        if self.compute_dtype is not None:
            # FusionConfig.__post_init__ validates the dtype (its
            # ConfigurationError is a ValueError, message included).
            base = dataclasses.replace(base, compute_dtype=self.compute_dtype)
        if self.compute is not None:
            # Validated the same way, against the kernel registry's names.
            base = dataclasses.replace(base, compute=self.compute)
        return base

    def replace(self, **changes: Any) -> "FusionRequest":
        """A copy of this request with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


@dataclass
class FusionReport:
    """Unified output of any fusion engine on any backend.

    Attributes
    ----------
    result:
        The :class:`~repro.core.pipeline.FusionResult` (composite,
        components, PCT basis, unique-set size, provenance metadata).
    metrics:
        :class:`~repro.cluster.metrics.RunMetrics` of the run.  Virtual time
        for the simulated backend, measured wall clock elsewhere; the
        sequential engine records its measured wall clock here too, so
        ``report.elapsed_seconds`` is always meaningful.
    engine / backend:
        Registered engine name and backend label the run used
        (``backend`` is ``"inline"`` for the sequential engine).
    run:
        The raw backend :class:`~repro.scp.runtime.RunResult` (per-replica
        outcomes), when an SCP backend was involved.
    resilience:
        The resiliency coordinator's report (recoveries, attacks,
        reconfigurations), when the resilient engine ran.
    stage_timings:
        Per-stage :class:`~repro.core.profiling.StageTiming` records
        (seconds, invocations, rows/s, effective GFLOP/s), populated by
        every engine; ``repro-fusion fuse --profile`` renders them via
        :meth:`profile_table`.  Seconds are virtual on the simulated
        backend, measured wall clock everywhere else.
    """

    result: FusionResult
    metrics: RunMetrics
    engine: str
    backend: str
    run: Optional[RunResult] = None
    resilience: Optional[Dict[str, object]] = None
    stage_timings: Dict[str, StageTiming] = field(default_factory=dict)

    # ------------------------------------------------------------- shortcuts
    @property
    def composite(self) -> "np.ndarray[Any, Any]":
        """``(rows, cols, 3)`` colour composite in [0, 1]."""
        return self.result.composite

    @property
    def components(self) -> "np.ndarray[Any, Any]":
        return self.result.components

    @property
    def unique_set_size(self) -> int:
        return self.result.unique_set_size

    @property
    def elapsed_seconds(self) -> float:
        return self.metrics.elapsed_seconds

    @property
    def replicas_regenerated(self) -> int:
        return int(self.metrics.replicas_regenerated)

    @property
    def failures_injected(self) -> int:
        return int(self.metrics.failures_injected)

    def summary(self) -> Dict[str, object]:
        """Flat run summary used by the CLI and the examples."""
        info: Dict[str, object] = {
            "engine": self.engine,
            "backend": self.backend,
            "unique_set_size": self.unique_set_size,
            "composite_shape": str(self.composite.shape),
            "elapsed_seconds": round(self.elapsed_seconds, 4),
        }
        if self.resilience is not None:
            info["failures_injected"] = self.failures_injected
            info["replicas_regenerated"] = self.replicas_regenerated
        return info

    def profile_table(self) -> str:
        """The per-stage profile as a fixed-width table (``--profile``).

        Each stage is labelled with the compute backend the run used and a
        ``%peak`` column relates its effective GFLOP/s to the one-shot
        measured host GEMM rate (:func:`~repro.core.profiling.
        measured_gemm_peak_gflops`), so "is this stage BLAS-bound or
        overhead-bound?" reads straight off the table.
        """
        from ..core.profiling import measured_gemm_peak_gflops

        clock = ("virtual" if self.backend.startswith("sim") and
                 self.engine in ("distributed", "resilient") else "wall")
        return stage_timings_table(
            self.stage_timings,
            title=f"per-stage profile ({self.engine} on {self.backend}, "
                  f"{clock} clock)",
            compute=str(self.result.metadata.get("compute", "numpy")),
            peak_gflops=measured_gemm_peak_gflops())


__all__ = ["FusionRequest", "FusionReport"]
