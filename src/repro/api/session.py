"""Reusable fusion sessions: amortise setup across repeated workloads.

A one-shot :func:`repro.fuse` on the process backend pays two setup costs on
every call: the worker *processes* are spawned fresh (interpreter start-up),
and the cube's samples are *copied* into a new shared-memory segment.  For a
service fusing a stream of requests those costs dominate small runs.

:class:`FusionSession` keeps both alive between calls:

* a persistent :class:`~repro.scp.pool.ProcessPool` of worker processes that
  successive runs borrow instead of spawning (see
  :class:`~repro.scp.pool.PooledProcessBackend`), and
* a :class:`~repro.data.shared.SharedCube` placement cache, so fusing the
  same cube again -- a parameter sweep, a retry, a monitoring loop -- never
  re-copies the samples.

Usage::

    with repro.open_session(backend="process", workers=4) as session:
        for cube in stream:
            report = session.fuse(cube)

``benchmarks/bench_session_reuse.py`` measures the effect: five consecutive
``session.fuse`` calls against five one-shot ``repro.fuse`` calls on the
same cube.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple

from ..data.cube import HyperspectralCube
from ..data.shared import SharedCube
from ..scp.pool import PooledProcessBackend, ProcessPool
from ..scp.registry import BackendSpec
from ..scp.runtime import Backend
from .engines import get_engine
from .request import FusionReport, FusionRequest

#: FusionRequest fields a per-call override may set.  ``engine`` and
#: ``backend`` are pinned at session open -- they determine what the session
#: keeps alive -- and ``cube`` is the positional argument of ``fuse``.
_OVERRIDABLE = frozenset(
    field for field in FusionRequest.__dataclass_fields__
    if field not in ("cube", "engine", "backend"))


class FusionSession:
    """A fusion engine/backend pair with its expensive setup kept alive.

    Parameters
    ----------
    engine:
        Registered engine name; fixed for the session's lifetime.
    backend:
        Backend spec string or :class:`BackendSpec`.  ``None`` defaults to
        ``"process"`` for backend-using engines (the backend whose setup a
        session actually amortises) and inline execution for ``sequential``.
    workers / subcubes / config / options:
        Session-wide request defaults; any :class:`FusionRequest` field
        except ``engine``/``backend`` can be overridden per
        :meth:`fuse` call.
    start_method:
        Start method of the worker pool; defaults to the spec's variant
        (``"process:fork"``) or the platform's cheapest safe method.
    warm:
        When True (default), the pool is pre-spawned at open time so the
        first request does not pay the growth cost.
    max_placements:
        Bound on the shared-memory placement cache (least-recently-used
        eviction).  Segments live in RAM-backed ``/dev/shm``, so an
        unbounded cache over a stream of distinct cubes would exhaust it;
        re-fusing an evicted cube simply re-places it.
    """

    DEFAULT_MAX_PLACEMENTS = 8

    def __init__(self, *, engine: str = "distributed",
                 backend: Optional[str] = None,
                 workers: Optional[int] = None,
                 subcubes: Optional[int] = None,
                 start_method: Optional[str] = None,
                 warm: bool = True,
                 max_placements: int = DEFAULT_MAX_PLACEMENTS,
                 **options) -> None:
        self._engine = get_engine(engine)  # fail fast on typos
        if max_placements < 1:
            raise ValueError("max_placements must be >= 1")
        self._max_placements = max_placements
        if backend is not None and not self._engine.uses_backend:
            raise ValueError(
                f"engine {engine!r} executes inline and accepts no backend; "
                f"omit backend= or open the session on a backend-using engine")
        unknown = set(options) - _OVERRIDABLE
        if unknown:
            raise ValueError(f"unknown session option(s) {sorted(unknown)}; "
                             f"valid options: {sorted(_OVERRIDABLE)}")
        self._defaults = dict(options)
        self._defaults["workers"] = workers
        self._defaults["subcubes"] = subcubes

        if backend is None and self._engine.uses_backend:
            backend = "process"
        self._spec: Optional[BackendSpec] = (
            BackendSpec.parse(backend) if backend is not None else None)

        self._pool: Optional[ProcessPool] = None
        if self._spec is not None and self._spec.name == "process":
            self._pool = ProcessPool(
                start_method=start_method or self._spec.variant or None)
        self._placements: "OrderedDict[int, Tuple[HyperspectralCube, SharedCube]]" \
            = OrderedDict()
        self._closed = False
        self._runs = 0
        if warm and self._pool is not None:
            self._pool.ensure(self._warm_target())

    # --------------------------------------------------------------- queries
    @property
    def engine(self) -> str:
        return self._engine.name

    @property
    def backend(self) -> str:
        return str(self._spec) if self._spec is not None else "inline"

    @property
    def runs_completed(self) -> int:
        return self._runs

    @property
    def spawned_processes(self) -> int:
        """Worker processes spawned so far (flat across warmed-up calls)."""
        return self._pool.spawned_processes if self._pool is not None else 0

    @property
    def closed(self) -> bool:
        return self._closed

    def _warm_target(self) -> int:
        """Replicas the configured run shape needs: workers x replication,
        plus the manager."""
        probe = FusionRequest(cube=None, engine=self.engine,  # type: ignore[arg-type]
                              backend=self._spec, **self._defaults)
        config = probe.resolved_config()
        replication = 1
        if self.engine == "resilient":
            resilience = config.resilience
            replication = resilience.replication_level if resilience is not None else 2
        return config.partition.workers * replication + 1

    # ------------------------------------------------------------------ fuse
    def fuse(self, cube: HyperspectralCube, **overrides) -> FusionReport:
        """Run one fusion on the session's engine/backend pair.

        ``overrides`` accepts any :class:`FusionRequest` field except
        ``engine`` and ``backend`` (those are what the session keeps warm;
        open another session to change them).
        """
        self._check_open()
        illegal = set(overrides) - _OVERRIDABLE
        if illegal:
            raise ValueError(f"cannot override {sorted(illegal)} per call; "
                             f"open a new session instead")
        merged = {**self._defaults, **overrides}
        request = FusionRequest(cube=self._place(cube), engine=self.engine,
                                backend=self._spec, **merged)
        backend_instance: Optional[Backend] = None
        if self._pool is not None:
            backend_instance = PooledProcessBackend(self._pool)
        report = self._engine.run(request, backend=backend_instance)
        self._runs += 1
        return report

    def fuse_many(self, cubes: Iterable[HyperspectralCube],
                  **overrides) -> List[FusionReport]:
        """Fuse a batch of cubes back to back on the warm resources."""
        return [self.fuse(cube, **overrides) for cube in cubes]

    # -------------------------------------------------------------- placement
    def _place(self, cube: HyperspectralCube) -> HyperspectralCube:
        """Shared-memory placement with LRU caching (process backends only).

        The cache is bounded by ``max_placements``: runs are serial, so an
        evicted segment is guaranteed idle and can be released immediately.
        """
        if self._pool is None or isinstance(cube, SharedCube):
            return cube
        entry = self._placements.pop(id(cube), None)
        if entry is not None and entry[0] is cube:
            self._placements[id(cube)] = entry  # re-insert: most recent
            return entry[1]
        shared = SharedCube.from_cube(cube)
        self._placements[id(cube)] = (cube, shared)
        while len(self._placements) > self._max_placements:
            _, (_, evicted) = self._placements.popitem(last=False)
            evicted.close()
        return shared

    @property
    def cubes_placed(self) -> int:
        """Distinct cubes currently held in the shared-memory cache."""
        return len(self._placements)

    # ------------------------------------------------------------- lifecycle
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("fusion session is closed")

    def close(self) -> None:
        """Release the worker pool and every owned shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        for _, shared in self._placements.values():
            shared.close()
        self._placements.clear()
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "FusionSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (f"<FusionSession engine={self.engine!r} backend={self.backend!r} "
                f"runs={self._runs} {state}>")


def open_session(**kwargs) -> FusionSession:
    """Open a :class:`FusionSession`; see the class for parameters.

    The name mirrors :func:`open`: sessions hold operating-system resources
    (processes, shared memory) and should be closed -- use ``with``::

        with repro.open_session(backend="process", workers=4) as session:
            reports = session.fuse_many(cubes)
    """
    return FusionSession(**kwargs)


__all__ = ["FusionSession", "open_session"]
