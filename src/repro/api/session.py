"""Reusable fusion sessions: amortise setup across repeated workloads.

A one-shot :func:`repro.fuse` on the process backend pays two setup costs on
every call: the worker *processes* are spawned fresh (interpreter start-up),
and the cube's samples are *copied* into a new shared-memory segment.  For a
service fusing a stream of requests those costs dominate small runs.

:class:`FusionSession` keeps both alive between calls:

* a persistent :class:`~repro.scp.pool.ProcessPool` of worker processes that
  successive runs borrow instead of spawning (see
  :class:`~repro.scp.pool.PooledProcessBackend`), and
* a :class:`~repro.data.shared.SharedCube` placement cache, so fusing the
  same cube again -- a parameter sweep, a retry, a monitoring loop -- never
  re-copies the samples.

Usage::

    with repro.open_session(backend="process", workers=4) as session:
        for cube in stream:
            report = session.fuse(cube)

On the ``pipeline`` engine a session additionally *streams*: independent
cubes overlap on the shared worker slots instead of queueing behind each
other, with a bounded in-flight window for backpressure::

    with repro.open_session(engine="pipeline", backend="process:4",
                            max_inflight=4) as session:
        for report in session.fuse_stream(cubes):
            serve(report.composite)

``benchmarks/bench_session_reuse.py`` measures the reuse effect (five
consecutive ``session.fuse`` calls against five one-shot ``repro.fuse``
calls); ``benchmarks/bench_pipeline_throughput.py`` measures streaming
throughput (cubes/second for a queue of fusions, pipeline vs serial).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, Iterable, Iterator, List, Optional

from ..config import FusionConfig
from ..core.streaming import execute_pipeline_request, validate_pipeline_request
from ..data.cube import HyperspectralCube
from ..data.shared import OutputPool, SharedCube
from ..scp.pool import PooledProcessBackend, ProcessPool
from ..scp.registry import BackendSpec
from ..scp.runtime import Backend
from ..scp.stages import (PoolStageExecutor, ThreadStageExecutor,
                          TransportStageExecutor)
from ..scp.transport import SocketTransport
from .engines import get_engine
from .request import FusionReport, FusionRequest

#: Concurrent cubes a streaming session keeps in flight when the request
#: does not say otherwise (pipeline engine only; batch engines are serial).
DEFAULT_MAX_INFLIGHT = 4

#: FusionRequest fields a per-call override may set.  ``engine`` and
#: ``backend`` are pinned at session open -- they determine what the session
#: keeps alive -- and ``cube`` is the positional argument of ``fuse``.
_OVERRIDABLE = frozenset(
    field for field in FusionRequest.__dataclass_fields__
    if field not in ("cube", "engine", "backend"))


class FusionSession:
    """A fusion engine/backend pair with its expensive setup kept alive.

    Parameters
    ----------
    engine:
        Registered engine name; fixed for the session's lifetime.
    backend:
        Backend spec string or :class:`BackendSpec`.  ``None`` defaults to
        ``"process"`` for backend-using engines (the backend whose setup a
        session actually amortises) and inline execution for ``sequential``.
    workers / subcubes / config / options:
        Session-wide request defaults; any :class:`FusionRequest` field
        except ``engine``/``backend`` can be overridden per
        :meth:`fuse` call.
    start_method:
        Start method of the worker pool; defaults to the spec's variant
        (``"process:fork"``) or the platform's cheapest safe method.
    warm:
        When True (default), the pool is pre-spawned at open time so the
        first request does not pay the growth cost.
    max_placements:
        Bound on the shared-memory placement cache (least-recently-used
        eviction).  Segments live in RAM-backed ``/dev/shm``, so an
        unbounded cache over a stream of distinct cubes would exhaust it;
        re-fusing an evicted cube simply re-places it.
    """

    DEFAULT_MAX_PLACEMENTS = 8

    def __init__(self, *, engine: str = "distributed",
                 backend: Optional[str] = None,
                 workers: Optional[int] = None,
                 subcubes: Optional[int] = None,
                 start_method: Optional[str] = None,
                 warm: bool = True,
                 max_placements: int = DEFAULT_MAX_PLACEMENTS,
                 **options: Any) -> None:
        self._engine = get_engine(engine)  # fail fast on typos
        if max_placements < 1:
            raise ValueError("max_placements must be >= 1")
        self._max_placements = max_placements
        if backend is not None and not self._engine.uses_backend:
            raise ValueError(
                f"engine {engine!r} executes inline and accepts no backend; "
                f"omit backend= or open the session on a backend-using engine")
        unknown = set(options) - _OVERRIDABLE
        if unknown:
            raise ValueError(f"unknown session option(s) {sorted(unknown)}; "
                             f"valid options: {sorted(_OVERRIDABLE)}")
        self._defaults = dict(options)
        self._defaults["workers"] = workers
        self._defaults["subcubes"] = subcubes

        if backend is None and self._engine.uses_backend:
            backend = "process"
        self._spec: Optional[BackendSpec] = (
            BackendSpec.parse(backend) if backend is not None else None)

        self._start_method = start_method
        self._pool: Optional[ProcessPool] = None
        if self._spec is not None and self._spec.name == "process":
            self._pool = ProcessPool(
                start_method=start_method or self._spec.variant or None)
        #: id(cube) -> [cube, placement, pins]; ``pins`` counts in-flight
        #: runs using the placement (see :meth:`_place` / :meth:`_unpin`).
        self._placements: "OrderedDict[int, List[object]]" = OrderedDict()
        if self._engine.name != "pipeline" and options.get("max_inflight") is not None:
            raise ValueError(
                f"engine {engine!r} runs its batches serially; max_inflight "
                f"needs engine='pipeline'")
        self._closed = False
        self._runs = 0
        self._lock = threading.Lock()
        self._run_lock = threading.Lock()
        # Streaming machinery, created lazily on first use: one stage
        # executor shared by every in-flight pipeline run, the driver
        # threads of submit()/fuse_stream(), and the pool of reusable
        # zero-copy output placements.
        self._stage_executor: Optional[TransportStageExecutor] = None
        self._drivers: Optional[ThreadPoolExecutor] = None
        self._driver_width: Optional[int] = None
        self._output_pool: Optional[OutputPool] = None
        if warm and self._pool is not None:
            self._pool.ensure(self._warm_target())

    # --------------------------------------------------------------- queries
    @property
    def engine(self) -> str:
        return self._engine.name

    @property
    def backend(self) -> str:
        return str(self._spec) if self._spec is not None else "inline"

    @property
    def runs_completed(self) -> int:
        return self._runs

    @property
    def spawned_processes(self) -> int:
        """Worker processes spawned so far (flat across warmed-up calls)."""
        return self._pool.spawned_processes if self._pool is not None else 0

    @property
    def closed(self) -> bool:
        return self._closed

    def _warm_target(self) -> int:
        """Replicas the configured run shape needs: workers x replication,
        plus the manager (pipeline stage slots carry no manager)."""
        config = self._probe_config()
        if self.engine == "pipeline":
            return config.partition.workers
        replication = 1
        if self.engine == "resilient":
            resilience = config.resilience
            replication = resilience.replication_level if resilience is not None else 2
        return config.partition.workers * replication + 1

    def _probe_config(self) -> FusionConfig:
        probe = FusionRequest(cube=None, engine=self.engine,  # type: ignore[arg-type]
                              backend=self._spec, **self._defaults)
        return probe.resolved_config()

    # ------------------------------------------------------------------ fuse
    def fuse(self, cube: HyperspectralCube, **overrides: Any) -> FusionReport:
        """Run one fusion on the session's engine/backend pair.

        ``overrides`` accepts any :class:`FusionRequest` field except
        ``engine`` and ``backend`` (those are what the session keeps warm;
        open another session to change them).
        """
        self._check_open()
        self._check_overrides(overrides)
        merged = {**self._defaults, **overrides}
        request = FusionRequest(cube=self._place(cube), engine=self.engine,
                                backend=self._spec, **merged)
        try:
            if self.engine == "pipeline":
                # Pipeline runs share one long-lived stage executor, so
                # several concurrent fuse() calls (the streaming scheduler's
                # drivers) interleave their tile tasks on the same bounded
                # slot budget.  The engine's option validation applies here
                # too, even though engine.run() is bypassed.
                validate_pipeline_request(request, one_shot=False)
                report = execute_pipeline_request(request, self._stage_runtime(),
                                                  backend_label=self.backend,
                                                  output_pool=self._output_runtime())
            else:
                # One pool serves one program run at a time (its shared
                # outbox would cross reports), so batch-engine runs are
                # serialised even when submit() drivers and direct fuse()
                # callers overlap.
                with self._run_lock:
                    backend_instance: Optional[Backend] = None
                    if self._pool is not None:
                        backend_instance = PooledProcessBackend(self._pool)
                    report = self._engine.run(request, backend=backend_instance)
        finally:
            self._unpin(cube)
        with self._lock:
            self._runs += 1
        return report

    def fuse_many(self, cubes: Iterable[HyperspectralCube],
                  **overrides: Any) -> List[FusionReport]:
        """Fuse a batch of cubes back to back on the warm resources.

        An empty batch returns an empty list on every engine (after the
        same open/override validation a non-empty batch would get), so
        callers never see engine-dependent behaviour at the boundary.
        """
        self._check_open()
        self._check_overrides(overrides)
        return [self.fuse(cube, **overrides) for cube in cubes]

    # ------------------------------------------------------------- streaming
    def submit(self, cube: HyperspectralCube,
               **overrides: Any) -> "Future[FusionReport]":
        """Queue one fusion; returns a future resolving to its report.

        On the pipeline engine up to ``max_inflight`` submissions execute
        concurrently, overlapping their stages on the shared worker slots;
        the other engines drain the queue serially (their backends run one
        fusion at a time).  Futures of an abandoned batch are failed, and
        their resources reclaimed, by :meth:`close`.
        """
        self._check_open()
        self._check_overrides(overrides)
        return self._driver_pool(self._max_inflight(overrides)) \
            .submit(self.fuse, cube, **overrides)

    def fuse_stream(self, cubes: Iterable[HyperspectralCube],
                    **overrides: Any) -> Iterator[FusionReport]:
        """Fuse a stream of cubes, yielding reports in input order.

        A bounded window of cubes is kept in flight (``max_inflight``), so
        arbitrarily long streams run in O(window) memory: the generator
        blocks the producer instead of buffering the backlog.  Equivalent to
        ``fuse_many`` report for report -- the engines guarantee the
        composites are identical either way -- but on the pipeline engine
        the stream overlaps independent cubes instead of running them
        serially.

        Validation is eager (a closed session or a bad override raises
        here, not at the first ``next()``), and an empty stream yields
        nothing on every engine without touching the driver machinery --
        the same boundary contract as :meth:`fuse_many`.
        """
        self._check_open()
        self._check_overrides(overrides)
        inflight = self._max_inflight(overrides)
        return self._stream(cubes, inflight, overrides)

    def _stream(self, cubes: Iterable[HyperspectralCube], inflight: int,
                overrides: Dict[str, Any]) -> Iterator[FusionReport]:
        window: "deque[Future[FusionReport]]" = deque()
        try:
            for cube in cubes:
                window.append(self.submit(cube, **overrides))
                while len(window) > inflight:
                    yield window.popleft().result()
            while window:
                yield window.popleft().result()
        finally:
            for future in window:  # abandoned mid-stream: drop what we can
                future.cancel()

    def _max_inflight(self, overrides: Optional[Dict[str, Any]] = None) -> int:
        if self.engine != "pipeline":
            # Backends of the batch engines run one fusion at a time (one
            # pool outbox per run); the stream still flows, just serially.
            return 1
        merged = {**self._defaults, **(overrides or {})}
        inflight = merged.get("max_inflight")
        if inflight is None:
            inflight = DEFAULT_MAX_INFLIGHT
        if inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        return inflight

    def stage_executor(self) -> TransportStageExecutor:
        """The session-wide stage executor (pipeline engine only).

        This is the documented chaos/testing hook: the crash-matrix tests
        and the scenario simulator (:mod:`repro.scenarios`) reach the
        executor here to ``inject_kill`` SIGKILL storms, submit straggler /
        memory-pressure tasks onto the shared slots, and read the recovery
        counters (``retries``, ``kills_delivered``, ``pending_kills``)
        afterwards.  Created on first use, exactly like the first pipeline
        run would.
        """
        if self.engine != "pipeline":
            raise ValueError(
                f"engine {self.engine!r} does not run on a stage executor; "
                f"chaos injection and stage-level metrics need "
                f"engine='pipeline'")
        return self._stage_runtime()

    def _stage_runtime(self) -> TransportStageExecutor:
        """The session-wide stage executor (created on first pipeline run).

        The backend spec picks the worker transport: ``process`` borrows
        the session's persistent pool, ``socket`` launches a node agent
        (its own worker processes, reached over TCP), and the thread specs
        run on host threads.  Whatever the substrate, the executor object
        and its chaos/metrics surface are identical.
        """
        with self._lock:
            self._check_open()
            if self._stage_executor is None:
                workers = max(self._probe_config().partition.workers, 1)
                if self._pool is not None:
                    self._stage_executor = PoolStageExecutor(
                        self._pool, workers=workers, owns_pool=False)
                elif self._spec is not None and self._spec.name == "socket":
                    self._stage_executor = TransportStageExecutor(
                        SocketTransport(workers=workers,
                                        start_method=self._start_method),
                        workers=workers)
                else:
                    self._stage_executor = ThreadStageExecutor(workers=workers)
            return self._stage_executor

    @property
    def _uses_processes(self) -> bool:
        """Whether this session's runs cross a process boundary (pool or
        socket node agent) -- the gate on shared-memory cube and output
        placement, which only pays off when workers are other processes."""
        return self._pool is not None or (
            self._spec is not None and self._spec.name == "socket")

    def _output_runtime(self) -> Optional[OutputPool]:
        """The session-wide pool of reusable zero-copy output placements.

        Only process-backed pipeline sessions (pool or socket) write
        results through shared memory; thread-backed sessions return
        ``None`` and the engine's auto mode keeps their results
        in-process.  Sized to the streaming window: each in-flight run
        pins one placement, and the pool may transiently exceed its bound
        only while every segment is pinned.
        """
        if not self._uses_processes:
            return None
        with self._lock:
            self._check_open()
            if self._output_pool is None:
                self._output_pool = OutputPool(
                    max_segments=max(self._max_inflight(None), 1))
            return self._output_pool

    def _driver_pool(self, width: int) -> ThreadPoolExecutor:
        """The driver threads, sized by the first stream's ``max_inflight``.

        Thread pools cannot grow after creation, so a later call asking for
        a *different* width is an error rather than a silent cap -- losing
        the requested overlap quietly would defeat the engine's purpose.
        """
        with self._lock:
            self._check_open()
            if self._drivers is None:
                self._driver_width = width
                self._drivers = ThreadPoolExecutor(
                    max_workers=width, thread_name_prefix="fuse-stream")
            elif width != self._driver_width:
                raise ValueError(
                    f"max_inflight is pinned to {self._driver_width} by this "
                    f"session's first stream; open a new session (or set "
                    f"max_inflight at open_session) to change it")
            return self._drivers

    # -------------------------------------------------------------- placement
    def _place(self, cube: HyperspectralCube) -> HyperspectralCube:
        """Shared-memory placement with LRU caching (process backends only).

        The cache is bounded by ``max_placements``, but an entry is *pinned*
        while a run uses it: concurrent stream drivers may overlap distinct
        cubes, and a segment must never be released under an in-flight run.
        Eviction therefore happens at unpin time, oldest unpinned first; the
        cache may transiently exceed its bound while everything is in use.
        """
        if not self._uses_processes or isinstance(cube, SharedCube):
            return cube
        with self._lock:  # concurrent stream drivers share the cache
            entry = self._placements.pop(id(cube), None)
            if entry is not None and entry[0] is cube:
                self._placements[id(cube)] = entry  # re-insert: most recent
                entry[2] += 1
                return entry[1]
        # The O(cube-bytes) copy happens outside the lock so concurrent
        # drivers placing distinct cubes overlap; double-check on re-entry
        # (another driver may have placed this very cube meanwhile).
        shared = SharedCube.from_cube(cube)
        with self._lock:
            entry = self._placements.pop(id(cube), None)
            if entry is None or entry[0] is not cube:
                entry = [cube, shared, 0]
            self._placements[id(cube)] = entry
            entry[2] += 1
            winner = entry[1]
        if winner is not shared:
            shared.close()  # lost the race; release the duplicate segment
        return winner

    def _unpin(self, cube: HyperspectralCube) -> None:
        """Release a run's pin and evict over-bound idle placements."""
        evicted = []
        with self._lock:
            entry = self._placements.get(id(cube))
            if entry is not None and entry[0] is cube:
                entry[2] -= 1
            over = len(self._placements) - self._max_placements
            if over > 0:
                for key in [k for k, e in self._placements.items() if e[2] <= 0]:
                    evicted.append(self._placements.pop(key)[1])
                    over -= 1
                    if over <= 0:
                        break
        for stale in evicted:
            stale.close()

    @property
    def cubes_placed(self) -> int:
        """Distinct cubes currently held in the shared-memory cache."""
        return len(self._placements)

    # ------------------------------------------------------------- lifecycle
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("fusion session is closed")

    def _check_overrides(self, overrides: Dict[str, Any]) -> None:
        illegal = set(overrides) - _OVERRIDABLE
        if illegal:
            raise ValueError(f"cannot override {sorted(illegal)} per call; "
                             f"open a new session instead")

    def close(self) -> None:
        """Release the worker pool and every owned shared-memory segment.

        A stream abandoned mid-flight leaves queued driver work, pending
        stage futures and slots mid-task behind; everything is drained here
        in dependency order -- queued drivers cancelled, the stage
        executor's bounded queues failed and their slots discarded, driver
        threads joined -- so no queue feeder thread can block interpreter
        shutdown and no future is left hanging.
        """
        if self._closed:
            return
        self._closed = True
        if self._drivers is not None:
            # Cancel fusions that have not started; running ones are
            # unblocked by the stage-executor close below.
            self._drivers.shutdown(wait=False, cancel_futures=True)
        if self._stage_executor is not None:
            self._stage_executor.close()
        if self._drivers is not None:
            self._drivers.shutdown(wait=True)
        # A driver that was already inside _stage_runtime() when _closed was
        # set may have created the executor after the close above; now that
        # every driver has been joined, catch and close any late arrival.
        with self._lock:
            executor = self._stage_executor
        if executor is not None and not executor.closed:
            executor.close()
        # Output placements are released only after the stage executor is
        # gone (no task can still be writing) -- abandoned-run pins are
        # force-released by OutputPool.close, so nothing survives into
        # /dev/shm.
        with self._lock:
            output_pool = self._output_pool
        if output_pool is not None:
            output_pool.close()
        with self._lock:
            placements = [entry[1] for entry in self._placements.values()]
            self._placements.clear()
        for shared in placements:
            shared.close()
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "FusionSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (f"<FusionSession engine={self.engine!r} backend={self.backend!r} "
                f"runs={self._runs} {state}>")


def open_session(**kwargs: Any) -> FusionSession:
    """Open a :class:`FusionSession`; see the class for parameters.

    The name mirrors :func:`open`: sessions hold operating-system resources
    (processes, shared memory) and should be closed -- use ``with``::

        with repro.open_session(backend="process", workers=4) as session:
            reports = session.fuse_many(cubes)
    """
    return FusionSession(**kwargs)


__all__ = ["FusionSession", "open_session"]
