"""Comparison baselines: unscreened PCT and static (non-regenerating) replication."""

from .plain_pct import PlainPCT
from .static_replication import StaticReplicationPCT

__all__ = ["PlainPCT", "StaticReplicationPCT"]
