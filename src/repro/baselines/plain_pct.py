"""Baseline: plain PCT without spectral screening.

The paper motivates spectral screening as a guard against the PCT
"highlighting only the variation that dominates numerically": without it, a
rare target's signature is swamped by the statistics of the dominant
background.  This baseline computes the statistics over *all* pixel vectors
of the image (the classical PCA-based fusion) so the screening ablation
benchmark can quantify how much the screening actually buys in target
contrast.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import FusionConfig
from ..core.pipeline import FusionResult
from ..core.steps.colormap import color_map, component_statistics
from ..core.steps.statistics import covariance_matrix, covariance_sum, mean_vector
from ..core.steps.transform import (project, project_cube_block,
                                    transformation_matrix)
from ..data.cube import HyperspectralCube


class PlainPCT:
    """Principal component fusion with image-wide (unscreened) statistics.

    Parameters
    ----------
    config:
        Only the colour-map section is used.
    n_components:
        Number of retained principal components (>= 3).
    statistics_stride:
        Optional pixel stride used when accumulating the covariance; 1 uses
        every pixel exactly as the textbook PCA would.
    """

    def __init__(self, config: Optional[FusionConfig] = None, *, n_components: int = 3,
                 statistics_stride: int = 1) -> None:
        if n_components < 3:
            raise ValueError("at least 3 components are required for colour mapping")
        if statistics_stride < 1:
            raise ValueError("statistics_stride must be >= 1")
        self.config = config or FusionConfig()
        self.n_components = n_components
        self.statistics_stride = statistics_stride

    def fuse(self, cube: HyperspectralCube) -> FusionResult:
        """Fuse ``cube`` with unscreened, image-wide statistics."""
        pixels = cube.as_pixel_matrix()
        sample = pixels[:: self.statistics_stride]

        mean = mean_vector(sample)
        cov = covariance_matrix([covariance_sum(sample, mean)], total_pixels=sample.shape[0])
        basis = transformation_matrix(cov, mean, n_components=self.n_components)

        stretch_mean, stretch_std = component_statistics(project(sample, basis))
        components = project_cube_block(cube.data, basis)
        composite = color_map(components, mean=stretch_mean, std=stretch_std,
                              normalize=self.config.colormap.normalize_components)

        metadata: Dict[str, object] = {
            "mode": "plain-pct",
            "n_components": self.n_components,
            "statistics_stride": self.statistics_stride,
            "bands": cube.bands,
            "rows": cube.rows,
            "cols": cube.cols,
        }
        return FusionResult(composite=composite, components=components, basis=basis,
                            unique_set_size=int(sample.shape[0]), phase_flops={},
                            metadata=metadata)


__all__ = ["PlainPCT"]
