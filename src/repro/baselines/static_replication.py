"""Baseline: static replication without regeneration.

Section 2 contrasts two designs: conventional replication, which "provides
graceful degradation of system performance to the point of failure", and
computational resiliency, which regenerates lost replicas to restore
operational readiness.  This baseline is the former: the same replication
level, the same detection machinery, but recovery disabled.

Under a mild attack (one replica of a group lost) the static configuration
still completes -- the surviving shadow carries the work.  Under a group
wipe-out it cannot: the run stalls until the manager's optional reassignment
timeout rescues it at the application level, or fails outright.  The recovery
ablation benchmark (``bench_ablation_recovery``) runs both configurations
under the same attack scenarios and tabulates completion and run time.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..config import FusionConfig, ResilienceConfig
from ..core.resilient import ResilientRunOutcome, _ResilientPCT
from ..data.cube import HyperspectralCube
from ..resilience.attack import AttackScenario


class StaticReplicationPCT(_ResilientPCT):
    """Replicated distributed fusion with regeneration switched off.

    Accepts the same arguments as :class:`~repro.core.resilient.ResilientPCT`
    (cluster, backend, attack scenario, ...) but forces
    ``resilience.regenerate = False`` so lost replicas stay lost.  A
    ``reassign_timeout`` may be supplied to emulate an application that
    protects itself (manager-level task reassignment) instead of relying on
    the library.
    """

    def __init__(self, config: Optional[FusionConfig] = None, *,
                 attack: Optional[AttackScenario] = None,
                 reassign_timeout: Optional[float] = None,
                 **kwargs) -> None:
        config = config or FusionConfig()
        resilience = config.resilience or ResilienceConfig()
        static_resilience = dataclasses.replace(resilience, regenerate=False)
        config = config.with_resilience(static_resilience)
        super().__init__(config, attack=attack, reassign_timeout=reassign_timeout, **kwargs)

    def fuse(self, cube: HyperspectralCube) -> ResilientRunOutcome:
        outcome = super().fuse(cube)
        outcome.result.metadata["mode"] = "static-replication"
        return outcome


__all__ = ["StaticReplicationPCT"]
