"""Command-line front end.

``repro-fusion`` (installed by the package) or ``python -m repro.cli`` exposes
the registered fusion engines and the synthetic data generator without
writing any Python::

    repro-fusion generate --bands 64 --rows 96 --cols 96 --out scene.npz
    repro-fusion fuse scene.npz --engine sequential --out composite.npz
    repro-fusion fuse scene.npz --engine resilient --workers 8 --attack worker.2
    repro-fusion fuse scene.npz --engine distributed --backend process:4
    repro-fusion sweep --workers 1 2 4 8 --scale 0.25

Every command is a thin layer over :func:`repro.fuse`: engine and backend
names come straight from the registries, so an engine or backend registered
by downstream code is usable here without touching this module.  ``--mode``
is kept as an alias of ``--engine`` for backward compatibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from . import __version__
from .analysis.quality import enhancement_report
from .analysis.report import dict_table
from .api.engines import engine_names
from .api.facade import fuse as api_fuse
from .config import (COMPUTE_DTYPES, FusionConfig, PartitionConfig,
                     ResilienceConfig, ScreeningConfig)
from .core.kernels import compute_names
from .data.cube import HyperspectralCube
from .data.hydice import HydiceConfig, HydiceGenerator
from .logging_utils import configure_basic_logging
from .resilience.attack import AttackScenario
from .scp.registry import BackendSpec, backend_names


def _positive_int(text: str) -> int:
    """Argparse type for knobs that must be >= 1 (rejects ``--tile-rows 0``
    at parse time with a usage error instead of a traceback later)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type for strictly-positive float knobs (thresholds, scales)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fusion",
        description="Resilient spectral-screening PCT image fusion (ICPP 2000 reproduction)")
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument("--verbose", action="store_true", help="enable progress logging")
    subparsers = parser.add_subparsers(dest="command", required=True)

    gen = subparsers.add_parser("generate", help="generate a synthetic HYDICE-like cube")
    gen.add_argument("--bands", type=_positive_int, default=105)
    gen.add_argument("--rows", type=_positive_int, default=128)
    gen.add_argument("--cols", type=_positive_int, default=128)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--vehicles", type=int, default=3)
    gen.add_argument("--camouflaged", type=int, default=1)
    gen.add_argument("--out", required=True, help="output .npz path")

    fuse = subparsers.add_parser("fuse", help="fuse a cube into a colour composite")
    fuse.add_argument("cube", help="input .npz cube (from the generate command)")
    fuse.add_argument("--engine", "--mode", dest="engine",
                      choices=engine_names(), default="sequential",
                      help="registered fusion engine (--mode is a deprecated alias)")
    fuse.add_argument("--backend", default="sim", metavar="SPEC",
                      help="backend spec for backend-using engines, e.g. "
                           f"{', '.join(backend_names())}; parameterised forms "
                           "such as 'process:fork', 'sim:switched' or "
                           "'socket:4' (pipeline engine: workers behind a "
                           "TCP node agent) are accepted")
    fuse.add_argument("--workers", type=_positive_int, default=None,
                      help="worker threads (default 4; a spec hint like "
                           "'process:8' applies when this flag is omitted)")
    fuse.add_argument("--subcubes", type=_positive_int, default=None)
    fuse.add_argument("--tile-rows", type=_positive_int, default=None,
                      help="rows per streaming tile (pipeline engine only; "
                           "default ~2 tiles per worker)")
    fuse.add_argument("--angle-threshold", type=_positive_float, default=None,
                      help="spectral-angle screening threshold in radians "
                           "(default 0.05; must be in (0, pi/2))")
    fuse.add_argument("--adaptive-tiles", action="store_true",
                      help="size streaming tiles adaptively from measured "
                           "stage throughput (pipeline engine only; "
                           "--tile-rows then sets the initial probe size)")
    fuse.add_argument("--replication", type=_positive_int, default=2)
    fuse.add_argument("--attack", default=None,
                      help="logical worker to attack mid-run (resilient engine only)")
    fuse.add_argument("--compute-dtype", choices=list(COMPUTE_DTYPES), default=None,
                      help="arithmetic precision of the screening and projection "
                           "kernels; float64 (default) is bit-identical to the "
                           "reference, float32 is the documented fast mode")
    fuse.add_argument("--compute", choices=compute_names(), default=None,
                      help="compute backend of the hot kernels; numpy "
                           "(default) is the always-available reference, "
                           "numba is the jit-fused tier (bit-identical in "
                           "float64, degrades to numpy with a warning when "
                           "numba is not installed)")
    fuse.add_argument("--profile", action="store_true",
                      help="print the per-stage profile (seconds, rows/s, "
                           "effective GFLOP/s) after the fusion summary")
    fuse.add_argument("--out", default=None, help="optional output .npz for the composite")

    sweep = subparsers.add_parser("sweep", help="run a small speed-up sweep (Figure 4 style)")
    sweep.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8])
    sweep.add_argument("--backend", default="sim", metavar="SPEC",
                       help="'sim' sweeps virtual time on the modelled cluster; "
                            "'process' measures real wall-clock speed-up against "
                            "the sequential reference")
    sweep.add_argument("--scale", type=float, default=0.25,
                       help="spatial scale of the paper's 320x320 cube")
    sweep.add_argument("--bands", type=int, default=105)
    sweep.add_argument("--seed", type=int, default=0)

    figure4 = subparsers.add_parser(
        "figure4", help="regenerate the paper's Figure 4 (speed-up with/without resiliency)")
    figure4.add_argument("--scale", type=float, default=0.25,
                         help="spatial scale of the paper's 320x320 cube")
    figure4.add_argument("--bands", type=int, default=210)
    figure4.add_argument("--subcubes", type=int, default=32)
    figure4.add_argument("--processors", type=int, nargs="+", default=[1, 2, 4, 8, 16])
    figure4.add_argument("--seed", type=int, default=0)

    figure5 = subparsers.add_parser(
        "figure5", help="regenerate the paper's Figure 5 (granularity control)")
    figure5.add_argument("--scale", type=float, default=0.25)
    figure5.add_argument("--bands", type=int, default=105)
    figure5.add_argument("--processors", type=int, nargs="+", default=[2, 4, 8, 16])
    figure5.add_argument("--multipliers", type=int, nargs="+", default=[1, 2, 3])
    figure5.add_argument("--no-tail-off", action="store_true",
                         help="skip the tail-off sweep at 16 workers")
    figure5.add_argument("--seed", type=int, default=0)

    fuzz = subparsers.add_parser(
        "fuzz", help="randomized differential-parity fuzzing of the "
                     "engine x backend matrix")
    fuzz.add_argument("--seconds", type=float, default=30.0,
                      help="time budget for sampling fresh cases (default 30)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="seed of the case generator (a failing seed is a "
                           "complete repro recipe)")
    fuzz.add_argument("--max-cases", type=int, default=None,
                      help="optional hard cap on sampled cases")
    fuzz.add_argument("--corpus", default="tests/parity_corpus",
                      help="parity corpus directory (replayed with --replay; "
                           "default tests/parity_corpus)")
    fuzz.add_argument("--failures-dir", default=None,
                      help="where new failure repros are written "
                           "(default: the corpus directory)")
    fuzz.add_argument("--replay", action="store_true",
                      help="replay the committed corpus instead of fuzzing "
                           "fresh cases")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="record failures without shrinking them first")

    lint = subparsers.add_parser(
        "lint", help="concurrency/shared-memory invariant checker "
                     "(AST rules RPL001-RPL006)")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="finding output format (default text)")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print findings silenced by "
                           "'# repro: allow[RPLxxx]' directives")
    lint.add_argument("--fail-dead-suppressions", action="store_true",
                      help="exit non-zero when a suppression no longer "
                           "silences anything (prune gate)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rule table and exit")

    simulate = subparsers.add_parser(
        "simulate", help="replay a named traffic/chaos scenario against an "
                         "engine x backend pair")
    simulate.add_argument("scenario", nargs="?", default=None,
                          help="registered scenario name "
                               "(--list shows the library)")
    simulate.add_argument("--list", action="store_true",
                          help="print the registered scenarios and exit")
    simulate.add_argument("--engine", default="pipeline",
                          choices=engine_names(),
                          help="fusion engine the trace is replayed against "
                               "(default pipeline; chaos profiles need it)")
    simulate.add_argument("--backend", default=None, metavar="SPEC",
                          help="backend spec (default: local threads, or "
                               "process:2 for kill-storm scenarios); e.g. "
                               f"{', '.join(backend_names())}")
    simulate.add_argument("--requests", type=_positive_int, default=None,
                          help="trace length (default: the scenario's)")
    simulate.add_argument("--workers", type=_positive_int, default=None)
    simulate.add_argument("--max-inflight", type=_positive_int, default=None,
                          help="concurrent in-flight fusions "
                               "(pipeline engine only)")
    simulate.add_argument("--seed", type=int, default=0,
                          help="trace and scene seed (default 0)")
    simulate.add_argument("--quick", action="store_true",
                          help="shrink the scenario to CI smoke size")
    simulate.add_argument("--no-verify", action="store_true",
                          help="skip the bit-identity check against the "
                               "sequential reference")
    simulate.add_argument("--json", default=None, metavar="PATH",
                          help="write the ledger-compatible record to PATH")
    simulate.add_argument("--record-trace", default=None, metavar="PATH",
                          help="save the replayed arrival trace to PATH")
    simulate.add_argument("--replay-trace", default=None, metavar="PATH",
                          help="replay a previously saved trace instead of "
                               "drawing a fresh one")

    ledger = subparsers.add_parser(
        "bench-ledger", help="benchmark-trend ledger: record, gate and "
                             "report benchmark JSON artifacts")
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)

    def _ledger_common(sub):
        sub.add_argument("--history-dir", default="benchmarks/history",
                         help="ledger directory of *.jsonl history files "
                              "(default benchmarks/history)")

    record = ledger_sub.add_parser(
        "record", help="append benchmark --json artifacts to the history")
    record.add_argument("files", nargs="+", help="bench record JSON files")
    _ledger_common(record)

    check = ledger_sub.add_parser(
        "check", help="gate benchmark --json artifacts against the "
                      "rolling-median baseline")
    check.add_argument("files", nargs="+", help="bench record JSON files")
    _ledger_common(check)
    check.add_argument("--noise-band", type=float, default=None,
                       help="allowed fractional drift past the baseline "
                            "median (default 0.25)")
    check.add_argument("--window", type=int, default=None,
                       help="rolling baseline window in records (default 20)")
    check.add_argument("--min-samples", type=int, default=None,
                       help="baseline samples required before the gate arms "
                            "(default 3)")
    check.add_argument("--ignore-host", action="store_true",
                       help="compare against history from every host class, "
                            "not just this one")

    report = ledger_sub.add_parser(
        "report", help="render the gate table (terminal and, optionally, "
                       "a GitHub step summary)")
    report.add_argument("files", nargs="*",
                        help="bench record JSON files to report on "
                             "(default: the newest record per benchmark in "
                             "the history)")
    _ledger_common(report)
    report.add_argument("--noise-band", type=float, default=None)
    report.add_argument("--window", type=int, default=None)
    report.add_argument("--min-samples", type=int, default=None)
    report.add_argument("--ignore-host", action="store_true")
    report.add_argument("--github-summary", default=None, metavar="PATH",
                        help="also append a markdown table to PATH "
                             "(e.g. \"$GITHUB_STEP_SUMMARY\")")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    config = HydiceConfig(bands=args.bands, rows=args.rows, cols=args.cols, seed=args.seed,
                          vehicles=args.vehicles, camouflaged_vehicles=args.camouflaged)
    cube = HydiceGenerator(config).generate()
    cube.save_npz(args.out)
    print(f"wrote {cube.bands}x{cube.rows}x{cube.cols} cube to {args.out}")
    return 0


def _cmd_fuse(args: argparse.Namespace) -> int:
    from .api.engines import get_engine

    cube = HyperspectralCube.load_npz(args.cube)
    # --backend always has a default; only hand it to engines that use one
    # (the sequential engine rejects an explicit backend).
    backend = args.backend if get_engine(args.engine).uses_backend else None
    options = {}
    if args.angle_threshold is not None:
        # ScreeningConfig validates the range (0, pi/2) and raises an
        # actionable ValueError for anything outside it.
        options["config"] = FusionConfig(
            screening=ScreeningConfig(angle_threshold=args.angle_threshold))
    if args.tile_rows is not None:
        options["tile_rows"] = args.tile_rows
    if args.adaptive_tiles:
        options["adaptive_tiles"] = True
    if args.compute_dtype is not None:
        options["compute_dtype"] = args.compute_dtype
    if args.compute is not None:
        options["compute"] = args.compute
    if args.engine == "resilient":
        options["replication"] = args.replication
        if args.attack:
            if BackendSpec.parse(args.backend).name != "sim":
                raise SystemExit("scripted attacks need the simulated backend's "
                                 "virtual clock; use --backend sim with --attack")
            options["attack"] = AttackScenario.single_worker_kill(args.attack, at=1.0)
    report = api_fuse(cube, engine=args.engine, backend=backend,
                      workers=args.workers, subcubes=args.subcubes, **options)
    result = report.result

    summary = {
        "mode": result.metadata.get("mode"),
        "unique_set_size": result.unique_set_size,
        "composite_shape": str(result.composite.shape),
    }
    if report.engine != "sequential":
        # The pipeline engine measures wall clock on every spec (it degrades
        # "sim" to host threads); only the batch engines simulate time.
        label = ("virtual_seconds"
                 if report.engine != "pipeline"
                 and BackendSpec.parse(args.backend).name == "sim"
                 else "wall_seconds")
        summary[label] = f"{report.elapsed_seconds:.2f}"
    if args.compute_dtype is not None:
        summary["compute_dtype"] = args.compute_dtype
    if args.compute is not None:
        summary["compute"] = args.compute
    label_map = cube.metadata.get("target_mask")
    if label_map is not None:
        quality = enhancement_report(cube, result.composite, label_map)
        summary["fused_target_contrast"] = f"{quality['fused_contrast']:.2f}"
        summary["enhancement_factor"] = f"{quality['enhancement_factor']:.2f}"
    print(dict_table("fusion summary", summary))
    if args.profile:
        print()
        print(report.profile_table())

    if args.out:
        np.savez_compressed(args.out, composite=result.composite,
                            components=result.components)
        print(f"wrote composite to {args.out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.report import figure4_table
    from .analysis.speedup import SpeedupCurve

    cube = HydiceGenerator.paper_granularity_cube(scale=args.scale, seed=args.seed)
    if args.bands != cube.bands:
        cube = HydiceGenerator(HydiceConfig(bands=args.bands, rows=cube.rows,
                                            cols=cube.cols, seed=args.seed)).generate()
    if BackendSpec.parse(args.backend).name != "sim":
        from .experiments.measured import run_measured_speedup

        result = run_measured_speedup(cube, processors=tuple(args.workers),
                                      backend=args.backend)
        print(result.report())
        return 0
    plain = SpeedupCurve("no resiliency")
    resilient = SpeedupCurve("resiliency level 2")
    for workers in args.workers:
        config = FusionConfig(partition=PartitionConfig(workers=workers,
                                                        subcubes=workers * 2))
        plain.add(workers, api_fuse(cube, engine="distributed", backend=args.backend,
                                    config=config).elapsed_seconds)
        res_config = config.with_resilience(ResilienceConfig(execute_replicas=False))
        resilient.add(workers, api_fuse(cube, engine="resilient", backend=args.backend,
                                        config=res_config).elapsed_seconds)
    print(figure4_table(plain, resilient))
    return 0


def _figure_cube(bands: int, scale: float, seed: int):
    rows = cols = max(32, int(round(320 * scale)))
    return HydiceGenerator(HydiceConfig(bands=bands, rows=rows, cols=cols,
                                        seed=seed)).generate()


def _cmd_figure4(args: argparse.Namespace) -> int:
    from .experiments import run_figure4

    cube = _figure_cube(args.bands, args.scale, args.seed)
    print(f"Running the Figure 4 sweep on a {cube.bands}x{cube.rows}x{cube.cols} cube ...")
    result = run_figure4(cube, processors=tuple(args.processors), subcubes=args.subcubes)
    print(result.report())
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    from .experiments import run_figure5

    cube = _figure_cube(args.bands, args.scale, args.seed)
    print(f"Running the Figure 5 sweep on a {cube.bands}x{cube.rows}x{cube.cols} cube ...")
    tail_off = () if args.no_tail_off else (16, 32, 48, 96, 128)
    result = run_figure5(cube, processors=tuple(args.processors),
                         multipliers=tuple(args.multipliers),
                         tail_off_subcubes=tail_off)
    print(result.report())
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .paritylab import harness

    if args.replay:
        entries = harness.replay_corpus(args.corpus)
        if not entries:
            print(f"parity corpus {args.corpus} holds no repro-*.json files")
            return 0
        failures = 0
        for entry in entries:
            verdict = "ok" if entry.outcome.ok else "PARITY VIOLATION"
            note = f" ({entry.note})" if entry.note else ""
            print(f"{entry.path.name}: {verdict}{note}")
            for violation in entry.outcome.violations:
                failures += 1
                print(f"  {violation.describe()}")
        if failures:
            print(f"corpus replay: {failures} violation(s) re-opened",
                  file=sys.stderr)
            return 1
        print(f"corpus replay: {len(entries)} repro(s) green")
        return 0

    failures_dir = args.failures_dir if args.failures_dir else args.corpus
    result = harness.fuzz(seconds=args.seconds, seed=args.seed,
                          corpus_dir=failures_dir, max_cases=args.max_cases,
                          shrink=not args.no_shrink)
    print(result.summary())
    return 0 if result.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lintlab import all_rules, lint_paths

    if args.list_rules:
        rows = {rule.code: f"{rule.name}: {rule.rationale}"
                for rule in all_rules()}
        print(dict_table("registered lint rules", rows))
        return 0
    report = lint_paths(args.paths)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text(show_suppressed=args.show_suppressed))
    if not report.ok:
        return 1
    if args.fail_dead_suppressions and report.dead_suppressions:
        return 1
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import json

    from .scenarios import Trace, describe_scenarios, run_simulation

    if args.list:
        print(dict_table("registered scenarios", describe_scenarios()))
        return 0
    if args.scenario is None:
        raise SystemExit("error: a scenario name is required "
                         "(repro-fusion simulate --list shows the library)")

    trace = Trace.load(args.replay_trace) if args.replay_trace else None
    result = run_simulation(args.scenario, engine=args.engine,
                            backend=args.backend, requests=args.requests,
                            seed=args.seed, quick=args.quick, trace=trace,
                            verify=not args.no_verify, workers=args.workers,
                            max_inflight=args.max_inflight)
    print(result.summary())
    if args.record_trace:
        path = result.trace.save(args.record_trace)
        print(f"recorded arrival trace to {path}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.record(), fh, indent=2)
            fh.write("\n")
        print(f"wrote simulate record to {args.json}")
    if not result.parity.get("ok", True):
        print("PARITY VIOLATION: composites diverged from the sequential "
              f"reference on request(s) {result.parity['mismatches']}",
              file=sys.stderr)
        return 1
    return 0


def _ledger_gate_options(args: argparse.Namespace) -> dict:
    options = {"ignore_host": bool(getattr(args, "ignore_host", False))}
    if getattr(args, "noise_band", None) is not None:
        options["noise_band"] = args.noise_band
    if getattr(args, "window", None) is not None:
        options["window"] = args.window
    if getattr(args, "min_samples", None) is not None:
        options["min_samples"] = args.min_samples
    return options


def _cmd_bench_ledger(args: argparse.Namespace) -> int:
    from .paritylab.ledger import (BenchLedger, render_markdown_table,
                                   render_text_table)

    ledger = BenchLedger(args.history_dir)
    if args.ledger_command == "record":
        for path in ledger.record_files(args.files):
            print(f"recorded into {path}")
        return 0

    if args.ledger_command == "check":
        checks = ledger.check_files(args.files, **_ledger_gate_options(args))
        print(render_text_table(checks))
        regressions = [check for check in checks if check.regressed]
        for check in regressions:
            print(f"REGRESSION: {check.describe()}", file=sys.stderr)
        return 1 if regressions else 0

    # report: gate table over explicit artifacts, or the newest history
    # record per benchmark (note: a history record's own value is part of
    # its baseline window in that mode).
    if args.files:
        checks = ledger.check_files(args.files, **_ledger_gate_options(args))
    else:
        checks = []
        for record in ledger.latest_records():
            checks.extend(ledger.check_record(record,
                                              **_ledger_gate_options(args)))
    print(render_text_table(checks))
    if args.github_summary:
        with open(args.github_summary, "a", encoding="utf-8") as fh:
            fh.write(render_markdown_table(checks) + "\n")
        print(f"appended markdown summary to {args.github_summary}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-fusion`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_basic_logging()
    commands = {"generate": _cmd_generate, "fuse": _cmd_fuse, "sweep": _cmd_sweep,
                "figure4": _cmd_figure4, "figure5": _cmd_figure5,
                "fuzz": _cmd_fuzz, "lint": _cmd_lint,
                "simulate": _cmd_simulate,
                "bench-ledger": _cmd_bench_ledger}
    handler = commands.get(args.command)
    if handler is None:
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return handler(args)
    except ValueError as exc:
        # Registry lookups raise actionable ValueErrors (they list the
        # registered engine/backend names); show them without a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # Missing or unreadable cube/trace/artifact paths are user input
        # errors, not crashes.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
