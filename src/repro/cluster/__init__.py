"""Simulated distributed hardware substrate.

This subpackage models the paper's experimental platform -- a LAN of
workstations -- accurately enough to regenerate the shape of its performance
figures: a deterministic discrete-event engine (:mod:`.event`), workstation
models with processor-sharing and memory accounting (:mod:`.node`),
interconnect models for shared 100BaseT Ethernet, switched fabrics and
shared-memory machines (:mod:`.network`), the :class:`~repro.cluster.machine.Cluster`
container tying them together, per-run metrics (:mod:`.metrics`) and named
presets matching Section 4 of the paper (:mod:`.presets`).
"""

from .event import Event, EventEngine, SimulationError
from .machine import Cluster, ClusterError
from .metrics import MetricsCollector, RunMetrics
from .network import (BaseInterconnect, LinkSpec, SharedEthernet,
                      SharedMemoryInterconnect, SwitchedNetwork)
from .node import Node, NodeError, NodeSpec
from .presets import (HUNDRED_BASE_T, SUN_ULTRA_FLOPS, SUN_ULTRA_MEMORY,
                      heterogeneous_lan, shared_memory_smp, sun_ultra_lan,
                      switched_lan)

__all__ = [
    "Event",
    "EventEngine",
    "SimulationError",
    "Cluster",
    "ClusterError",
    "MetricsCollector",
    "RunMetrics",
    "BaseInterconnect",
    "LinkSpec",
    "SharedEthernet",
    "SharedMemoryInterconnect",
    "SwitchedNetwork",
    "Node",
    "NodeError",
    "NodeSpec",
    "HUNDRED_BASE_T",
    "SUN_ULTRA_FLOPS",
    "SUN_ULTRA_MEMORY",
    "heterogeneous_lan",
    "shared_memory_smp",
    "sun_ultra_lan",
    "switched_lan",
]
