"""Deterministic discrete-event engine.

The simulated backend of the SCP runtime (:mod:`repro.scp.sim_backend`) and
the cluster hardware models are all driven by a single event queue.  The
engine is intentionally small: a binary heap of ``(time, tie_breaker, Event)``
entries plus a monotonically increasing tie-breaker so that events scheduled
for the same instant fire in insertion order.  That property is what makes
whole simulated runs -- including fault injection and recovery -- bit-for-bit
reproducible from a seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the event engine is used inconsistently."""


@dataclass(order=True)
class _QueueEntry:
    time: float
    order: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute virtual time (seconds) at which the callback fires.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Human-readable description used in traces and error messages.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    callback: Callable[[], None]
    label: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


class EventEngine:
    """Heap-based discrete-event scheduler with a virtual clock."""

    def __init__(self) -> None:
        self._heap: List[_QueueEntry] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------ API
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for entry in self._heap if not entry.event.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``delay`` must be non-negative; scheduling in the past would break the
        causality of the simulation and is treated as a programming error.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event {label!r} in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at t={time} before current time t={self._now}")
        event = Event(time=time, callback=callback, label=label)
        heapq.heappush(self._heap, _QueueEntry(time, next(self._counter), event))
        return event

    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False if none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            self._now = entry.time
            self._processed += 1
            entry.event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would advance past this time (the event at
            exactly ``until`` still fires).
        max_events:
            Safety limit on the number of events processed; exceeding it
            raises :class:`SimulationError` (it almost always indicates a
            livelock in a protocol under test).

        Returns
        -------
        float
            The virtual time at which the loop stopped.
        """
        if self._running:
            raise SimulationError("EventEngine.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                entry = self._heap[0]
                if entry.event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and entry.time > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"event limit exceeded ({max_events} events); possible livelock")
                heapq.heappop(self._heap)
                self._now = entry.time
                self._processed += 1
                fired += 1
                entry.event.callback()
        finally:
            self._running = False
        return self._now

    def peek_time(self) -> Optional[float]:
        """Return the time of the next pending event, or None."""
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def advance_to(self, time: float) -> None:
        """Advance the clock without firing events (no pending earlier events allowed)."""
        nxt = self.peek_time()
        if nxt is not None and nxt < time:
            raise SimulationError(
                f"cannot advance to t={time}: event pending at t={nxt}")
        if time < self._now:
            raise SimulationError(f"cannot move clock backwards to t={time}")
        self._now = time


__all__ = ["Event", "EventEngine", "SimulationError"]
