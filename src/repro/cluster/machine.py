"""Cluster model: a named set of nodes plus an interconnect.

The :class:`Cluster` object is the hardware substrate on which the simulated
SCP backend places threads, charges compute time, and routes messages.  It is
deliberately passive -- it owns no event loop of its own -- so that the same
object can also be interrogated by the resource manager (placement decisions)
and by the metrics layer after a run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..logging_utils import get_logger
from .network import BaseInterconnect, SharedEthernet
from .node import Node, NodeSpec

_LOG = get_logger("cluster.machine")


class ClusterError(RuntimeError):
    """Raised on inconsistent cluster-level operations."""


class Cluster:
    """A collection of :class:`Node` objects joined by an interconnect."""

    def __init__(self, nodes: Sequence[NodeSpec], interconnect: Optional[BaseInterconnect] = None,
                 name: str = "cluster") -> None:
        if not nodes:
            raise ClusterError("a cluster needs at least one node")
        names = [spec.name for spec in nodes]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate node names in {names}")
        self.name = name
        self._nodes: Dict[str, Node] = {spec.name: Node(spec) for spec in nodes}
        self._order: List[str] = list(names)
        self.interconnect = interconnect if interconnect is not None else SharedEthernet()
        #: thread_id -> node name
        self._placement: Dict[str, str] = {}

    # ----------------------------------------------------------------- nodes
    @property
    def node_names(self) -> List[str]:
        return list(self._order)

    @property
    def size(self) -> int:
        return len(self._order)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise ClusterError(f"unknown node {name!r}; cluster has {self._order}") from None

    def nodes(self) -> List[Node]:
        return [self._nodes[n] for n in self._order]

    def alive_nodes(self) -> List[Node]:
        return [node for node in self.nodes() if node.alive]

    # ------------------------------------------------------------- placement
    def place(self, thread_id: str, node_name: str, memory_bytes: int = 0) -> None:
        """Place a logical thread on a node, updating both directions of the map."""
        if thread_id in self._placement:
            raise ClusterError(f"thread {thread_id!r} is already placed on "
                               f"{self._placement[thread_id]!r}")
        self.node(node_name).host(thread_id, memory_bytes)
        self._placement[thread_id] = node_name

    def unplace(self, thread_id: str) -> None:
        node_name = self._placement.pop(thread_id, None)
        if node_name is not None and node_name in self._nodes:
            self._nodes[node_name].evict(thread_id)

    def location_of(self, thread_id: str) -> Optional[str]:
        """Return the node name hosting ``thread_id`` or None if unplaced/dead."""
        return self._placement.get(thread_id)

    def threads_on(self, node_name: str) -> List[str]:
        return [tid for tid, loc in self._placement.items() if loc == node_name]

    def co_located(self, thread_a: str, thread_b: str) -> bool:
        loc_a = self._placement.get(thread_a)
        return loc_a is not None and loc_a == self._placement.get(thread_b)

    # --------------------------------------------------------------- compute
    def compute_seconds(self, thread_id: str, flop: float) -> float:
        """Virtual seconds for ``thread_id`` to retire ``flop`` operations.

        The cost reflects processor sharing: a node hosting two replicas (the
        paper's replication level 2 halves the available processors) takes
        twice as long per replica.
        """
        node_name = self._placement.get(thread_id)
        if node_name is None:
            raise ClusterError(f"thread {thread_id!r} is not placed on any node")
        node = self.node(node_name)
        seconds = node.compute_seconds(flop)
        node.charge_compute(flop, seconds)
        return seconds

    # ----------------------------------------------------------------- comms
    def transfer_window(self, src_thread: str, dst_thread: str, nbytes: int,
                        earliest: float) -> Tuple[float, float]:
        """Route a message between two placed threads through the interconnect."""
        src = self._placement.get(src_thread)
        dst = self._placement.get(dst_thread)
        if src is None or dst is None:
            raise ClusterError(
                f"cannot route {src_thread!r} -> {dst_thread!r}: unplaced endpoint")
        return self.interconnect.transfer_window(src, dst, nbytes, earliest)

    # --------------------------------------------------------------- failure
    def fail_node(self, node_name: str) -> Set[str]:
        """Fail a node; returns the ids of threads that were running on it."""
        node = self.node(node_name)
        victims = node.fail()
        for tid in victims:
            self._placement.pop(tid, None)
        return victims

    def recover_node(self, node_name: str) -> None:
        self.node(node_name).recover()

    def fail_thread(self, thread_id: str) -> None:
        """Remove a single thread (process-level failure, node stays up)."""
        self.unplace(thread_id)

    # ------------------------------------------------------------- selection
    def least_loaded_nodes(self, exclude: Iterable[str] = (), alive_only: bool = True
                           ) -> List[str]:
        """Node names sorted by (load, declaration order); used for placement."""
        excluded = set(exclude)
        candidates = [
            node for node in self.nodes()
            if node.name not in excluded and (node.alive or not alive_only)
        ]
        order_index = {name: i for i, name in enumerate(self._order)}
        candidates.sort(key=lambda n: (n.load, order_index[n.name]))
        return [node.name for node in candidates]

    # --------------------------------------------------------------- summary
    def utilisation_summary(self, elapsed: float) -> Dict[str, float]:
        """Per-node utilisation (busy time / elapsed) for a finished run."""
        if elapsed <= 0:
            return {name: 0.0 for name in self._order}
        return {name: self._nodes[name].busy_time / elapsed for name in self._order}

    def reset_accounting(self) -> None:
        """Clear per-run counters while keeping topology and placements."""
        self.interconnect.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        up = sum(1 for n in self.nodes() if n.alive)
        return f"<Cluster {self.name!r} nodes={self.size} up={up}>"


__all__ = ["Cluster", "ClusterError"]
