"""Run metrics: timing, utilisation, message accounting.

Every simulated or locally-executed run produces a :class:`RunMetrics` record.
The benchmark harness builds the paper's figures entirely from these records,
so they capture everything Section 4 reports on: elapsed time, per-phase
breakdown, communication volume, and resiliency protocol activity.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional


@dataclass
class PhaseTiming:
    """Aggregated timing of one named phase (e.g. ``"screening"``)."""

    name: str
    total_seconds: float = 0.0
    invocations: int = 0

    def add(self, seconds: float) -> None:
        self.total_seconds += seconds
        self.invocations += 1


@dataclass
class RunMetrics:
    """Everything measured during one fusion run.

    Attributes
    ----------
    elapsed_seconds:
        End-to-end (virtual or wall-clock) time of the run.
    backend:
        ``"sim"``, ``"local"``, ``"process"`` or ``"sequential"``.
    workers / subcubes / replication_level:
        Run configuration echoed for convenience when tabulating sweeps.
    phase_seconds:
        Compute seconds charged per algorithm phase, summed over threads.
    messages / bytes_sent:
        Interconnect traffic totals.
    node_busy_seconds:
        Per node, the compute seconds it was busy (utilisation numerator).
    failures_injected / replicas_regenerated / reconfigurations:
        Resiliency activity counters.
    """

    elapsed_seconds: float = 0.0
    backend: str = "sequential"
    workers: int = 1
    subcubes: int = 1
    replication_level: int = 1
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    phase_invocations: Dict[str, int] = field(default_factory=dict)
    messages: int = 0
    bytes_sent: int = 0
    node_busy_seconds: Dict[str, float] = field(default_factory=dict)
    failures_injected: int = 0
    replicas_regenerated: int = 0
    reconfigurations: int = 0
    duplicate_messages_suppressed: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------- recording
    def record_phase(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds
        self.phase_invocations[name] = self.phase_invocations.get(name, 0) + 1

    # ----------------------------------------------------------- derivations
    @property
    def total_compute_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def utilisation(self) -> Dict[str, float]:
        """Per-node utilisation over the elapsed run time."""
        if self.elapsed_seconds <= 0:
            return {k: 0.0 for k in self.node_busy_seconds}
        return {k: v / self.elapsed_seconds for k, v in self.node_busy_seconds.items()}

    def mean_utilisation(self) -> float:
        util = self.utilisation()
        return sum(util.values()) / len(util) if util else 0.0

    def phase_fraction(self, name: str) -> float:
        """Fraction of total compute time spent in a phase."""
        total = self.total_compute_seconds
        return self.phase_seconds.get(name, 0.0) / total if total > 0 else 0.0

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary suitable for tabulation in the benchmark reports."""
        row: Dict[str, float] = {
            "workers": self.workers,
            "subcubes": self.subcubes,
            "replication_level": self.replication_level,
            "elapsed_seconds": self.elapsed_seconds,
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "failures_injected": self.failures_injected,
            "replicas_regenerated": self.replicas_regenerated,
        }
        for name, seconds in sorted(self.phase_seconds.items()):
            row[f"phase::{name}"] = seconds
        row.update({f"extra::{k}": v for k, v in sorted(self.extra.items())})
        return row


class MetricsCollector:
    """Mutable accumulator shared by the runtime and resilience layers.

    Backends create one collector per run, pass it around, and call
    :meth:`finalise` at the end to obtain an immutable-ish :class:`RunMetrics`.
    """

    def __init__(self) -> None:
        self._phases: Dict[str, PhaseTiming] = {}
        self._counters: Dict[str, int] = defaultdict(int)
        self._node_busy: Dict[str, float] = defaultdict(float)

    def add_phase(self, name: str, seconds: float) -> None:
        self._phases.setdefault(name, PhaseTiming(name)).add(seconds)

    def add_node_busy(self, node: str, seconds: float) -> None:
        self._node_busy[node] += seconds

    def increment(self, counter: str, amount: int = 1) -> None:
        self._counters[counter] += amount

    def count(self, counter: str) -> int:
        return self._counters.get(counter, 0)

    def finalise(self, *, elapsed_seconds: float, backend: str, workers: int,
                 subcubes: int, replication_level: int,
                 messages: int = 0, bytes_sent: int = 0,
                 extra: Optional[Mapping[str, float]] = None) -> RunMetrics:
        metrics = RunMetrics(
            elapsed_seconds=elapsed_seconds,
            backend=backend,
            workers=workers,
            subcubes=subcubes,
            replication_level=replication_level,
            messages=messages,
            bytes_sent=bytes_sent,
            failures_injected=self.count("failures_injected"),
            replicas_regenerated=self.count("replicas_regenerated"),
            reconfigurations=self.count("reconfigurations"),
            duplicate_messages_suppressed=self.count("duplicates_suppressed"),
            node_busy_seconds=dict(self._node_busy),
            extra=dict(extra or {}),
        )
        for name, timing in self._phases.items():
            metrics.phase_seconds[name] = timing.total_seconds
            metrics.phase_invocations[name] = timing.invocations
        return metrics


__all__ = ["PhaseTiming", "RunMetrics", "MetricsCollector"]
