"""Network interconnect models.

The paper's workstations are connected by 100BaseT Ethernet.  At the message
sizes exchanged by the manager/worker decomposition (sub-cubes of hundreds of
kilobytes to a few megabytes) the dominant cost is serialisation onto the
wire -- bytes divided by bandwidth -- plus a fixed per-message software
overhead (protocol stack, SCPlib envelope handling).  Two interconnects are
modelled:

``SharedEthernet``
    A single collision domain (hub-based 100BaseT, as was typical in 1999):
    only one frame is on the wire at a time, so concurrent transfers queue up
    behind each other.  This is what makes communication overhead grow with
    the number of workers and is responsible for the speed-up roll-off in
    Figure 4.

``SwitchedNetwork``
    Full-duplex switched fabric: transfers on distinct (source, destination)
    pairs proceed independently; transfers sharing an endpoint serialise on
    that endpoint's link.

``SharedMemoryInterconnect``
    Used for the shared-memory ablation (Section 4): transfers cost only a
    small, size-independent synchronisation overhead, reflecting the paper's
    observation that "no communication overhead [is] involved" on an SMP.

All models expose the same interface: :meth:`transfer_window`, which given the
message size, the endpoints, and the earliest possible start time returns the
``(start, finish)`` pair of the transfer in virtual time, updating internal
channel-availability bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..logging_utils import get_logger

_LOG = get_logger("cluster.network")


@dataclass(frozen=True)
class LinkSpec:
    """Static parameters of a network technology.

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Sustained application-level throughput.  100BaseT delivers roughly
        11 MB/s of user payload once framing and TCP overheads are accounted.
    latency_s:
        One-way propagation plus interrupt latency per message.
    per_message_overhead_s:
        Software cost of assembling/parsing an SCPlib message envelope.
    """

    bandwidth_bytes_per_s: float = 11.0e6
    latency_s: float = 1.0e-3
    per_message_overhead_s: float = 0.5e-3

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0 or self.per_message_overhead_s < 0:
            raise ValueError("latencies must be non-negative")

    def wire_time(self, nbytes: int) -> float:
        """Time the payload occupies the shared medium."""
        return nbytes / self.bandwidth_bytes_per_s

    def message_cost(self, nbytes: int) -> float:
        """End-to-end cost of an uncontended message of ``nbytes``."""
        return self.latency_s + self.per_message_overhead_s + self.wire_time(nbytes)


class BaseInterconnect:
    """Common interface of the interconnect models."""

    def __init__(self, link: LinkSpec) -> None:
        self.link = link
        self._bytes_sent = 0
        self._messages_sent = 0
        self._busy_time = 0.0

    # ------------------------------------------------------------ accounting
    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def busy_time(self) -> float:
        """Total time the fabric spent carrying payload (contention metric)."""
        return self._busy_time

    def _account(self, nbytes: int, wire_time: float) -> None:
        self._bytes_sent += nbytes
        self._messages_sent += 1
        self._busy_time += wire_time

    # --------------------------------------------------------------- routing
    def transfer_window(self, src: str, dst: str, nbytes: int, earliest: float
                        ) -> Tuple[float, float]:
        """Return ``(start, finish)`` virtual times for a transfer.

        ``earliest`` is the time the sender has the message ready.  The
        returned ``finish`` is when the last byte (plus latency) arrives at
        the receiver.  Implementations update their channel availability so a
        subsequent call sees the contention created by this transfer.
        """
        raise NotImplementedError

    def local_delivery_time(self) -> float:
        """Cost of a message between two threads on the same node."""
        return self.link.per_message_overhead_s

    def reset(self) -> None:
        self._bytes_sent = 0
        self._messages_sent = 0
        self._busy_time = 0.0


class SharedEthernet(BaseInterconnect):
    """Single-collision-domain Ethernet (hub-based 100BaseT)."""

    def __init__(self, link: LinkSpec | None = None) -> None:
        super().__init__(link or LinkSpec())
        self._medium_free_at = 0.0

    def transfer_window(self, src: str, dst: str, nbytes: int, earliest: float
                        ) -> Tuple[float, float]:
        if src == dst:
            finish = earliest + self.local_delivery_time()
            return earliest, finish
        wire = self.link.wire_time(nbytes)
        start = max(earliest + self.link.per_message_overhead_s, self._medium_free_at)
        finish = start + wire + self.link.latency_s
        self._medium_free_at = start + wire
        self._account(nbytes, wire)
        return start, finish

    def reset(self) -> None:
        super().reset()
        self._medium_free_at = 0.0


class SwitchedNetwork(BaseInterconnect):
    """Full-duplex switched network; contention only on shared endpoints."""

    def __init__(self, link: LinkSpec | None = None) -> None:
        super().__init__(link or LinkSpec())
        self._tx_free_at: Dict[str, float] = {}
        self._rx_free_at: Dict[str, float] = {}

    def transfer_window(self, src: str, dst: str, nbytes: int, earliest: float
                        ) -> Tuple[float, float]:
        if src == dst:
            finish = earliest + self.local_delivery_time()
            return earliest, finish
        wire = self.link.wire_time(nbytes)
        start = max(earliest + self.link.per_message_overhead_s,
                    self._tx_free_at.get(src, 0.0),
                    self._rx_free_at.get(dst, 0.0))
        finish = start + wire + self.link.latency_s
        self._tx_free_at[src] = start + wire
        self._rx_free_at[dst] = start + wire
        self._account(nbytes, wire)
        return start, finish

    def reset(self) -> None:
        super().reset()
        self._tx_free_at.clear()
        self._rx_free_at.clear()


class SharedMemoryInterconnect(BaseInterconnect):
    """In-memory hand-off used by the shared-memory (SMP) ablation."""

    def __init__(self, sync_overhead_s: float = 5.0e-6) -> None:
        # Bandwidth is effectively memory bandwidth; messages are hand-offs of
        # references, so size plays essentially no role.
        super().__init__(LinkSpec(bandwidth_bytes_per_s=2.0e9, latency_s=0.0,
                                  per_message_overhead_s=sync_overhead_s))

    def transfer_window(self, src: str, dst: str, nbytes: int, earliest: float
                        ) -> Tuple[float, float]:
        start = earliest
        finish = earliest + self.link.per_message_overhead_s
        self._account(nbytes, 0.0)
        return start, finish


__all__ = [
    "LinkSpec",
    "BaseInterconnect",
    "SharedEthernet",
    "SwitchedNetwork",
    "SharedMemoryInterconnect",
]
