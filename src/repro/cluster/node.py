"""Workstation (compute node) model.

The paper's testbed is sixteen 300 MHz Sun Solaris workstations.  For the
purpose of regenerating the evaluation figures what matters about a node is

* how fast it retires floating-point work (``flops`` per second),
* how much memory it has (the paper could not run the 210-band, 1024x1024
  cube "due to memory constraints in our available network"),
* how many threads it is currently hosting (replicas consume the same
  processor, which is the dominant cost of replication), and
* whether it is up or has been taken out by a failure/attack.

The node model therefore tracks hosted threads, charges compute time
proportionally to the number of runnable threads sharing the processor
(processor-sharing discipline), and exposes memory accounting hooks used by
the resource manager when it places regenerated replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..logging_utils import get_logger

_LOG = get_logger("cluster.node")


class NodeError(RuntimeError):
    """Raised on inconsistent node operations (e.g. hosting on a dead node)."""


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a workstation.

    Attributes
    ----------
    name:
        Unique node name, e.g. ``"sun04"``.
    flops:
        Sustained floating-point rate in FLOP/s.  A 300 MHz UltraSPARC of the
        paper's era sustains roughly 6e7 FLOP/s on the dense kernels used
        here (well below peak, accounting for memory traffic).
    memory_bytes:
        Physical memory available to application threads.
    cores:
        Number of processors; >1 models the paper's "multi-processor PCs".
    """

    name: str
    flops: float = 6.0e7
    memory_bytes: int = 256 * 1024 * 1024
    cores: int = 1

    def __post_init__(self) -> None:
        if self.flops <= 0:
            raise ValueError("flops must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")


@dataclass
class HostedThread:
    """Book-keeping record for one thread placed on a node."""

    thread_id: str
    memory_bytes: int = 0


class Node:
    """Dynamic state of a workstation in the simulated cluster."""

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec
        self._alive = True
        self._hosted: Dict[str, HostedThread] = {}
        self._busy_time = 0.0
        self._compute_ops = 0.0

    # ----------------------------------------------------------------- state
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def hosted_threads(self) -> List[str]:
        return list(self._hosted)

    @property
    def load(self) -> int:
        """Number of threads currently placed on this node."""
        return len(self._hosted)

    @property
    def busy_time(self) -> float:
        """Accumulated compute seconds charged to this node."""
        return self._busy_time

    @property
    def compute_ops(self) -> float:
        """Accumulated floating point operations charged to this node."""
        return self._compute_ops

    @property
    def memory_used(self) -> int:
        return sum(h.memory_bytes for h in self._hosted.values())

    @property
    def memory_free(self) -> int:
        return self.spec.memory_bytes - self.memory_used

    # ------------------------------------------------------------- placement
    def host(self, thread_id: str, memory_bytes: int = 0) -> None:
        """Place a thread on this node.

        Raises
        ------
        NodeError
            If the node is down, already hosts the thread, or the thread's
            state does not fit in the remaining memory.
        """
        if not self._alive:
            raise NodeError(f"cannot host {thread_id!r} on failed node {self.name!r}")
        if thread_id in self._hosted:
            raise NodeError(f"node {self.name!r} already hosts {thread_id!r}")
        if memory_bytes > self.memory_free:
            raise NodeError(
                f"node {self.name!r} has {self.memory_free} bytes free, "
                f"cannot host {thread_id!r} needing {memory_bytes}")
        self._hosted[thread_id] = HostedThread(thread_id, memory_bytes)

    def evict(self, thread_id: str) -> None:
        """Remove a thread from this node (it migrated, finished, or died)."""
        self._hosted.pop(thread_id, None)

    def hosts(self, thread_id: str) -> bool:
        return thread_id in self._hosted

    # --------------------------------------------------------------- compute
    def compute_seconds(self, flop: float, concurrent_threads: Optional[int] = None) -> float:
        """Return the virtual seconds needed to retire ``flop`` operations.

        ``concurrent_threads`` is the number of runnable threads sharing the
        node's processors at the time of the computation; under processor
        sharing each thread receives ``cores / concurrent`` of the machine
        (never more than 1 processor per thread).
        """
        if flop < 0:
            raise ValueError("flop must be non-negative")
        concurrent = concurrent_threads if concurrent_threads is not None else max(1, self.load)
        concurrent = max(1, concurrent)
        share = min(1.0, self.spec.cores / concurrent)
        return flop / (self.spec.flops * share)

    def charge_compute(self, flop: float, seconds: float) -> None:
        """Record compute work actually charged against this node."""
        self._busy_time += seconds
        self._compute_ops += flop

    # --------------------------------------------------------------- failure
    def fail(self) -> Set[str]:
        """Mark the node as failed.

        Returns the set of thread ids that were hosted at the instant of the
        failure; the resiliency layer uses this to know which replicas died.
        """
        self._alive = False
        victims = set(self._hosted)
        self._hosted.clear()
        _LOG.debug("node %s failed, killing threads %s", self.name, sorted(victims))
        return victims

    def recover(self) -> None:
        """Bring a failed node back online (empty, as after a reboot)."""
        self._alive = True
        self._hosted.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self._alive else "DOWN"
        return f"<Node {self.name} {state} load={self.load}>"


__all__ = ["Node", "NodeSpec", "NodeError", "HostedThread"]
