"""Cluster presets matching the paper's experimental platforms.

Three presets are provided:

``sun_ultra_lan(n)``
    The paper's testbed: up to sixteen 300 MHz Sun Solaris workstations on a
    shared 100BaseT segment.  Used to regenerate Figures 4 and 5.

``switched_lan(n)``
    The same workstations behind a full-duplex switch; useful as an ablation
    showing how much of the communication overhead is attributable to the
    shared medium.

``shared_memory_smp(n)``
    A single multi-processor machine; models the "within 5% of linear
    speed-up ... no communication overhead" shared-memory result quoted in
    Section 4.

The extra ``manager_nodes`` slot exists because the paper's manager ("the
sensor itself") is a distinct entity that is never replicated; giving it a
dedicated node mirrors the testbed where the data source was not one of the
16 compute workstations.
"""

from __future__ import annotations

from typing import List

from .machine import Cluster
from .network import (LinkSpec, SharedEthernet, SharedMemoryInterconnect,
                      SwitchedNetwork)
from .node import NodeSpec

#: Sustained FLOP rate of a 300 MHz UltraSPARC-class workstation on the fusion
#: kernels.  Peak is 600 MFLOPS, but the paper's implementation computes
#: spectral angles with scalar C loops and per-pair transcendental calls
#: through the SCPlib envelope layer; 15 MFLOPS of useful arithmetic is a
#: representative sustained rate for such code in 1999 and places the
#: single-workstation run time in the same range as Figure 4.
SUN_ULTRA_FLOPS = 1.5e7

#: 256 MB was a generously configured workstation in 1999 and explains the
#: paper's remark that the 210-band, 1024x1024 cube "could not be used due to
#: memory constraints".
SUN_ULTRA_MEMORY = 256 * 1024 * 1024

#: Application-level throughput of 100BaseT with TCP framing overhead.  The
#: per-message overhead models the SCPlib envelope handling and user-space
#: copies of a late-90s protocol stack; at a few milliseconds per message it
#: is negligible for coarse decompositions but becomes visible once the cube
#: is split into many tens of sub-cubes, which is what produces the
#: granularity tail-off the paper reports past ~32 sub-cubes.
HUNDRED_BASE_T = LinkSpec(bandwidth_bytes_per_s=11.0e6, latency_s=1.0e-3,
                          per_message_overhead_s=20.0e-3)


def _worker_specs(n: int, flops: float, memory: int, prefix: str) -> List[NodeSpec]:
    if n < 1:
        raise ValueError("need at least one worker node")
    return [NodeSpec(name=f"{prefix}{i:02d}", flops=flops, memory_bytes=memory)
            for i in range(n)]


def sun_ultra_lan(workers: int = 16, *, manager_node: bool = True,
                  flops: float = SUN_ULTRA_FLOPS,
                  memory_bytes: int = SUN_ULTRA_MEMORY) -> Cluster:
    """Paper testbed: ``workers`` Sun workstations on shared 100BaseT.

    Parameters
    ----------
    workers:
        Number of compute workstations (the paper sweeps 1..16).
    manager_node:
        If True (default) an additional node ``"manager"`` hosts the manager
        thread, mirroring the paper where the manager represents the sensor.
    """
    specs = _worker_specs(workers, flops, memory_bytes, "sun")
    if manager_node:
        specs = [NodeSpec(name="manager", flops=flops, memory_bytes=memory_bytes)] + specs
    return Cluster(specs, interconnect=SharedEthernet(HUNDRED_BASE_T), name="sun-ultra-lan")


def switched_lan(workers: int = 16, *, manager_node: bool = True,
                 flops: float = SUN_ULTRA_FLOPS,
                 memory_bytes: int = SUN_ULTRA_MEMORY) -> Cluster:
    """Same workstations behind a full-duplex switch (contention ablation)."""
    specs = _worker_specs(workers, flops, memory_bytes, "sun")
    if manager_node:
        specs = [NodeSpec(name="manager", flops=flops, memory_bytes=memory_bytes)] + specs
    return Cluster(specs, interconnect=SwitchedNetwork(HUNDRED_BASE_T), name="switched-lan")


def shared_memory_smp(processors: int = 16, *, flops: float = SUN_ULTRA_FLOPS,
                      memory_bytes: int = 2 * 1024 * 1024 * 1024) -> Cluster:
    """A single shared-memory multiprocessor.

    Each processor is modelled as a separate "node" so placement and
    processor-sharing accounting keep working, but all of them communicate
    through :class:`SharedMemoryInterconnect`, whose per-message cost is a few
    microseconds of synchronisation regardless of size.  The manager runs on
    ``cpu00``.
    """
    specs = [NodeSpec(name=f"cpu{i:02d}", flops=flops,
                      memory_bytes=memory_bytes // max(processors, 1))
             for i in range(processors + 1)]
    return Cluster(specs, interconnect=SharedMemoryInterconnect(), name="shared-memory-smp")


def heterogeneous_lan(fast: int = 8, slow: int = 8, *, manager_node: bool = True) -> Cluster:
    """A mixed cluster (Section 2 motivates heterogeneous clustered environments).

    Half of the nodes run at the nominal rate, half at 60% of it.  Used by the
    resource-management tests to check placement decisions prefer faster,
    less-loaded machines.
    """
    specs = _worker_specs(fast, SUN_ULTRA_FLOPS, SUN_ULTRA_MEMORY, "fast")
    specs += _worker_specs(slow, SUN_ULTRA_FLOPS * 0.6, SUN_ULTRA_MEMORY, "slow")
    if manager_node:
        specs = [NodeSpec(name="manager", flops=SUN_ULTRA_FLOPS,
                          memory_bytes=SUN_ULTRA_MEMORY)] + specs
    return Cluster(specs, interconnect=SharedEthernet(HUNDRED_BASE_T), name="heterogeneous-lan")


__all__ = [
    "SUN_ULTRA_FLOPS",
    "SUN_ULTRA_MEMORY",
    "HUNDRED_BASE_T",
    "sun_ultra_lan",
    "switched_lan",
    "shared_memory_smp",
    "heterogeneous_lan",
]
