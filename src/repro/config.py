"""Run-wide configuration objects.

Every top-level entry point of the library (the sequential pipeline, the
distributed manager/worker run, and the resilient run) is parameterised by a
small set of frozen dataclasses defined here.  Keeping configuration in plain
dataclasses (rather than ad-hoc keyword arguments threaded through many call
sites) gives three things:

* a single place where defaults corresponding to the paper's experimental
  setup live (``PaperSetup``),
* cheap validation with actionable error messages, and
* hashable/immutable values that are safe to share between simulated threads.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple


class ConfigurationError(ValueError):
    """Raised when a configuration object is internally inconsistent."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class ScreeningConfig:
    """Parameters of spectral-angle screening (algorithm steps 1-2).

    Attributes
    ----------
    angle_threshold:
        Minimum spectral angle (radians) between a candidate pixel vector and
        every current member of the unique set for the candidate to be added.
        The paper screens with the arccosine of the normalised dot product.
        The default of 0.05 rad sits above the sensor-noise angle of the
        synthetic HYDICE scenes (so noise does not inflate the unique set)
        but below the separation of the scene's material variants, yielding
        unique sets of a few hundred vectors -- enough for the screening pass
        to be a major share of the distributed compute, as it is in the
        paper's measurements, while rare target signatures are always
        retained.
    max_unique:
        Safety cap on the unique-set size.  ``None`` disables the cap.
    sample_stride:
        Optional spatial sub-sampling applied before screening.  ``1`` means
        every pixel participates, as in the paper.
    rescreen_merge:
        Whether the manager re-screens the concatenated per-worker unique
        sets (step 2) instead of taking their plain union.  The union keeps
        step 2 negligible, matching the paper's claim that the
        eigen-decomposition dominates the sequential time; re-screening is
        available for the merge ablation.
    """

    angle_threshold: float = 0.05
    max_unique: Optional[int] = 4096
    sample_stride: int = 1
    rescreen_merge: bool = False

    def __post_init__(self) -> None:
        _require(0.0 < self.angle_threshold < math.pi / 2,
                 f"angle_threshold must be in (0, pi/2), got {self.angle_threshold}")
        _require(self.max_unique is None or self.max_unique >= 1,
                 "max_unique must be None or >= 1")
        _require(self.sample_stride >= 1, "sample_stride must be >= 1")


@dataclass(frozen=True)
class ColorMapConfig:
    """Parameters of the human-centred colour mapping (algorithm step 8)."""

    #: Number of principal components mapped to colour opponency channels.
    components: int = 3
    #: Output sample range; the paper produces 8-bit composites.
    output_bits: int = 8
    #: Whether to stretch each opponency channel to +-128 before mixing.
    normalize_components: bool = True

    def __post_init__(self) -> None:
        _require(self.components == 3,
                 "the human-centred colour mapping is defined for exactly 3 components")
        _require(self.output_bits in (8, 16), "output_bits must be 8 or 16")


@dataclass(frozen=True)
class PartitionConfig:
    """Sub-cube decomposition / granularity control (Section 4, Figure 5)."""

    #: Number of worker threads P.
    workers: int = 4
    #: Number of sub-cubes the image cube is split into.  The paper explores
    #: ``workers``, ``2 * workers`` and ``3 * workers``; ``None`` means equal
    #: to ``workers``.
    subcubes: Optional[int] = None
    #: Split axis: 0 partitions rows of the scene (the paper partitions the
    #: spatial extent, each part being "a set of pixel vectors").
    axis: int = 0

    def __post_init__(self) -> None:
        _require(self.workers >= 1, "workers must be >= 1")
        _require(self.subcubes is None or self.subcubes >= self.workers,
                 "subcubes must be None or >= workers")
        _require(self.axis in (0, 1), "axis must be 0 (rows) or 1 (columns)")

    @property
    def effective_subcubes(self) -> int:
        return self.subcubes if self.subcubes is not None else self.workers


@dataclass(frozen=True)
class ResilienceConfig:
    """Computational-resiliency parameters (Section 2)."""

    #: Replication level for mission-critical (worker) threads.  Level 1 means
    #: no shadow copies; the paper's experiment uses level 2.
    replication_level: int = 2
    #: Whether the manager (the sensor itself in the paper) is replicated.
    replicate_manager: bool = False
    #: Heartbeat period used by the failure detector, in (virtual) seconds.
    heartbeat_period: float = 0.25
    #: Number of missed heartbeats before a replica is declared failed.
    heartbeat_misses: int = 3
    #: Whether lost replicas are regenerated on alternative nodes (resiliency)
    #: or merely tolerated (static replication baseline).
    regenerate: bool = True
    #: Fractional protocol overhead charged per replicated message exchange
    #: (sequence numbering, acknowledgements, duplicate suppression).  The
    #: paper measures roughly 10% overall overhead beyond replication cost.
    protocol_overhead: float = 0.10
    #: Whether replica computations are actually re-executed (True, validates
    #: determinism) or cloned from the primary while still being charged
    #: virtual time (False, faster benchmarks).
    execute_replicas: bool = True

    def __post_init__(self) -> None:
        _require(self.replication_level >= 1, "replication_level must be >= 1")
        _require(self.heartbeat_period > 0, "heartbeat_period must be positive")
        _require(self.heartbeat_misses >= 1, "heartbeat_misses must be >= 1")
        _require(0.0 <= self.protocol_overhead < 1.0,
                 "protocol_overhead must be in [0, 1)")


#: Compute dtypes the numeric kernels accept (the compute-dtype policy).
COMPUTE_DTYPES = ("float64", "float32")


@dataclass(frozen=True)
class FusionConfig:
    """Top-level configuration for a spectral-screening PCT run."""

    screening: ScreeningConfig = field(default_factory=ScreeningConfig)
    colormap: ColorMapConfig = field(default_factory=ColorMapConfig)
    partition: PartitionConfig = field(default_factory=PartitionConfig)
    resilience: Optional[ResilienceConfig] = None
    #: Random seed controlling any stochastic component (data generation,
    #: placement tie-breaking, attack schedules).
    seed: int = 0
    #: Arithmetic precision of the hot kernels (spectral screening and the
    #: stage-3/step-7 projection).  ``"float64"`` (default) reproduces the
    #: seed arithmetic bit for bit; ``"float32"`` is the documented fast mode
    #: -- roughly half the memory traffic on the two bandwidth-bound stages,
    #: at the cost of composites that only match to single precision.
    compute_dtype: str = "float64"
    #: Compute backend of the hot kernels (the registry in
    #: :mod:`repro.core.kernels`): ``"numpy"`` (default, the always-available
    #: reference) or ``"numba"`` (jit-fused elementwise passes around the
    #: same BLAS reductions; degrades to numpy with a warning when numba is
    #: not installed).  Orthogonal to ``compute_dtype``: the backend picks
    #: *how* the arithmetic runs, the dtype picks its precision, and every
    #: backend is bit-identical in float64 -- the policy can change
    #: throughput, never bytes.
    compute: str = "numpy"

    def __post_init__(self) -> None:
        _require(self.compute_dtype in COMPUTE_DTYPES,
                 f"compute_dtype must be one of {COMPUTE_DTYPES}, "
                 f"got {self.compute_dtype!r}")
        # Imported lazily: the kernels registry lives in the numeric core,
        # which this module must not import at module scope.
        from .core.kernels.registry import compute_names
        _require(self.compute in compute_names(),
                 f"compute must be one of {tuple(compute_names())}, "
                 f"got {self.compute!r}")

    def with_workers(self, workers: int, subcubes: Optional[int] = None) -> "FusionConfig":
        """Return a copy configured for a different worker count."""
        return dataclasses.replace(
            self, partition=dataclasses.replace(self.partition, workers=workers, subcubes=subcubes)
        )

    def with_resilience(self, resilience: Optional[ResilienceConfig]) -> "FusionConfig":
        return dataclasses.replace(self, resilience=resilience)


@dataclass(frozen=True)
class PaperSetup:
    """Constants describing the paper's experimental setup (Section 4).

    These are used by the benchmark harness and the cluster presets so the
    regenerated figures are driven by the same nominal parameters the paper
    reports, even when the synthetic data cube is scaled down.
    """

    #: The initial cube size used in the granularity experiment.
    cube_shape: Tuple[int, int, int] = (105, 320, 320)  # (bands, rows, cols)
    #: The full HYDICE collection has 210 spectral channels.
    full_bands: int = 210
    #: Worker counts swept in Figure 4.
    figure4_processors: Tuple[int, ...] = (1, 2, 4, 8, 16)
    #: Worker counts swept in Figure 5.
    figure5_processors: Tuple[int, ...] = (2, 4, 8, 16)
    #: Granularity multipliers swept in Figure 5.
    figure5_multipliers: Tuple[int, ...] = (1, 2, 3)
    #: Replication level used in the resiliency experiment.
    resiliency_level: int = 2
    #: The point past which performance "tailed off" in the paper.
    tail_off_subcubes: int = 32
    #: Number of workstations available on the testbed.
    max_processors: int = 16


PAPER_SETUP = PaperSetup()

__all__ = [
    "ConfigurationError",
    "COMPUTE_DTYPES",
    "ScreeningConfig",
    "ColorMapConfig",
    "PartitionConfig",
    "ResilienceConfig",
    "FusionConfig",
    "PaperSetup",
    "PAPER_SETUP",
]
