"""The paper's primary contribution: the spectral-screening PCT fusion engine.

Three entry points share one algorithm implementation:

* :class:`~repro.core.pipeline.SpectralScreeningPCT` -- sequential reference,
* :class:`~repro.core.distributed.DistributedPCT` -- manager/worker on the
  SCP runtime (simulated cluster or real threads),
* :class:`~repro.core.resilient.ResilientPCT` -- the distributed engine with
  computational resiliency (replication, detection, regeneration) applied.

``DistributedPCT`` and ``ResilientPCT`` are deprecated shims kept for
backward compatibility; new code reaches these engines through
:func:`repro.fuse` / :func:`repro.open_session` and the engine registry
(:mod:`repro.api.engines`).
"""

from .distributed import (MANAGER_NAME, WORKER_PREFIX, DistributedPCT,
                          DistributedRunOutcome, worker_name)
from .manager import manager_program
from .messages import (ALL_PHASES, PHASE_COVARIANCE, PHASE_SCREEN,
                       PHASE_TRANSFORM, PORT_HELLO, PORT_RESULT, PORT_TASK,
                       StopWork, TaskAssignment, TaskResult, WorkerHello)
from .partition import (SubcubeSpec, decompose, extract_subcube, granularity_for,
                        merge_subcubes, reassemble_composite, split_subcube,
                        subcube_pixel_matrix)
from .pipeline import FusionResult, SpectralScreeningPCT
from .resilient import ResilientPCT, ResilientRunOutcome
from .worker import worker_program

__all__ = [
    "MANAGER_NAME",
    "WORKER_PREFIX",
    "DistributedPCT",
    "DistributedRunOutcome",
    "worker_name",
    "manager_program",
    "worker_program",
    "ALL_PHASES",
    "PHASE_COVARIANCE",
    "PHASE_SCREEN",
    "PHASE_TRANSFORM",
    "PORT_HELLO",
    "PORT_RESULT",
    "PORT_TASK",
    "StopWork",
    "TaskAssignment",
    "TaskResult",
    "WorkerHello",
    "SubcubeSpec",
    "decompose",
    "extract_subcube",
    "granularity_for",
    "merge_subcubes",
    "reassemble_composite",
    "split_subcube",
    "subcube_pixel_matrix",
    "FusionResult",
    "SpectralScreeningPCT",
    "ResilientPCT",
    "ResilientRunOutcome",
]
