"""Distributed (manager/worker) spectral-screening PCT.

:class:`DistributedPCT` assembles the manager and worker thread programs into
an SCP :class:`~repro.scp.runtime.Application`, runs it on a chosen backend
and returns both the fusion output and the run metrics.  Three backends are
supported out of the box:

``backend="sim"``
    The deterministic discrete-event simulation of a workstation LAN
    (default: the paper's 16-node Sun/100BaseT preset).  This is the backend
    the performance figures are regenerated with.

``backend="local"``
    Real Python threads on the host; used by the integration tests to
    exercise genuine concurrency and fault injection.

``backend="process"``
    Real operating-system processes (one interpreter per replica) with the
    cube placed in shared memory.  This is the backend that delivers actual
    wall-clock speed-up on multi-core hosts; its measured per-phase timings
    feed the same :class:`~repro.cluster.metrics.RunMetrics` record, so
    Figure-4-style curves can be produced from measured rather than modelled
    times (see :mod:`repro.experiments.measured`).

The composite produced is identical across backends and identical to the
sequential :class:`~repro.core.pipeline.SpectralScreeningPCT` reference.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Union

from ..cluster.machine import Cluster
from ..cluster.metrics import RunMetrics
from ..config import FusionConfig
from ..data.cube import HyperspectralCube
from ..scp.local_backend import LocalBackend
from ..scp.process_backend import ProcessBackend
from ..scp.registry import BackendContext, BackendSpec, create_backend
from ..scp.runtime import Application, Backend, RunResult
from ..scp.sim_backend import ProtocolConfig, SimBackend
from ..scp.topology import CommunicationStructure
from .manager import manager_program
from .pipeline import FusionResult
from .worker import worker_program

MANAGER_NAME = "manager"
WORKER_PREFIX = "worker"


def worker_name(index: int) -> str:
    """Logical name of the ``index``-th worker thread."""
    return f"{WORKER_PREFIX}.{index}"


@dataclass
class DistributedRunOutcome:
    """Everything a distributed fusion run produces.

    Attributes
    ----------
    result:
        The :class:`~repro.core.pipeline.FusionResult` returned by the manager.
    metrics:
        Run metrics (elapsed virtual/wall time, traffic, per-phase compute).
    run:
        The raw backend :class:`~repro.scp.runtime.RunResult` for detailed
        inspection (per-replica outcomes and so on).
    """

    result: FusionResult
    metrics: RunMetrics
    run: RunResult

    @property
    def elapsed_seconds(self) -> float:
        return self.metrics.elapsed_seconds


class _DistributedPCT:
    """Manager/worker fusion engine on the SCP runtime.

    Parameters
    ----------
    config:
        Fusion configuration; ``config.partition.workers`` sets the number of
        worker threads and ``config.partition.subcubes`` the decomposition
        granularity.
    cluster:
        Optional explicit cluster model for the simulated backend; defaults
        to :func:`~repro.cluster.presets.sun_ultra_lan` sized to the worker
        count (plus a dedicated manager node).
    backend:
        A registry spec string (``"sim"``, ``"local"``, ``"process"``, or a
        parameterised form such as ``"process:fork"`` / ``"sim:switched"``),
        a parsed :class:`~repro.scp.registry.BackendSpec`, or an
        already-constructed :class:`~repro.scp.runtime.Backend` instance.
    n_components:
        Principal components retained (>= 3).
    prefetch:
        Outstanding tasks per worker (communication/computation overlap).
    reassign_timeout:
        Optional manager-side timeout after which outstanding tasks are
        redistributed; ``None`` (default) relies purely on the resiliency
        layer for recovery.
    protocol:
        Optional :class:`~repro.scp.sim_backend.ProtocolConfig` for the
        simulated backend (used by the resilient wrapper to charge protocol
        overheads).
    """

    def __init__(self, config: Optional[FusionConfig] = None, *,
                 cluster: Optional[Cluster] = None,
                 backend: Union[str, BackendSpec, Backend] = "sim",
                 n_components: int = 3,
                 full_projection: bool = True,
                 prefetch: int = 2,
                 reassign_timeout: Optional[float] = None,
                 protocol: Optional[ProtocolConfig] = None,
                 share_replica_results: bool = True) -> None:
        self.config = config or FusionConfig()
        self.cluster = cluster
        self.backend_choice = backend
        self.n_components = n_components
        self.full_projection = full_projection
        self.prefetch = prefetch
        self.reassign_timeout = reassign_timeout
        self.protocol = protocol
        self.share_replica_results = share_replica_results

    # ----------------------------------------------------------- application
    @property
    def workers(self) -> int:
        return self.config.partition.workers

    def worker_names(self) -> list:
        return [worker_name(i) for i in range(self.workers)]

    def build_application(self, cube: HyperspectralCube, *,
                          worker_replicas: int = 1) -> Application:
        """Construct the SCP application for ``cube``.

        ``worker_replicas`` is the replication level applied to every worker
        thread (the manager is never replicated, as in the paper).
        """
        structure = CommunicationStructure.manager_worker(self.workers,
                                                          manager=MANAGER_NAME,
                                                          worker_prefix=WORKER_PREFIX)
        app = Application(structure, name="spectral-screening-pct")
        app.add_thread(
            MANAGER_NAME, manager_program,
            params={
                "cube": cube,
                "config": self.config,
                "worker_names": self.worker_names(),
                "n_components": self.n_components,
                "full_projection": self.full_projection,
                "prefetch": self.prefetch,
                "reassign_timeout": self.reassign_timeout,
            },
            critical=False,
            memory_bytes=cube.nbytes_estimate(),
        )
        worker_memory = cube.nbytes_estimate() // max(self.workers, 1)
        for name in self.worker_names():
            app.add_thread(
                name, worker_program,
                params={"manager": MANAGER_NAME, "config": self.config},
                replicas=worker_replicas,
                critical=True,
                memory_bytes=worker_memory,
            )
        return app

    # --------------------------------------------------------------- backend
    def make_backend(self) -> Backend:
        """Instantiate the execution backend chosen at construction time.

        Spec strings are resolved through the backend registry
        (:mod:`repro.scp.registry`); already-built :class:`Backend`
        instances pass through unchanged.
        """
        if isinstance(self.backend_choice, Backend):
            return self.backend_choice
        context = BackendContext(workers=self.workers, cluster=self.cluster,
                                 protocol=self.protocol,
                                 share_replica_results=self.share_replica_results,
                                 manager=MANAGER_NAME)
        backend = create_backend(self.backend_choice, context)
        # The sim factory resolves the preset cluster; remember it so repeated
        # fuse() calls and the resiliency layer see the same model.
        self.cluster = context.cluster
        return backend

    # ------------------------------------------------------------------ fuse
    def fuse(self, cube: HyperspectralCube, *,
             backend: Optional[Backend] = None) -> "DistributedRunOutcome":
        """Run the distributed fusion and return result plus metrics."""
        backend = backend or self.make_backend()
        app = self.build_application(cube)
        run = self._execute(backend, app)
        return self._package(cube, run)

    def _execute(self, backend: Backend, app: Application) -> RunResult:
        if isinstance(backend, SimBackend):
            return backend.run(app)
        if isinstance(backend, (LocalBackend, ProcessBackend)):
            return backend.run(app, until_thread=MANAGER_NAME)
        return backend.run(app)

    def _package(self, cube: HyperspectralCube, run: RunResult) -> "DistributedRunOutcome":
        result = run.return_of(MANAGER_NAME)
        if not isinstance(result, FusionResult):
            raise TypeError(f"manager returned {type(result).__name__}, expected FusionResult")
        metrics = run.metrics
        metrics.workers = self.workers
        metrics.subcubes = max(self.config.partition.effective_subcubes, self.workers)
        return DistributedRunOutcome(result=result, metrics=metrics, run=run)


class DistributedPCT(_DistributedPCT):
    """Deprecated constructor-style entry point.

    Kept as a thin shim over the internal engine so existing code keeps
    working unchanged; new code should call :func:`repro.fuse` (one shot) or
    :func:`repro.open_session` (repeated workloads) with
    ``engine="distributed"`` instead.
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "DistributedPCT is deprecated; use repro.fuse(cube, "
            "engine='distributed', backend=...) or repro.open_session(...) instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)


__all__ = ["DistributedPCT", "DistributedRunOutcome", "worker_name",
           "MANAGER_NAME", "WORKER_PREFIX"]
