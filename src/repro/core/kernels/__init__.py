"""Pluggable compute-kernel tier for the hot fusion stages.

``repro.core.kernels`` mirrors the engine/backend/rule/scenario/transport
registries for *arithmetic*: named, bit-identical implementations of the
three hot kernels (fused centre+SYRK covariance partials, fused
centre/project/stretch step-7 tiles, the screening survivor elimination),
selected by the ``compute=`` policy string carried on
:class:`~repro.config.FusionConfig` -- never by a pickled function, so
forked and socket-transport workers resolve the same kernel by name.

Registered tiers:

``numpy``
    The always-available reference (:mod:`.numpy_backend`): scratch-pooled
    centring, ``out=`` GEMMs, in-place colour chain.  Defines the bits.
``numba``
    Jit-fused elementwise passes around the *same* BLAS reductions
    (:mod:`.numba_backend`); degrades to ``numpy`` with a warning when
    numba is not installed.

The module-level ``kernel_*`` functions are the picklable dispatch surface
worker tasks use: plain functions taking the compute name as data.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .registry import (ComputeBackend, compute_names, get_compute,
                       register_compute, resolve_compute)
from .numpy_backend import NumpyBackend
from .numba_backend import NumbaBackend


def kernel_covariance_sum(pixels: np.ndarray, mean: np.ndarray,
                          compute: str = "numpy") -> np.ndarray:
    """Covariance partial through the named compute backend (picklable)."""
    return resolve_compute(compute).covariance_sum(pixels, mean)


def kernel_project_block(block: np.ndarray, basis, *,
                         compute_dtype=np.float64,
                         compute: str = "numpy") -> np.ndarray:
    """Sub-cube projection through the named compute backend (picklable)."""
    return resolve_compute(compute).project_block(
        block, basis, compute_dtype=compute_dtype)


def kernel_project_and_map(block: np.ndarray, basis, *, n_components: int,
                           normalize: bool, stretch_mean: np.ndarray,
                           stretch_std: np.ndarray, compute_dtype=np.float64,
                           compute: str = "numpy",
                           components_out: Optional[np.ndarray] = None,
                           composite_out: Optional[np.ndarray] = None
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Fused step-7/8 tile through the named compute backend (picklable)."""
    return resolve_compute(compute).project_and_map(
        block, basis, n_components=n_components, normalize=normalize,
        stretch_mean=stretch_mean, stretch_std=stretch_std,
        compute_dtype=compute_dtype, components_out=components_out,
        composite_out=composite_out)


__all__ = ["ComputeBackend", "register_compute", "compute_names",
           "get_compute", "resolve_compute", "NumpyBackend", "NumbaBackend",
           "kernel_covariance_sum", "kernel_project_block",
           "kernel_project_and_map"]
