"""The ``numba`` compute backend: jitted elementwise fusion, same-BLAS sums.

Design rule (the **same-BLAS reduction rule**): a hand-written loop cannot
be bit-identical to a BLAS matrix product -- GEMM blocks and reassociates
its accumulations, fuses multiply-adds, and numpy additionally lowers
``A.T @ A`` to a symmetric rank-k update.  So this tier never re-implements
a reduction.  Every GEMM/SYRK runs as **exactly the numpy call the
reference backend makes, on operands with the same values, dtypes and
layouts** -- and everything *around* the reductions (centring, dtype
narrowing, the stretch/clip/offset colour chain, survivor bookkeeping) is
fused into single-pass ``@njit`` loops.  Those are elementwise, one
floating-point operation per element in the reference's operation order, so
bit-identity with the ``numpy`` tier holds by construction in both compute
dtypes; the property suite asserts it anyway.

The lone exception is the screening survivor elimination, whose pivot
cosines are explicit jitted dot products: a first-to-last accumulation may
differ from the BLAS GEMV in the final ulp, which can only matter for a
cosine within one rounding unit of the admission threshold -- the same
measure-zero boundary already documented for the screening kernel itself.

numba is a *soft* dependency (the ``accel`` extra).  The kernels below are
plain Python functions with numpy semantics; when numba imports they are
compiled with ``@njit`` on first use, and when it does not they remain
directly callable (slow but correct), which is how the equivalence suite
exercises this tier's arithmetic on hosts without numba.  Selection-time
degradation is separate: :func:`~repro.core.kernels.registry.
resolve_compute` routes ``compute="numba"`` to the numpy tier (with a
warning) whenever :meth:`NumbaBackend.available` is false, so production
runs never hit the uncompiled forms.
"""

from __future__ import annotations

from importlib.util import find_spec
from typing import Dict, Optional

import numpy as np

from ..steps.colormap import OPPONENCY_MATRIX, _OFFSET, _SCALE
from ..steps.transform import PCTBasis
from .numpy_backend import (_block_matrix, _scratch, _stretch_statistics,
                            _validated_pixel_matrix)
from .registry import ComputeBackend, register_compute


# ---------------------------------------------------------------------------
# Kernel bodies: plain Python, numpy semantics, numba-compilable.
# ---------------------------------------------------------------------------

def _centre(pixels, mean, out):
    """``out = pixels - mean`` fused over the matrix (one op per element)."""
    n, bands = pixels.shape
    for i in range(n):
        for j in range(bands):
            out[i, j] = pixels[i, j] - mean[j]


def _centre_narrow(pixels, mean, out):
    """Fused float64 -> float32 narrowing + centring (``astype`` + subtract
    in one pass; ``mean`` and ``out`` are float32)."""
    n, bands = pixels.shape
    for i in range(n):
        for j in range(bands):
            out[i, j] = np.float32(pixels[i, j]) - mean[j]


def _stretch_chain(first_three, mean, scale, out):
    """The colour-map stretch in one pass: centre, scale, clip, offset.

    Reproduces ``stretch_components`` followed by ``color_map``'s ``- 128``
    exactly -- including the seemingly redundant ``+ 128`` then ``- 128``,
    which is *not* an identity for magnitudes below the rounding unit of
    128 and therefore must stay in the operation sequence.
    """
    n = first_three.shape[0]
    for i in range(n):
        for c in range(3):
            value = (first_three[i, c] - mean[c]) / scale[c] * _OFFSET
            if value < -_OFFSET:
                value = -_OFFSET
            elif value > _OFFSET:
                value = _OFFSET
            out[i, c] = (value + _OFFSET) - _OFFSET


def _offset_chain(first_three, out):
    """The ``normalize=False`` colour path: just the ``- 128`` centring."""
    n = first_three.shape[0]
    for i in range(n):
        for c in range(3):
            out[i, c] = first_three[i, c] - _OFFSET


def _finish_rgb(mixed, out):
    """``clip((128 + mixed) / 256, 0, 1)`` fused into the output tile."""
    n = mixed.shape[0]
    for i in range(n):
        for c in range(3):
            value = (_OFFSET + mixed[i, c]) / _SCALE
            if value < 0.0:
                value = 0.0
            elif value > 1.0:
                value = 1.0
            out[i, c] = value


def _eliminate(survivors, survivor_rows, cos_threshold, room):
    """Survivor elimination with explicit pivot dot products.

    Decision-identical to the vectorised reference pass except for cosines
    within one ulp of the threshold (see the module docstring); admitted
    order and indices are preserved exactly.
    """
    n, bands = survivors.shape
    alive = np.ones(n, dtype=np.bool_)
    admitted = np.empty(n, dtype=np.intp)
    count = 0
    for i in range(n):
        if not alive[i]:
            continue
        if count >= room:
            break
        admitted[count] = i
        count += 1
        alive[i] = False
        for j in range(i + 1, n):
            if alive[j]:
                dot = survivors[j, 0] * survivors[i, 0]
                for k in range(1, bands):
                    dot = dot + survivors[j, k] * survivors[i, k]
                if not dot < cos_threshold:
                    alive[j] = False
    return admitted[:count]


_KERNEL_BODIES = {
    "centre": _centre,
    "centre_narrow": _centre_narrow,
    "stretch_chain": _stretch_chain,
    "offset_chain": _offset_chain,
    "finish_rgb": _finish_rgb,
    "eliminate": _eliminate,
}


def _compile_kernels() -> Dict[str, object]:
    """The kernel table: ``@njit``-compiled when numba imports, the plain
    Python bodies otherwise.  ``fastmath`` stays off -- reassociation and
    FMA contraction are exactly what the bit-identity contract forbids."""
    try:
        from numba import njit
    except Exception:
        return dict(_KERNEL_BODIES)
    return {name: njit(cache=True, fastmath=False)(fn)
            for name, fn in _KERNEL_BODIES.items()}


@register_compute("numba")
class NumbaBackend(ComputeBackend):
    """Jit-fused elementwise kernels around the reference BLAS reductions."""

    fallback = "numpy"

    def __init__(self) -> None:
        self._kernels: Optional[Dict[str, object]] = None

    @classmethod
    def available(cls) -> bool:
        return find_spec("numba") is not None

    def _kernel(self, name: str):
        if self._kernels is None:
            self._kernels = _compile_kernels()
        return self._kernels[name]

    # ------------------------------------------------------------ covariance
    def covariance_sum(self, pixels: np.ndarray, mean: np.ndarray) -> np.ndarray:
        pixels, mean = _validated_pixel_matrix(pixels, mean)
        centred = _scratch.get("centred", pixels.shape, np.float64)
        self._kernel("centre")(pixels, mean, centred)
        # Same-BLAS reduction: numpy's symmetric rank-k update, unchanged.
        return centred.T @ centred

    # ------------------------------------------------------------ projection
    def _centred_matrix(self, matrix: np.ndarray, basis: PCTBasis,
                        dtype: np.dtype) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float64)
        if dtype == np.float64:
            centred = _scratch.get("centred", matrix.shape, np.float64)
            self._kernel("centre")(matrix, basis.mean, centred)
            return centred
        centred = _scratch.get("centred32", matrix.shape, dtype)
        self._kernel("centre_narrow")(matrix, basis.mean.astype(dtype),
                                      centred)
        return centred

    def project(self, pixels: np.ndarray, basis: PCTBasis, *,
                compute_dtype=np.float64,
                out: Optional[np.ndarray] = None) -> np.ndarray:
        pixels = np.asarray(pixels, dtype=np.float64)
        if pixels.ndim != 2 or pixels.shape[1] != basis.bands:
            raise ValueError(f"pixels of shape {pixels.shape} do not match "
                             f"basis with {basis.bands} bands")
        dtype = np.dtype(compute_dtype)
        centred = self._centred_matrix(pixels, basis, dtype)
        if dtype == np.float64:
            if out is not None:
                return np.matmul(centred, basis.components.T, out=out)
            return centred @ basis.components.T
        narrow = centred @ basis.components.astype(dtype, copy=False).T
        if out is not None:
            np.copyto(out, narrow)
            return out
        return narrow.astype(np.float64)

    def project_block(self, block: np.ndarray, basis: PCTBasis, *,
                      compute_dtype=np.float64) -> np.ndarray:
        matrix, rows, cols = _block_matrix(block, basis)
        transformed = self.project(matrix, basis, compute_dtype=compute_dtype)
        return transformed.reshape(rows, cols, basis.n_components)

    # ------------------------------------------------- fused step-7/8 tiles
    def project_and_map(self, block: np.ndarray, basis: PCTBasis, *,
                        n_components: int, normalize: bool,
                        stretch_mean: np.ndarray, stretch_std: np.ndarray,
                        compute_dtype=np.float64, clip_sigma: float = 2.5,
                        components_out: Optional[np.ndarray] = None,
                        composite_out: Optional[np.ndarray] = None):
        matrix, rows, cols = _block_matrix(block, basis)
        pixels = rows * cols
        product = _scratch.get("product", (pixels, basis.n_components),
                               np.float64)
        self.project(matrix, basis, compute_dtype=compute_dtype, out=product)
        planes = product.reshape(rows, cols, basis.n_components)
        if components_out is not None:
            np.copyto(components_out, planes[..., :n_components])
            components = components_out
        else:
            components = planes[..., :n_components].copy()

        chain = _scratch.get("colour", (pixels, 3), np.float64)
        first_three = product[:, :3]
        if normalize:
            mean, scale = _stretch_statistics(stretch_mean, stretch_std,
                                              clip_sigma)
            self._kernel("stretch_chain")(first_three, mean, scale, chain)
        else:
            self._kernel("offset_chain")(first_three, chain)
        mixed = _scratch.get("mixed", (pixels, 3), np.float64)
        # Same-BLAS reduction: the 3x3 opponency mix stays a numpy GEMM.
        np.matmul(chain, OPPONENCY_MATRIX.T, out=mixed)
        if composite_out is not None:
            self._kernel("finish_rgb")(mixed, composite_out.reshape(pixels, 3))
            return components, composite_out
        composite = np.empty((pixels, 3), dtype=np.float64)
        self._kernel("finish_rgb")(mixed, composite)
        return components, composite.reshape(rows, cols, 3)

    # ------------------------------------------------------------- screening
    def eliminate_survivors(self, survivors: np.ndarray,
                            survivor_rows: np.ndarray, cos_threshold,
                            *, room: Optional[int] = None):
        survivors = np.ascontiguousarray(survivors)
        survivor_rows = np.asarray(survivor_rows)
        if room is None:
            room = survivors.shape[0]
        admitted = self._kernel("eliminate")(
            survivors, survivor_rows, survivors.dtype.type(cos_threshold),
            int(room))
        return survivors[admitted], survivor_rows[admitted].astype(np.intp)


__all__ = ["NumbaBackend"]
