"""The ``numpy`` compute backend: the always-available reference tier.

This backend defines the output bits every other tier must reproduce.  It
is *not* a naive transliteration of the step functions, though -- it removes
the per-call allocation traffic the generic expressions pay while keeping
every floating-point operation identical:

* centred temporaries (``pixels - mean``) are written with ``np.subtract
  (..., out=...)`` into a **thread-local scratch pool** instead of a fresh
  ``(pixels, bands)`` float64 array per call.  Same ufunc, same operands,
  same bytes -- only the allocator leaves the hot loop;
* the covariance reduction stays ``centred.T @ centred`` (numpy recognises
  the ``A.T @ A`` form and dispatches a symmetric rank-k update), and the
  projection GEMM gains an ``out=`` destination so the zero-copy tile path
  can point it at the shared-memory placement directly;
* the colour-map stretch/mix chain runs in place on a small scratch --
  the same operation sequence as :func:`~repro.core.steps.colormap.
  color_map`, element for element, so the composite is bit-identical.

Scratch buffers are keyed by (tag, shape, dtype) and live in
``threading.local`` storage: the pipeline engine's thread executors run
stage tasks concurrently on host threads, and per-thread pools make reuse
safe without a lock on the hot path.  Forked pool children inherit a
snapshot they may freely reuse (buffers hold no handles, just bytes).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from ..steps.colormap import OPPONENCY_MATRIX, _OFFSET, _SCALE
from ..steps.transform import PCTBasis, project
from .registry import ComputeBackend, register_compute

#: Buffers kept per thread; enough for the distinct shapes of one streaming
#: run (tiles differ by at most one row) without hoarding a sweep's worth.
_SCRATCH_LIMIT = 8


class _ScratchPool(threading.local):
    """Per-thread pool of reusable ndarray buffers, keyed by tag+shape+dtype.

    The *tag* keeps two live buffers of the same shape distinct (the fused
    projection uses a centred ``(pixels, bands)`` scratch and, at full
    projection rank, an equally-shaped product buffer -- aliasing them would
    hand BLAS an overlapping ``out=``).
    """

    def __init__(self) -> None:
        self._buffers: "OrderedDict[Tuple[str, Tuple[int, ...], str], np.ndarray]" \
            = OrderedDict()

    def get(self, tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tag, tuple(shape), np.dtype(dtype).str)
        buffer = self._buffers.pop(key, None)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
        self._buffers[key] = buffer
        while len(self._buffers) > _SCRATCH_LIMIT:
            self._buffers.popitem(last=False)
        return buffer


_scratch = _ScratchPool()


def _validated_pixel_matrix(pixels: np.ndarray,
                            mean: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """The covariance kernel's input validation (identical to the step fn)."""
    pixels = np.asarray(pixels, dtype=np.float64)
    mean = np.asarray(mean, dtype=np.float64)
    if pixels.ndim != 2:
        raise ValueError("pixels must be 2-D (pixels, bands)")
    if mean.shape != (pixels.shape[1],):
        raise ValueError(f"mean of shape {mean.shape} does not match "
                         f"{pixels.shape[1]} bands")
    return pixels, mean


def _block_matrix(block: np.ndarray, basis: PCTBasis) -> Tuple[np.ndarray, int, int]:
    """Reshape a ``(bands, rows, cols)`` sub-cube to its pixel matrix view."""
    block = np.asarray(block)
    if block.ndim != 3 or block.shape[0] != basis.bands:
        raise ValueError(f"block of shape {block.shape} does not match "
                         f"basis bands {basis.bands}")
    bands, rows, cols = block.shape
    return block.reshape(bands, -1).T, rows, cols


def _stretch_statistics(stretch_mean: np.ndarray, stretch_std: np.ndarray,
                        clip_sigma: float) -> Tuple[np.ndarray, np.ndarray]:
    """Normalised stretch constants, exactly as ``stretch_components`` derives
    them (mean/std truncated to the three mapped channels, zero stds floored
    to one, the clip width folded into a single per-channel scale)."""
    if clip_sigma <= 0:
        raise ValueError("clip_sigma must be positive")
    mean = np.asarray(stretch_mean, dtype=np.float64)[:3]
    std = np.asarray(stretch_std, dtype=np.float64)[:3]
    std = np.where(std > 0, std, 1.0)
    return mean, clip_sigma * std


@register_compute("numpy")
class NumpyBackend(ComputeBackend):
    """Reference kernels: numpy/BLAS with scratch reuse and ``out=`` paths."""

    fallback = None

    # ------------------------------------------------------------ covariance
    def covariance_sum(self, pixels: np.ndarray, mean: np.ndarray) -> np.ndarray:
        """Fused centre+SYRK covariance partial of one unique-set slice.

        The centring writes into a pooled scratch (no fresh ``(pixels,
        bands)`` temporary per partition) and the reduction keeps the
        ``centred.T @ centred`` form numpy lowers to a symmetric rank-k
        update -- both bit-identical to
        :func:`~repro.core.steps.statistics.covariance_sum`.
        """
        pixels, mean = _validated_pixel_matrix(pixels, mean)
        centred = _scratch.get("centred", pixels.shape, np.float64)
        np.subtract(pixels, mean[None, :], out=centred)
        return centred.T @ centred

    # ------------------------------------------------------------ projection
    def project(self, pixels: np.ndarray, basis: PCTBasis, *,
                compute_dtype=np.float64,
                out: Optional[np.ndarray] = None) -> np.ndarray:
        """Step-7 projection of a pixel matrix, scratch-centred.

        The float64 path subtracts into a pooled scratch and runs the same
        GEMM (optionally straight into ``out``); the float32 fast mode
        delegates to :func:`~repro.core.steps.transform.project`, which
        already skips no-op dtype conversions.
        """
        dtype = np.dtype(compute_dtype)
        if dtype != np.float64:
            return project(pixels, basis, compute_dtype=dtype, out=out)
        pixels = np.asarray(pixels, dtype=np.float64)
        if pixels.ndim != 2 or pixels.shape[1] != basis.bands:
            raise ValueError(f"pixels of shape {pixels.shape} do not match "
                             f"basis with {basis.bands} bands")
        centred = _scratch.get("centred", pixels.shape, np.float64)
        np.subtract(pixels, basis.mean[None, :], out=centred)
        if out is not None:
            return np.matmul(centred, basis.components.T, out=out)
        return centred @ basis.components.T

    def project_block(self, block: np.ndarray, basis: PCTBasis, *,
                      compute_dtype=np.float64) -> np.ndarray:
        """Project a ``(bands, rows, cols)`` sub-cube to component planes."""
        matrix, rows, cols = _block_matrix(block, basis)
        transformed = self.project(matrix, basis, compute_dtype=compute_dtype)
        return transformed.reshape(rows, cols, basis.n_components)

    # ------------------------------------------------- fused step-7/8 tiles
    def project_and_map(self, block: np.ndarray, basis: PCTBasis, *,
                        n_components: int, normalize: bool,
                        stretch_mean: np.ndarray, stretch_std: np.ndarray,
                        compute_dtype=np.float64, clip_sigma: float = 2.5,
                        components_out: Optional[np.ndarray] = None,
                        composite_out: Optional[np.ndarray] = None):
        """Fused centre+project+stretch+mix of one step-7 output tile.

        One pass over the tile: the projection GEMM lands in a pooled
        product buffer, the retained components are copied out once (into
        ``components_out`` when the zero-copy path supplies the shared
        placement view), and the colour chain runs in place on a
        ``(pixels, 3)`` scratch with its final clip writing ``composite_out``
        directly.  Operation-for-operation the arithmetic of
        ``project_cube_block`` followed by ``color_map``, so the results are
        bit-identical to the unfused path.
        """
        matrix, rows, cols = _block_matrix(block, basis)
        pixels = rows * cols
        product = _scratch.get("product", (pixels, basis.n_components),
                               np.float64)
        self.project(matrix, basis, compute_dtype=compute_dtype, out=product)
        planes = product.reshape(rows, cols, basis.n_components)
        if components_out is not None:
            np.copyto(components_out, planes[..., :n_components])
            components = components_out
        else:
            # .copy(), not ascontiguousarray: at projection rank 3 the slice
            # is the whole (pooled) product buffer and must not escape.
            components = planes[..., :n_components].copy()

        chain = _scratch.get("colour", (pixels, 3), np.float64)
        first_three = product[:, :3]
        if normalize:
            mean, scale = _stretch_statistics(stretch_mean, stretch_std,
                                              clip_sigma)
            np.subtract(first_three, mean[None, :], out=chain)
            np.divide(chain, scale[None, :], out=chain)
            np.multiply(chain, _OFFSET, out=chain)
            np.clip(chain, -_OFFSET, _OFFSET, out=chain)
            np.add(chain, _OFFSET, out=chain)
            np.subtract(chain, _OFFSET, out=chain)
        else:
            np.subtract(first_three, _OFFSET, out=chain)
        mixed = _scratch.get("mixed", (pixels, 3), np.float64)
        np.matmul(chain, OPPONENCY_MATRIX.T, out=mixed)
        np.add(mixed, _OFFSET, out=mixed)
        np.divide(mixed, _SCALE, out=mixed)
        if composite_out is not None:
            np.clip(mixed.reshape(rows, cols, 3), 0.0, 1.0, out=composite_out)
            return components, composite_out
        composite = np.clip(mixed, 0.0, 1.0).reshape(rows, cols, 3)
        return components, composite

    # ------------------------------------------------------------- screening
    def eliminate_survivors(self, survivors: np.ndarray,
                            survivor_rows: np.ndarray, cos_threshold,
                            *, room: Optional[int] = None):
        """Greedy elimination among one chunk's screening survivors.

        The first remaining survivor (lowest pixel index) is admitted;
        every remaining survivor within the cosine threshold of it is
        eliminated in one vectorised pass, and the procedure repeats on the
        shrinking remainder -- the inner loop of
        :func:`~repro.core.steps.screening.screen_unique_set`, verbatim.
        Returns the admitted (already normalised) rows and their chunk-row
        indices.
        """
        admitted: List[np.ndarray] = []
        admitted_rows: List[int] = []
        remaining = survivors
        remaining_rows = survivor_rows
        while remaining.shape[0]:
            if room is not None and len(admitted) >= room:
                break
            admitted.append(remaining[0])
            admitted_rows.append(int(remaining_rows[0]))
            alive = remaining @ remaining[0] < cos_threshold
            alive[0] = False  # the pivot itself, even when cos_threshold == 1.0
            remaining = remaining[alive]
            remaining_rows = remaining_rows[alive]
        if not admitted:
            return (np.empty((0, survivors.shape[1]), dtype=survivors.dtype),
                    np.empty(0, dtype=np.intp))
        return np.stack(admitted), np.asarray(admitted_rows, dtype=np.intp)


__all__ = ["NumpyBackend"]
