"""Compute-backend registry: named kernel tiers behind one protocol.

A *compute backend* decides how the three hot numeric kernels of the fusion
pipeline are executed -- the fused centre+SYRK covariance partial, the fused
centre/project/stretch of the step-7 tiles, and the screening
survivor-elimination inner pass.  It is the arithmetic analogue of the
engine/backend registries: engines decide *where* work runs, the compute
policy decides *which kernel implementation* runs it, and both travel as
plain strings so forked and socket-transport workers re-resolve the kernel
by name instead of unpickling functions.

Backends are registered by name with :func:`register_compute` and looked up
with :func:`get_compute`; :func:`resolve_compute` additionally applies the
degradation policy (an unavailable backend falls back to its declared
fallback with a warning -- ``compute="numba"`` without numba installed runs
the numpy reference instead of failing).  The registry is deliberately open:
a ``cupy`` tier later is one decorated class, exactly like adding an engine.

Contract
--------
Every backend produces *bit-identical* float64 results to the ``numpy``
reference backend (the same invariant the engines hold against the
sequential reference); float32 is the documented tolerance tier.  The
kernel-tier property suite asserts this, and the contract is what lets the
compute policy compose freely with every engine, transport and scenario --
it can change throughput, never bytes.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Type, TypeVar

import numpy as np

_COMPUTE_BACKENDS: Dict[str, Type["ComputeBackend"]] = {}
_INSTANCES: Dict[str, "ComputeBackend"] = {}

#: The decorated backend class passes through :func:`register_compute` unchanged.
_BackendClass = TypeVar("_BackendClass", bound=Type["ComputeBackend"])


class ComputeBackend:
    """Base class of the registered kernel tiers.

    Subclasses implement the three hot kernels (plus the matrix-level
    ``project`` they share); the base class holds the registry metadata and
    the availability hook the degradation policy consults.

    Attributes
    ----------
    name:
        Registered name (filled in by :func:`register_compute`).
    fallback:
        Name of the backend :func:`resolve_compute` degrades to when
        :meth:`available` is ``False``.  ``None`` means the backend has no
        soft dependency and must always work (the ``numpy`` reference).
    """

    name: str = "?"
    fallback: Optional[str] = None

    @classmethod
    def available(cls) -> bool:
        """Whether the backend's soft dependencies import on this host."""
        return True

    # -- the kernel surface; subclasses override ---------------------------
    def covariance_sum(self, pixels: np.ndarray, mean: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def project(self, pixels: np.ndarray, basis, *, compute_dtype=np.float64,
                out: Optional[np.ndarray] = None) -> np.ndarray:
        raise NotImplementedError

    def project_block(self, block: np.ndarray, basis, *,
                      compute_dtype=np.float64) -> np.ndarray:
        raise NotImplementedError

    def project_and_map(self, block: np.ndarray, basis, *, n_components: int,
                        normalize: bool, stretch_mean: np.ndarray,
                        stretch_std: np.ndarray, compute_dtype=np.float64,
                        components_out: Optional[np.ndarray] = None,
                        composite_out: Optional[np.ndarray] = None):
        raise NotImplementedError

    def eliminate_survivors(self, survivors: np.ndarray,
                            survivor_rows: np.ndarray, cos_threshold,
                            *, room: Optional[int] = None):
        raise NotImplementedError


def register_compute(name: str) -> Callable[[_BackendClass], _BackendClass]:
    """Class decorator registering a :class:`ComputeBackend` under ``name``."""
    def decorator(cls: _BackendClass) -> _BackendClass:
        if name in _COMPUTE_BACKENDS:
            raise ValueError(f"compute backend {name!r} is already registered")
        cls.name = name
        _COMPUTE_BACKENDS[name] = cls
        return cls
    return decorator


def compute_names() -> List[str]:
    """Sorted names of every registered compute backend."""
    return sorted(_COMPUTE_BACKENDS)


def get_compute(name: str) -> ComputeBackend:
    """The backend registered under ``name`` (no degradation policy).

    Raises a :class:`ValueError` listing the registered names when ``name``
    is unknown, so a typo in ``repro.fuse(cube, compute="...")`` is a
    one-line fix.  Instances are cached: backends are stateless (scratch
    buffers are thread-local) and resolution happens on every worker task.
    """
    try:
        cls = _COMPUTE_BACKENDS[name]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown compute backend {name!r}; registered compute backends: "
            f"{', '.join(compute_names())}") from None
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _INSTANCES[name] = cls()
    return instance


#: Backends that already warned about degrading, so a tiled run emits one
#: warning, not one per stage task.
_DEGRADED_WARNED: set = set()


def resolve_compute(name: str) -> ComputeBackend:
    """The backend to actually run: ``name``, or its fallback when missing.

    ``compute="numba"`` on a host without numba degrades to the ``numpy``
    reference with a :class:`RuntimeWarning` (once per process) instead of
    failing -- the policy is an acceleration hint, never a correctness knob,
    because every tier is bit-identical in float64 anyway.
    """
    backend = get_compute(name)
    if backend.available():
        return backend
    if backend.fallback is None:  # pragma: no cover - reference always available
        raise ValueError(f"compute backend {name!r} is unavailable on this "
                         f"host and declares no fallback")
    if name not in _DEGRADED_WARNED:
        _DEGRADED_WARNED.add(name)
        warnings.warn(
            f"compute backend {name!r} is not available on this host "
            f"(soft dependency not installed); degrading to "
            f"{backend.fallback!r}. Install the 'accel' extra "
            f"(pip install repro-fusion[accel]) for the {name!r} tier.",
            RuntimeWarning, stacklevel=2)
    return resolve_compute(backend.fallback)


__all__ = ["ComputeBackend", "register_compute", "compute_names",
           "get_compute", "resolve_compute"]
