"""Manager thread program of the distributed spectral-screening PCT.

The manager implements the paper's manager/worker decomposition (Section 3):
it partitions the problem into sub-cubes, distributes them to workers, merges
the per-partition results, executes the inherently sequential steps (unique
set merging, mean vector, covariance combination, eigen-decomposition), and
finally assembles the colour composite from the workers' transformed blocks.

The distribution protocol is *result driven with prefetch*: the manager keeps
up to ``prefetch`` tasks outstanding per worker; every incoming result
triggers the assignment of the next pending task to the worker that produced
it.  This creates the computation/communication overlap studied in Figure 5
whenever the number of sub-cubes exceeds the number of workers.

Fault-tolerance of the protocol itself comes from idempotence: task and
result messages carry duplicate-suppression keys, so re-sent tasks and
duplicate results (from replicated workers, regenerated replicas or timeout
reassignments) are harmless.  A worker replica that rejoins after
regeneration announces itself with a new incarnation number and the manager
re-sends whatever that worker still owes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator, List, Optional, Sequence

from ..config import FusionConfig
from ..data.cube import HyperspectralCube
from ..scp.effects import Checkpoint, Compute, Recv, Send
from ..scp.errors import ReceiveTimeout
from ..scp.runtime import Context
from .messages import (PHASE_COVARIANCE, PHASE_SCREEN, PHASE_TRANSFORM,
                       PORT_TASK, StopWork, TaskAssignment, TaskResult,
                       WorkerHello)
from .partition import decompose, extract_subcube, reassemble_composite
from .pipeline import FusionResult
from .steps.colormap import component_statistics
from .steps.screening import merge_flops, merge_unique_sets
from .steps.statistics import (covariance_combine_flops, covariance_matrix,
                               mean_flops, mean_vector, partition_pixel_matrix)
from .steps.transform import (PCTBasis, eigendecomposition_flops, project,
                              projection_flops, transformation_matrix)


def _phase_runner(ctx: Context, tasks: Sequence[TaskAssignment], phase: str,
                  worker_names: Sequence[str], prefetch: int,
                  reassign_timeout: Optional[float]) -> Generator:
    """Distribute ``tasks`` to workers and collect every result (sub-generator).

    Returns a dict ``task_id -> TaskResult``.  Implements prefetching,
    rejoin handling and (optionally) timeout-driven reassignment.
    """
    pending = deque(tasks)
    results: Dict[int, TaskResult] = {}
    assigned: Dict[str, List[TaskAssignment]] = {w: [] for w in worker_names}

    def assign_to(worker: str) -> Generator:
        while pending and len(assigned[worker]) < prefetch:
            task = pending.popleft()
            assigned[worker].append(task)
            yield Send(dst=worker, port=PORT_TASK, payload=task, key=task.dedup_key())

    # Initial push, round-robin one task per worker per round so that when the
    # decomposition is coarse (#sub-cubes close to #workers) every worker
    # receives work before any worker receives its prefetch backlog.
    for _ in range(max(prefetch, 1)):
        for worker in worker_names:
            if not pending:
                break
            if len(assigned[worker]) >= prefetch:
                continue
            task = pending.popleft()
            assigned[worker].append(task)
            yield Send(dst=worker, port=PORT_TASK, payload=task, key=task.dedup_key())

    while len(results) < len(tasks):
        try:
            envelope = yield Recv(port=None, timeout=reassign_timeout)
        except ReceiveTimeout:
            # Reassignment path: redistribute everything not yet completed to
            # the workers with the least outstanding work.  Duplicate results
            # that eventually arrive are suppressed by their keys.
            outstanding = [t for worker in worker_names for t in assigned[worker]
                           if t.task_id not in results]
            for task in outstanding:
                target = min(worker_names, key=lambda w: len(assigned[w]))
                if task not in assigned[target]:
                    assigned[target].append(task)
                yield Send(dst=target, port=PORT_TASK, payload=task, key=task.dedup_key())
            continue

        message = envelope.payload
        if isinstance(message, WorkerHello):
            worker = message.worker
            if worker not in assigned:
                assigned[worker] = []
            if message.incarnation > 0:
                # A regenerated replica: re-send everything this logical
                # worker still owes so no assignment is lost with the failure.
                for task in assigned[worker]:
                    if task.task_id not in results:
                        yield Send(dst=worker, port=PORT_TASK, payload=task,
                                   key=task.dedup_key())
            yield from assign_to(worker)
            continue

        if isinstance(message, TaskResult):
            if message.phase != phase or message.task_id in results:
                continue
            results[message.task_id] = message
            worker = message.worker
            if worker in assigned:
                assigned[worker] = [t for t in assigned[worker]
                                    if t.task_id != message.task_id]
                yield from assign_to(worker)
            continue
        # Anything else (late control traffic) is ignored.

    return results


def manager_program(ctx: Context, *, cube: HyperspectralCube,
                    config: Optional[FusionConfig] = None,
                    worker_names: Sequence[str] = (),
                    n_components: int = 3,
                    full_projection: bool = True,
                    prefetch: int = 2,
                    reassign_timeout: Optional[float] = None) -> Generator:
    """Generator program executed by the manager thread.

    Parameters
    ----------
    ctx:
        Backend-provided context.
    cube:
        The hyper-spectral cube to fuse (the manager "represents the sensor
        itself" in the paper, so it owns the data).
    config:
        Fusion configuration; ``config.partition`` controls the sub-cube
        decomposition and therefore the granularity experiment.
    worker_names:
        Logical names of the worker threads.
    n_components:
        Principal components retained in the output (>= 3 for colour mapping).
    full_projection:
        Whether step 7 transforms with the full eigenvector matrix (the
        paper's formulation) or only the retained components.
    prefetch:
        Maximum number of tasks kept outstanding per worker; 2 or more
        enables the computation/communication overlap of Section 3.
    reassign_timeout:
        Optional seconds after which the manager re-distributes outstanding
        work.  Left ``None`` in resilient runs so recovery is demonstrated by
        the resiliency library rather than masked by the application.
    """
    config = config or FusionConfig()
    if not worker_names:
        raise ValueError("manager_program needs at least one worker name")
    if n_components < 3:
        raise ValueError("n_components must be >= 3")
    worker_names = list(worker_names)
    screening = config.screening
    subcubes = max(config.partition.effective_subcubes, len(worker_names))
    subcube_specs = decompose(cube.rows, subcubes)
    bands = cube.bands

    # ------------------------------------------------------------- phase 1-2
    screen_tasks = [
        TaskAssignment(phase=PHASE_SCREEN, task_id=spec.task_id,
                       data={"block": extract_subcube(cube, spec)}, spec=spec)
        for spec in subcube_specs
    ]
    screen_results = yield from _phase_runner(ctx, screen_tasks, PHASE_SCREEN,
                                              worker_names, prefetch, reassign_timeout)
    unique_sets = [screen_results[i].data["unique"] for i in sorted(screen_results)]
    total_members = int(sum(u.shape[0] for u in unique_sets))

    unique = yield Compute(fn=merge_unique_sets,
                           args=(unique_sets, screening.angle_threshold),
                           kwargs={"max_unique": screening.max_unique,
                                   "rescreen": screening.rescreen_merge,
                                   "compute_dtype": config.compute_dtype,
                                   "compute": config.compute},
                           flops=lambda merged, n=total_members, b=bands,
                               r=screening.rescreen_merge:
                               merge_flops(n, merged.shape[0], b, rescreen=r),
                           phase="merge")
    yield Checkpoint({"stage": "screened", "unique_size": int(unique.shape[0])})

    # --------------------------------------------------------------- phase 3
    mean = yield Compute(fn=mean_vector, args=(unique,),
                         flops=mean_flops(unique.shape[0], bands), phase="mean")

    # ------------------------------------------------------------- phase 4-5
    covariance_parts = partition_pixel_matrix(unique, len(worker_names))
    covariance_tasks = [
        TaskAssignment(phase=PHASE_COVARIANCE, task_id=index,
                       data={"pixels": part, "mean": mean})
        for index, part in enumerate(covariance_parts)
    ]
    covariance_results = yield from _phase_runner(ctx, covariance_tasks, PHASE_COVARIANCE,
                                                  worker_names, prefetch, reassign_timeout)
    partial_sums = [covariance_results[i].data["cov_sum"]
                    for i in sorted(covariance_results)]
    covariance = yield Compute(fn=covariance_matrix,
                               args=(partial_sums, unique.shape[0]),
                               flops=covariance_combine_flops(len(partial_sums), bands),
                               phase="covariance_combine")

    # --------------------------------------------------------------- phase 6
    rank = bands if full_projection else n_components
    basis = yield Compute(fn=transformation_matrix, args=(covariance, mean),
                          kwargs={"n_components": rank},
                          flops=eigendecomposition_flops(bands),
                          phase="eigendecomposition")

    # Global colour-stretch statistics from the screened unique set, so every
    # worker normalises its block with identical constants.  Only the three
    # components used by the colour mapping are needed, so the manager
    # projects onto a truncated basis -- this keeps the extra sequential work
    # negligible (it is not part of the paper's algorithm).
    stats_basis = PCTBasis(eigenvalues=basis.eigenvalues,
                           components=basis.components[:3], mean=basis.mean)
    unique_components = yield Compute(fn=project, args=(unique, stats_basis),
                                      flops=projection_flops(unique.shape[0], bands, 3),
                                      phase="component_stats")
    stretch_mean, stretch_std = component_statistics(unique_components)
    yield Checkpoint({"stage": "basis", "unique_size": int(unique.shape[0])})

    # ------------------------------------------------------------- phase 7-8
    transform_tasks = [
        TaskAssignment(phase=PHASE_TRANSFORM, task_id=spec.task_id,
                       data={"block": extract_subcube(cube, spec), "basis": basis,
                             "stretch_mean": stretch_mean, "stretch_std": stretch_std,
                             "keep_components": n_components},
                       spec=spec)
        for spec in subcube_specs
    ]
    transform_results = yield from _phase_runner(ctx, transform_tasks, PHASE_TRANSFORM,
                                                 worker_names, prefetch, reassign_timeout)

    rgb_blocks = [(transform_results[i].data["spec"], transform_results[i].data["rgb"])
                  for i in sorted(transform_results)]
    component_blocks = [(transform_results[i].data["spec"],
                         transform_results[i].data["components"])
                        for i in sorted(transform_results)]
    composite = reassemble_composite(rgb_blocks, cube.rows, cube.cols, channels=3)
    components = reassemble_composite(component_blocks, cube.rows, cube.cols,
                                      channels=n_components)

    # --------------------------------------------------------------- shutdown
    stop = StopWork()
    for worker in worker_names:
        yield Send(dst=worker, port=PORT_TASK, payload=stop, key=stop.dedup_key())

    metadata = {
        "mode": "distributed",
        "workers": len(worker_names),
        "subcubes": subcubes,
        "prefetch": prefetch,
        "bands": bands,
        "rows": cube.rows,
        "cols": cube.cols,
        "stretch_mean": stretch_mean,
        "stretch_std": stretch_std,
        "compute_dtype": config.compute_dtype,
        "compute": config.compute,
    }
    return FusionResult(composite=composite, components=components, basis=basis,
                        unique_set_size=int(unique.shape[0]), phase_flops={},
                        metadata=metadata)


__all__ = ["manager_program"]
