"""Typed messages exchanged between the fusion manager and its workers.

The manager/worker protocol uses a small set of message kinds, each carried
as the payload of an SCP envelope on a well-known port.  Keeping them as
dataclasses (rather than ad-hoc tuples) documents the protocol, lets the
duplicate-suppression keys be derived systematically, and gives the tests a
stable surface to assert against.

Ports
-----
``PORT_TASK``
    Manager -> worker: work assignments and stop notices.
``PORT_RESULT``
    Worker -> manager: completed sub-problem results.
``PORT_HELLO``
    Worker -> manager: join/rejoin announcements (sent at start-up and by
    regenerated replicas so outstanding work can be re-sent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .partition import SubcubeSpec

PORT_TASK = "task"
PORT_RESULT = "result"
PORT_HELLO = "hello"

#: Phase identifiers, in execution order.
PHASE_SCREEN = "screen"
PHASE_COVARIANCE = "covariance"
PHASE_TRANSFORM = "transform"
ALL_PHASES = (PHASE_SCREEN, PHASE_COVARIANCE, PHASE_TRANSFORM)


@dataclass
class WorkerHello:
    """Join / rejoin announcement from a worker replica."""

    worker: str
    incarnation: int = 0

    def dedup_key(self) -> Tuple[Any, ...]:
        return ("hello", self.worker, self.incarnation)


@dataclass
class TaskAssignment:
    """One unit of work sent to a logical worker.

    Attributes
    ----------
    phase:
        One of :data:`ALL_PHASES`.
    task_id:
        Dense task index within the phase.
    data:
        Phase-specific payload:

        * screen: ``{"block": (bands, rows, cols) array}``
        * covariance: ``{"pixels": (m, bands) array, "mean": (bands,) array}``
        * transform: ``{"block": array, "spec": SubcubeSpec, "basis": PCTBasis}``
    spec:
        The sub-cube this task corresponds to, when applicable.
    """

    phase: str
    task_id: int
    data: Dict[str, Any] = field(default_factory=dict)
    spec: Optional[SubcubeSpec] = None

    def dedup_key(self) -> Tuple[Any, ...]:
        return ("task", self.phase, self.task_id)

    def nbytes_estimate(self) -> int:
        total = 256
        for value in self.data.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
            elif hasattr(value, "nbytes_estimate"):
                total += int(value.nbytes_estimate())
        return total


@dataclass
class TaskResult:
    """Result of one completed task, sent back to the manager."""

    phase: str
    task_id: int
    worker: str
    data: Dict[str, Any] = field(default_factory=dict)

    def dedup_key(self) -> Tuple[Any, ...]:
        # The worker name is deliberately excluded: the same task computed by
        # two different workers (e.g. after a reassignment) must still be
        # recognised as a duplicate by the manager's mailbox.
        return ("result", self.phase, self.task_id)

    def nbytes_estimate(self) -> int:
        total = 256
        for value in self.data.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
        return total


@dataclass
class StopWork:
    """Terminal notice telling a worker the run is complete."""

    reason: str = "complete"

    def dedup_key(self) -> Tuple[Any, ...]:
        return ("stop", self.reason)


__all__ = [
    "PORT_TASK",
    "PORT_RESULT",
    "PORT_HELLO",
    "PHASE_SCREEN",
    "PHASE_COVARIANCE",
    "PHASE_TRANSFORM",
    "ALL_PHASES",
    "WorkerHello",
    "TaskAssignment",
    "TaskResult",
    "StopWork",
]
