"""Sub-cube decomposition and granularity control.

The distributed algorithm divides the hyper-spectral cube into *sub-cubes*
along the spatial (row) axis; each sub-cube is one unit of work handed to a
worker.  Section 4 of the paper (Figure 5) studies the effect of the number
of sub-cubes relative to the number of workers: decomposing into 2-3x more
sub-cubes than workers allows communication to be overlapped with
computation, while decomposing too finely (beyond ~32 sub-cubes for the
320x320x105 cube) makes per-message overhead dominate.

This module owns that decomposition and the small helpers the resource
manager uses to reason about granularity (merging / splitting work units).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.cube import HyperspectralCube


@dataclass(frozen=True)
class SubcubeSpec:
    """One unit of work: a contiguous block of scene rows.

    Attributes
    ----------
    task_id:
        Dense index of the sub-cube, 0..subcubes-1.
    row_start / row_stop:
        Half-open row range of the block.
    """

    task_id: int
    row_start: int
    row_stop: int

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start

    def pixel_count(self, cols: int) -> int:
        return self.rows * cols


def decompose(cube_rows: int, subcubes: int) -> List[SubcubeSpec]:
    """Split ``cube_rows`` scene rows into ``subcubes`` contiguous blocks.

    Blocks differ in size by at most one row, so load imbalance introduced by
    the decomposition itself is negligible.
    """
    if subcubes < 1:
        raise ValueError("subcubes must be >= 1")
    if subcubes > cube_rows:
        raise ValueError(f"cannot create {subcubes} sub-cubes from {cube_rows} rows")
    edges = np.linspace(0, cube_rows, subcubes + 1, dtype=int)
    return [SubcubeSpec(task_id=i, row_start=int(edges[i]), row_stop=int(edges[i + 1]))
            for i in range(subcubes)]


def extract_subcube(cube: HyperspectralCube, spec: SubcubeSpec) -> np.ndarray:
    """Materialise the ``(bands, block_rows, cols)`` array of one sub-cube.

    A copy is taken so the payload shipped to a worker is exactly the block
    (both for communication-cost realism and to avoid accidentally sharing
    the full cube's memory in the local backend).
    """
    if not 0 <= spec.row_start < spec.row_stop <= cube.rows:
        raise ValueError(f"sub-cube {spec} out of range for cube with {cube.rows} rows")
    return np.ascontiguousarray(cube.data[:, spec.row_start:spec.row_stop, :])


def subcube_pixel_matrix(block: np.ndarray) -> np.ndarray:
    """Reshape a ``(bands, rows, cols)`` block to a ``(pixels, bands)`` matrix."""
    if block.ndim != 3:
        raise ValueError("expected a 3-D sub-cube block")
    bands = block.shape[0]
    return block.reshape(bands, -1).T


def reassemble_composite(blocks: Sequence[Tuple[SubcubeSpec, np.ndarray]],
                         rows: int, cols: int, channels: int = 3) -> np.ndarray:
    """Stitch per-sub-cube RGB blocks back into the full composite image.

    Raises
    ------
    ValueError
        If the blocks do not tile the full row range exactly once.
    """
    composite = np.zeros((rows, cols, channels), dtype=np.float64)
    covered = np.zeros(rows, dtype=bool)
    for spec, block in blocks:
        block = np.asarray(block)
        expected = (spec.rows, cols, channels)
        if block.shape != expected:
            raise ValueError(f"block for {spec} has shape {block.shape}, expected {expected}")
        if covered[spec.row_start:spec.row_stop].any():
            raise ValueError(f"rows {spec.row_start}:{spec.row_stop} are covered twice")
        composite[spec.row_start:spec.row_stop] = block
        covered[spec.row_start:spec.row_stop] = True
    if not covered.all():
        missing = int(np.count_nonzero(~covered))
        raise ValueError(f"composite is missing {missing} rows")
    return composite


# --------------------------------------------------------------------------
# Granularity helpers
# --------------------------------------------------------------------------

def granularity_for(workers: int, multiplier: int = 2, *, cube_rows: Optional[int] = None,
                    cap: Optional[int] = None) -> int:
    """Number of sub-cubes for a worker count and granularity multiplier.

    ``multiplier=1`` reproduces the paper's ``#sub-cube = #proc`` series,
    2 and 3 the over-decomposed series of Figure 5.  The result is optionally
    capped (the paper observes performance tails off past 32 sub-cubes for
    its problem size) and never exceeds the number of scene rows.
    """
    if workers < 1 or multiplier < 1:
        raise ValueError("workers and multiplier must be >= 1")
    subcubes = workers * multiplier
    if cap is not None:
        subcubes = min(subcubes, cap)
    if cube_rows is not None:
        subcubes = min(subcubes, cube_rows)
    return max(subcubes, workers) if cube_rows is None or cube_rows >= workers else cube_rows


def merge_subcubes(specs: Sequence[SubcubeSpec], factor: int = 2) -> List[SubcubeSpec]:
    """Coarsen a decomposition by merging ``factor`` adjacent sub-cubes.

    Used by the resource manager's granularity control (Watts & Taylor 1998
    in the paper's references): when communication overhead dominates,
    adjacent work units are merged into larger ones.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    ordered = sorted(specs, key=lambda s: s.row_start)
    merged: List[SubcubeSpec] = []
    for i in range(0, len(ordered), factor):
        group = ordered[i:i + factor]
        for a, b in zip(group, group[1:]):
            if a.row_stop != b.row_start:
                raise ValueError("can only merge adjacent sub-cubes")
        merged.append(SubcubeSpec(task_id=len(merged), row_start=group[0].row_start,
                                  row_stop=group[-1].row_stop))
    return merged


def split_subcube(spec: SubcubeSpec, parts: int, next_task_id: int) -> List[SubcubeSpec]:
    """Refine one sub-cube into ``parts`` smaller ones (granularity decrease)."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if parts > spec.rows:
        raise ValueError(f"cannot split {spec.rows} rows into {parts} parts")
    edges = np.linspace(spec.row_start, spec.row_stop, parts + 1, dtype=int)
    return [SubcubeSpec(task_id=next_task_id + i, row_start=int(edges[i]),
                        row_stop=int(edges[i + 1])) for i in range(parts)]


__all__ = [
    "SubcubeSpec",
    "decompose",
    "extract_subcube",
    "subcube_pixel_matrix",
    "reassemble_composite",
    "granularity_for",
    "merge_subcubes",
    "split_subcube",
]
