"""Sequential reference implementation of the spectral-screening PCT.

:class:`SpectralScreeningPCT` runs the eight algorithm steps of Section 3 in
a single process.  It is the ground truth against which the distributed and
resilient implementations are validated (their composites must match it
exactly), the baseline of the speed-up figures (the one-processor point of
Figure 4), and the simplest entry point of the library::

    from repro import SpectralScreeningPCT, HydiceGenerator

    cube = HydiceGenerator.quicklook_cube()
    result = SpectralScreeningPCT().fuse(cube)
    rgb = result.composite          # (rows, cols, 3) in [0, 1]
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..config import FusionConfig
from ..data.cube import HyperspectralCube
from .partition import decompose, extract_subcube, subcube_pixel_matrix
from .steps.colormap import color_map, color_map_flops, component_statistics
from .steps.screening import (merge_unique_sets, screen_unique_set,
                              screening_flops)
from .steps.statistics import (covariance_matrix, covariance_sum_flops,
                               mean_flops, mean_vector,
                               partition_pixel_matrix)
from .steps.transform import (PCTBasis, eigendecomposition_flops, project,
                              projection_flops, transformation_matrix)


@dataclass
class FusionResult:
    """Output of a fusion run (sequential, distributed or resilient).

    Attributes
    ----------
    composite:
        ``(rows, cols, 3)`` colour composite in [0, 1] (Figure 3 analogue).
    components:
        ``(rows, cols, n_components)`` principal component planes.
    basis:
        The :class:`~repro.core.steps.transform.PCTBasis` used for projection.
    unique_set_size:
        Number of pixel vectors retained by spectral screening (K).
    phase_flops:
        Estimated floating point work per algorithm phase; the simulated
        backend charges these against node speeds.
    metadata:
        Run provenance (configuration echo, worker counts, and so on).
    """

    composite: np.ndarray
    components: np.ndarray
    basis: PCTBasis
    unique_set_size: int
    phase_flops: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def shape(self):
        return self.composite.shape

    def total_flops(self) -> float:
        return float(sum(self.phase_flops.values()))


class SpectralScreeningPCT:
    """Sequential spectral-screening PCT fusion engine.

    Parameters
    ----------
    config:
        Full :class:`~repro.config.FusionConfig`; only the screening,
        partition and colour-map sections are used by the sequential path.
    n_components:
        Number of principal components *retained in the output*; the colour
        mapping uses the first three.
    full_projection:
        When True (default, the paper's formulation) step 7 projects every
        pixel onto *all* eigenvectors of the covariance and the first
        ``n_components`` are kept afterwards.  When False only the leading
        ``n_components`` eigenvectors are applied, an optimisation the
        projection-rank ablation benchmark quantifies.
    """

    def __init__(self, config: Optional[FusionConfig] = None, *, n_components: int = 3,
                 full_projection: bool = True) -> None:
        self.config = config or FusionConfig()
        if n_components < 3:
            raise ValueError("at least 3 components are required for colour mapping")
        self.n_components = n_components
        self.full_projection = full_projection

    # ------------------------------------------------------------------ fuse
    def fuse(self, cube: HyperspectralCube) -> FusionResult:
        """Run all eight steps on ``cube`` and return the fusion result.

        The screening pass follows the same sub-cube decomposition the
        distributed implementation uses (``config.partition``): each sub-cube
        is screened independently and the per-sub-cube unique sets are merged
        (step 2).  With the default single sub-cube this is the plain
        algorithm; configured identically to a distributed run it produces a
        bit-identical composite, which is what the cross-implementation
        equivalence tests assert.

        Each step's wall clock and processed row count are recorded into
        ``metadata["stage_seconds"]`` / ``metadata["stage_rows"]`` /
        ``metadata["stage_invocations"]``, from which the engine layer
        derives :attr:`~repro.api.request.FusionReport.stage_timings`.
        """
        from .kernels import resolve_compute

        screening = self.config.screening
        subcubes = self.config.partition.effective_subcubes
        compute_dtype = self.config.compute_dtype
        compute = self.config.compute
        kernel = resolve_compute(compute)
        stage_seconds: Dict[str, float] = {}
        stage_rows: Dict[str, int] = {}
        stage_invocations: Dict[str, int] = {}

        def timed(stage: str, rows: Optional[int], fn, *args, **kwargs):
            start = time.perf_counter()
            value = fn(*args, **kwargs)
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) + (
                time.perf_counter() - start)
            stage_invocations[stage] = stage_invocations.get(stage, 0) + 1
            if rows is not None:
                stage_rows[stage] = stage_rows.get(stage, 0) + rows
            return value

        # Steps 1-2: per-sub-cube spectral screening, then merge.
        unique_sets = []
        for spec in decompose(cube.rows, min(subcubes, cube.rows)):
            block_pixels = subcube_pixel_matrix(extract_subcube(cube, spec))
            unique_sets.append(timed(
                "screening", block_pixels.shape[0], screen_unique_set,
                block_pixels, screening.angle_threshold,
                max_unique=screening.max_unique,
                sample_stride=screening.sample_stride,
                compute_dtype=compute_dtype, compute=compute))
        total_members = int(sum(u.shape[0] for u in unique_sets))
        unique = timed("merge", total_members, merge_unique_sets,
                       unique_sets, screening.angle_threshold,
                       max_unique=screening.max_unique,
                       rescreen=screening.rescreen_merge,
                       compute_dtype=compute_dtype, compute=compute)

        # Step 3: mean vector of the unique set.
        mean = timed("mean", int(unique.shape[0]), mean_vector, unique)

        # Steps 4-5: covariance of the unique set, accumulated per partition
        # exactly as the distributed workers do (identical summation order).
        parts = partition_pixel_matrix(unique, max(self.config.partition.workers, 1))
        partial_sums = [timed("covariance", int(part.shape[0]),
                              kernel.covariance_sum, part, mean)
                        for part in parts]
        covariance = covariance_matrix(partial_sums, total_pixels=unique.shape[0])

        # Step 6: transformation matrix.  The paper's formulation transforms
        # with the full eigenvector matrix and then keeps the first three
        # components for colour mapping.
        rank = cube.bands if self.full_projection else self.n_components
        basis = timed("eigendecomposition", None, transformation_matrix,
                      covariance, mean, n_components=rank)

        # Global colour-stretch statistics, derived from the screened unique
        # set so that the distributed workers (which normalise their blocks
        # with the same constants) reproduce this composite exactly.  Only the
        # three colour-mapped components are needed, so project onto a
        # truncated basis.
        stats_basis = PCTBasis(eigenvalues=basis.eigenvalues,
                               components=basis.components[:3], mean=basis.mean)
        stretch_mean, stretch_std = component_statistics(
            timed("component_stats", int(unique.shape[0]), project,
                  unique, stats_basis))

        # Step 7: transform the original cube, keeping the leading components.
        components = timed("projection", cube.pixels, kernel.project_block,
                           cube.data, basis,
                           compute_dtype=compute_dtype)[..., : self.n_components]

        # Step 8: human-centred colour mapping.
        composite = timed("colormap", cube.pixels, color_map, components,
                          normalize=self.config.colormap.normalize_components,
                          mean=stretch_mean, std=stretch_std)

        phase_flops = self.estimate_phase_flops(cube, unique.shape[0])
        metadata = {
            "mode": "sequential",
            "angle_threshold": screening.angle_threshold,
            "n_components": self.n_components,
            "bands": cube.bands,
            "rows": cube.rows,
            "cols": cube.cols,
            "stretch_mean": stretch_mean,
            "stretch_std": stretch_std,
            "compute_dtype": compute_dtype,
            "compute": compute,
            "stage_seconds": stage_seconds,
            "stage_rows": stage_rows,
            "stage_invocations": stage_invocations,
        }
        return FusionResult(composite=composite, components=components, basis=basis,
                            unique_set_size=int(unique.shape[0]),
                            phase_flops=phase_flops, metadata=metadata)

    # ------------------------------------------------------------ cost model
    def estimate_phase_flops(self, cube: HyperspectralCube, unique_size: int) -> Dict[str, float]:
        """Analytic FLOP estimate per phase for the given problem size.

        The same estimators drive the simulated backend, so the sequential
        run time predicted from these numbers is consistent with the
        one-worker point of the distributed simulation.
        """
        n_pixels = cube.pixels
        bands = cube.bands
        rank = bands if self.full_projection else self.n_components
        return {
            "screening": screening_flops(n_pixels, unique_size, bands),
            "mean": mean_flops(unique_size, bands),
            "covariance": covariance_sum_flops(unique_size, bands),
            "eigendecomposition": eigendecomposition_flops(bands),
            "projection": projection_flops(n_pixels, bands, rank),
            "colormap": color_map_flops(n_pixels),
        }

    def predicted_sequential_seconds(self, cube: HyperspectralCube, unique_size: int,
                                     flops_per_second: float) -> float:
        """Predicted single-workstation run time on a node of the given speed."""
        if flops_per_second <= 0:
            raise ValueError("flops_per_second must be positive")
        total = sum(self.estimate_phase_flops(cube, unique_size).values())
        return total / flops_per_second


__all__ = ["SpectralScreeningPCT", "FusionResult"]
