"""Per-stage profiling of fusion runs.

Every engine already *times* its work somewhere -- the sequential reference
wraps each algorithm step, the SCP backends charge :class:`~repro.scp.
effects.Compute` effects into :class:`~repro.cluster.metrics.RunMetrics.
phase_seconds`, and the streaming engine drives its stages from one
function.  This module gives those measurements one shape:
:class:`StageTiming` records for each stage the elapsed seconds, the number
of kernel invocations, the rows (pixel vectors) processed, and the analytic
FLOP estimate from the existing ``*_flops`` cost models -- from which the
effective throughput (rows/second) and compute rate (GFLOP/s) follow.

All four engines surface these records on :attr:`~repro.api.request.
FusionReport.stage_timings`; ``repro-fusion fuse --profile`` prints them as
a table.  On the simulated backend the seconds are *virtual* (the cost
model's charge), so the derived GFLOP/s recovers the modelled node speed;
everywhere else they are measured wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..analysis.report import format_table


@dataclass(frozen=True)
class StageTiming:
    """Timing and throughput of one named fusion stage.

    Attributes
    ----------
    name:
        Stage name (``"screening"``, ``"projection"``, ...).
    seconds:
        Elapsed seconds attributed to the stage.  Wall clock on real
        backends; virtual (modelled) time on the simulated backend.
    invocations:
        Number of kernel invocations aggregated into ``seconds``.
    rows:
        Pixel vectors processed, when meaningful for the stage.
    flops:
        Analytic FLOP estimate from the step cost models, when available.
    """

    name: str
    seconds: float
    invocations: int = 1
    rows: Optional[int] = None
    flops: Optional[float] = None

    @property
    def rows_per_second(self) -> Optional[float]:
        if self.rows is None or self.seconds <= 0:
            return None
        return self.rows / self.seconds

    @property
    def gflops_per_second(self) -> Optional[float]:
        if self.flops is None or self.seconds <= 0:
            return None
        return self.flops / self.seconds / 1e9

    def as_dict(self) -> Dict[str, object]:
        """Flat record for JSON artifacts and tabulation."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "invocations": self.invocations,
            "rows": self.rows,
            "flops": self.flops,
            "rows_per_second": self.rows_per_second,
            "gflops_per_second": self.gflops_per_second,
        }


def build_stage_timings(
        phase_seconds: Mapping[str, float], *,
        phase_invocations: Optional[Mapping[str, int]] = None,
        phase_rows: Optional[Mapping[str, int]] = None,
        phase_flops: Optional[Mapping[str, float]] = None,
) -> Dict[str, StageTiming]:
    """Assemble :class:`StageTiming` records from per-phase measurements.

    ``phase_seconds`` drives the stage list; the other mappings contribute
    whatever they know about a stage and are simply omitted where silent.
    Stages keep their measurement order (dicts preserve insertion order), so
    tables read in pipeline order.
    """
    invocations = phase_invocations or {}
    rows = phase_rows or {}
    flops = phase_flops or {}
    return {
        name: StageTiming(
            name=name,
            seconds=float(seconds),
            invocations=int(invocations.get(name, 1)),
            rows=rows.get(name),
            flops=flops.get(name),
        )
        for name, seconds in phase_seconds.items()
    }


def stage_timings_from_result(result) -> Dict[str, StageTiming]:
    """Stage timings of an inline-driven run (sequential or pipeline).

    Both drivers record ``stage_seconds`` / ``stage_rows`` /
    ``stage_invocations`` into :attr:`~repro.core.pipeline.FusionResult.
    metadata`; FLOP estimates come from ``metadata["stage_flops"]`` when the
    driver supplies stage-specific ones (the pipeline's fused
    projection+colour-map stage) and from the result's per-phase cost-model
    estimates otherwise.
    """
    meta = result.metadata
    flops = meta.get("stage_flops") or result.phase_flops
    return build_stage_timings(meta.get("stage_seconds") or {},
                               phase_invocations=meta.get("stage_invocations"),
                               phase_rows=meta.get("stage_rows"),
                               phase_flops=flops)


def stage_timings_table(timings: Mapping[str, StageTiming], *,
                        title: Optional[str] = "per-stage profile") -> str:
    """Fixed-width table of the per-stage profile (the ``--profile`` view)."""
    headers = ["stage", "seconds", "calls", "rows", "rows/s", "GFLOP/s"]

    def fmt(value: Optional[float], pattern: str) -> str:
        return "-" if value is None else pattern.format(value)

    rows = [
        [t.name, f"{t.seconds:.4f}", t.invocations,
         "-" if t.rows is None else t.rows,
         fmt(t.rows_per_second, "{:,.0f}"),
         fmt(t.gflops_per_second, "{:.2f}")]
        for t in timings.values()
    ]
    total = sum(t.seconds for t in timings.values())
    rows.append(["total", f"{total:.4f}", sum(t.invocations for t in timings.values()),
                 "-", "-", "-"])
    return format_table(headers, rows, title=title)


__all__ = ["StageTiming", "build_stage_timings", "stage_timings_from_result",
           "stage_timings_table"]
