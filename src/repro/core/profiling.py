"""Per-stage profiling of fusion runs.

Every engine already *times* its work somewhere -- the sequential reference
wraps each algorithm step, the SCP backends charge :class:`~repro.scp.
effects.Compute` effects into :class:`~repro.cluster.metrics.RunMetrics.
phase_seconds`, and the streaming engine drives its stages from one
function.  This module gives those measurements one shape:
:class:`StageTiming` records for each stage the elapsed seconds, the number
of kernel invocations, the rows (pixel vectors) processed, and the analytic
FLOP estimate from the existing ``*_flops`` cost models -- from which the
effective throughput (rows/second) and compute rate (GFLOP/s) follow.

All four engines surface these records on :attr:`~repro.api.request.
FusionReport.stage_timings`; ``repro-fusion fuse --profile`` prints them as
a table.  On the simulated backend the seconds are *virtual* (the cost
model's charge), so the derived GFLOP/s recovers the modelled node speed;
everywhere else they are measured wall clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..analysis.report import format_table


@dataclass(frozen=True)
class StageTiming:
    """Timing and throughput of one named fusion stage.

    Attributes
    ----------
    name:
        Stage name (``"screening"``, ``"projection"``, ...).
    seconds:
        Elapsed seconds attributed to the stage.  Wall clock on real
        backends; virtual (modelled) time on the simulated backend.
    invocations:
        Number of kernel invocations aggregated into ``seconds``.
    rows:
        Pixel vectors processed, when meaningful for the stage.
    flops:
        Analytic FLOP estimate from the step cost models, when available.
    """

    name: str
    seconds: float
    invocations: int = 1
    rows: Optional[int] = None
    flops: Optional[float] = None

    @property
    def rows_per_second(self) -> Optional[float]:
        if self.rows is None or self.seconds <= 0:
            return None
        return self.rows / self.seconds

    @property
    def gflops_per_second(self) -> Optional[float]:
        if self.flops is None or self.seconds <= 0:
            return None
        return self.flops / self.seconds / 1e9

    def as_dict(self) -> Dict[str, object]:
        """Flat record for JSON artifacts and tabulation."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "invocations": self.invocations,
            "rows": self.rows,
            "flops": self.flops,
            "rows_per_second": self.rows_per_second,
            "gflops_per_second": self.gflops_per_second,
        }


def build_stage_timings(
        phase_seconds: Mapping[str, float], *,
        phase_invocations: Optional[Mapping[str, int]] = None,
        phase_rows: Optional[Mapping[str, int]] = None,
        phase_flops: Optional[Mapping[str, float]] = None,
) -> Dict[str, StageTiming]:
    """Assemble :class:`StageTiming` records from per-phase measurements.

    ``phase_seconds`` drives the stage list; the other mappings contribute
    whatever they know about a stage and are simply omitted where silent.
    Stages keep their measurement order (dicts preserve insertion order), so
    tables read in pipeline order.
    """
    invocations = phase_invocations or {}
    rows = phase_rows or {}
    flops = phase_flops or {}
    return {
        name: StageTiming(
            name=name,
            seconds=float(seconds),
            invocations=int(invocations.get(name, 1)),
            rows=rows.get(name),
            flops=flops.get(name),
        )
        for name, seconds in phase_seconds.items()
    }


def stage_timings_from_result(result) -> Dict[str, StageTiming]:
    """Stage timings of an inline-driven run (sequential or pipeline).

    Both drivers record ``stage_seconds`` / ``stage_rows`` /
    ``stage_invocations`` into :attr:`~repro.core.pipeline.FusionResult.
    metadata`; FLOP estimates come from ``metadata["stage_flops"]`` when the
    driver supplies stage-specific ones (the pipeline's fused
    projection+colour-map stage) and from the result's per-phase cost-model
    estimates otherwise.
    """
    meta = result.metadata
    flops = meta.get("stage_flops") or result.phase_flops
    return build_stage_timings(meta.get("stage_seconds") or {},
                               phase_invocations=meta.get("stage_invocations"),
                               phase_rows=meta.get("stage_rows"),
                               phase_flops=flops)


#: One-shot measured host GEMM peak (GFLOP/s), cached per process.
_GEMM_PEAK_GFLOPS: Optional[float] = None


def measured_gemm_peak_gflops(*, size: int = 384, repeats: int = 3,
                              refresh: bool = False) -> float:
    """The host's float64 GEMM rate, measured once and cached.

    Times a small square ``A @ B`` (the same BLAS routine the projection and
    covariance kernels reduce through) and converts the best of ``repeats``
    runs to GFLOP/s.  This is a *practical* peak -- what the linked BLAS
    actually delivers on this machine -- so the ``%peak`` column of the
    ``--profile`` table reads as "fraction of what a pure dense GEMM would
    achieve here", not a theoretical vector-unit bound.
    """
    global _GEMM_PEAK_GFLOPS
    if _GEMM_PEAK_GFLOPS is not None and not refresh:
        return _GEMM_PEAK_GFLOPS
    rng = np.random.default_rng(0)
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))
    a @ b  # warm the BLAS dispatch before timing
    best = min(_timed_gemm(a, b) for _ in range(max(repeats, 1)))
    _GEMM_PEAK_GFLOPS = (2.0 * size ** 3) / best / 1e9
    return _GEMM_PEAK_GFLOPS


def _timed_gemm(a: "np.ndarray", b: "np.ndarray") -> float:
    start = time.perf_counter()
    a @ b
    return max(time.perf_counter() - start, 1e-9)


def stage_timings_table(timings: Mapping[str, StageTiming], *,
                        title: Optional[str] = "per-stage profile",
                        compute: Optional[str] = None,
                        peak_gflops: Optional[float] = None) -> str:
    """Fixed-width table of the per-stage profile (the ``--profile`` view).

    ``compute`` labels each stage with the compute backend the run used and
    ``peak_gflops`` adds a ``%peak`` column relating each stage's effective
    GFLOP/s to the one-shot measured host GEMM rate
    (:func:`measured_gemm_peak_gflops`); both columns are omitted when the
    caller does not supply them.
    """
    headers = ["stage", "seconds", "calls", "rows", "rows/s", "GFLOP/s"]
    if compute is not None:
        headers.insert(1, "compute")
    if peak_gflops is not None:
        headers.append("%peak")

    def fmt(value: Optional[float], pattern: str) -> str:
        return "-" if value is None else pattern.format(value)

    def row_of(t: StageTiming) -> list:
        row = [t.name, f"{t.seconds:.4f}", t.invocations,
               "-" if t.rows is None else t.rows,
               fmt(t.rows_per_second, "{:,.0f}"),
               fmt(t.gflops_per_second, "{:.2f}")]
        if compute is not None:
            row.insert(1, compute)
        if peak_gflops is not None:
            rate = t.gflops_per_second
            row.append("-" if rate is None or peak_gflops <= 0
                       else f"{100.0 * rate / peak_gflops:.1f}%")
        return row

    rows = [row_of(t) for t in timings.values()]
    total_row = ["total", f"{sum(t.seconds for t in timings.values()):.4f}",
                 sum(t.invocations for t in timings.values()), "-", "-", "-"]
    if compute is not None:
        total_row.insert(1, compute)
    if peak_gflops is not None:
        total_row.append("-")
    rows.append(total_row)
    if peak_gflops is not None:
        title = (f"{title}; host GEMM peak {peak_gflops:.2f} GFLOP/s"
                 if title else f"host GEMM peak {peak_gflops:.2f} GFLOP/s")
    return format_table(headers, rows, title=title)


__all__ = ["StageTiming", "build_stage_timings", "stage_timings_from_result",
           "stage_timings_table", "measured_gemm_peak_gflops"]
