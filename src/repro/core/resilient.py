"""Resilient distributed fusion: DistributedPCT + computational resiliency.

:class:`ResilientPCT` is the configuration the paper actually evaluates:
every worker thread is replicated (level 2 in Section 4), the manager -- the
sensor -- is not, heartbeat failure detection and dynamic regeneration are
armed, and the more expensive group-communication protocols (acknowledgement
and sequencing overheads) are charged by the simulated backend.  An optional
attack scenario and camouflage policy can be layered on without touching the
algorithm code.

The fusion output of a resilient run is identical to the plain distributed
run and to the sequential reference -- resiliency only changes *how long*
the run takes and *what it survives*, which is exactly what the paper's
Figure 4 measures.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..cluster.machine import Cluster
from ..cluster.metrics import RunMetrics
from ..config import FusionConfig, ResilienceConfig
from ..data.cube import HyperspectralCube
from ..resilience.attack import AttackScenario
from ..resilience.coordinator import ResilienceCoordinator, protocol_config_for
from ..resilience.policy import ReplicationPolicy
from ..scp.local_backend import LocalBackend
from ..scp.process_backend import ProcessBackend
from ..scp.registry import BackendContext, BackendSpec, create_backend
from ..scp.runtime import Application, Backend, RunResult
from ..scp.sim_backend import SimBackend
from .distributed import (MANAGER_NAME, DistributedRunOutcome, _DistributedPCT)
from .pipeline import FusionResult


@dataclass
class ResilientRunOutcome(DistributedRunOutcome):
    """A distributed run outcome augmented with the resiliency report."""

    resilience_report: Dict[str, object] = None  # type: ignore[assignment]

    @property
    def replicas_regenerated(self) -> int:
        return int(self.metrics.replicas_regenerated)

    @property
    def failures_injected(self) -> int:
        return int(self.metrics.failures_injected)


class _ResilientPCT:
    """Distributed spectral-screening PCT with computational resiliency.

    Parameters
    ----------
    config:
        Fusion configuration.  ``config.resilience`` supplies the resiliency
        parameters; when it is ``None`` the paper's defaults
        (:class:`~repro.config.ResilienceConfig` with level 2) are used.
    cluster:
        Optional cluster model; defaults to the paper's Sun/100BaseT preset
        sized to the worker count.
    backend:
        ``"sim"`` (default), ``"local"`` or ``"process"``.  On the two real
        backends failure detection relies on immediate death notifications
        (a crashed worker process is observed by the parent) rather than on
        modelled heartbeats, and regeneration spawns genuine replacements.
    attack:
        Optional :class:`~repro.resilience.attack.AttackScenario` injected
        during the run.
    camouflage_period:
        When set, critical threads are periodically migrated with this
        period (seconds) as a camouflage measure.
    """

    def __init__(self, config: Optional[FusionConfig] = None, *,
                 cluster: Optional[Cluster] = None,
                 backend: Union[str, BackendSpec, Backend] = "sim",
                 n_components: int = 3,
                 full_projection: bool = True,
                 prefetch: int = 2,
                 reassign_timeout: Optional[float] = None,
                 attack: Optional[AttackScenario] = None,
                 camouflage_period: Optional[float] = None,
                 share_replica_results: bool = True) -> None:
        self.config = config or FusionConfig()
        self.resilience = self.config.resilience or ResilienceConfig()
        self.cluster = cluster
        self.backend_choice = backend
        self.n_components = n_components
        self.full_projection = full_projection
        self.prefetch = prefetch
        self.reassign_timeout = reassign_timeout
        self.attack = attack
        self.camouflage_period = camouflage_period
        self.share_replica_results = share_replica_results
        self._distributed = _DistributedPCT(
            self.config, cluster=cluster, backend=backend, n_components=n_components,
            full_projection=full_projection, prefetch=prefetch,
            reassign_timeout=reassign_timeout,
            share_replica_results=share_replica_results)

    # ----------------------------------------------------------------- pieces
    @property
    def workers(self) -> int:
        return self.config.partition.workers

    def build_application(self, cube: HyperspectralCube) -> Application:
        """The same manager/worker application, with workers replicated."""
        if self.resilience.replicate_manager:
            raise NotImplementedError(
                "manager replication is not part of the paper's configuration "
                "(the manager represents the sensor itself) and is not implemented")
        return self._distributed.build_application(
            cube, worker_replicas=self.resilience.replication_level)

    def make_backend(self) -> Backend:
        """Instantiate the backend with the resiliency protocol cost model.

        Spec strings go through the backend registry
        (:mod:`repro.scp.registry`); the context charges the resiliency
        protocol overheads on the simulated backend.
        """
        if isinstance(self.backend_choice, Backend):
            return self.backend_choice
        context = BackendContext(
            workers=self.workers, cluster=self.cluster,
            protocol=protocol_config_for(self.resilience),
            share_replica_results=(self.share_replica_results
                                   and not self.resilience.execute_replicas),
            manager=MANAGER_NAME)
        backend = create_backend(self.backend_choice, context)
        self.cluster = context.cluster
        return backend

    # ------------------------------------------------------------------ fuse
    def fuse(self, cube: HyperspectralCube) -> ResilientRunOutcome:
        """Run the resilient fusion end to end."""
        backend = self.make_backend()
        app = self.build_application(cube)

        pinned = {MANAGER_NAME: "manager"} \
            if (self.cluster is not None and "manager" in self.cluster.node_names) else {}
        coordinator = ResilienceCoordinator(
            backend, self.cluster, self.resilience,
            policy=ReplicationPolicy.from_config(self.resilience),
            pinned=pinned)
        placement = coordinator.attach(app)

        if self.attack is not None:
            coordinator.arm_attack(self.attack)
        if self.camouflage_period is not None:
            coordinator.enable_camouflage(
                period=self.camouflage_period,
                logical_threads=self._distributed.worker_names(),
                seed=self.config.seed)

        run = self._execute(backend, app, placement)
        outcome = self._package(run, coordinator)
        return outcome

    # -------------------------------------------------------------- internals
    def _execute(self, backend: Backend, app: Application,
                 placement: Optional[Dict[str, str]]) -> RunResult:
        if isinstance(backend, SimBackend):
            return backend.run(app, placement=placement, until_thread=MANAGER_NAME)
        if isinstance(backend, (LocalBackend, ProcessBackend)):
            return backend.run(app, until_thread=MANAGER_NAME)
        return backend.run(app)

    def _package(self, run: RunResult, coordinator: ResilienceCoordinator
                 ) -> ResilientRunOutcome:
        result = run.return_of(MANAGER_NAME)
        if not isinstance(result, FusionResult):
            raise TypeError(f"manager returned {type(result).__name__}, expected FusionResult")
        metrics: RunMetrics = run.metrics
        metrics.workers = self.workers
        metrics.subcubes = max(self.config.partition.effective_subcubes, self.workers)
        metrics.replication_level = self.resilience.replication_level
        report = coordinator.report()
        result.metadata["resilience"] = report
        result.metadata["mode"] = "resilient"
        return ResilientRunOutcome(result=result, metrics=metrics, run=run,
                                   resilience_report=report)


class ResilientPCT(_ResilientPCT):
    """Deprecated constructor-style entry point.

    Kept as a thin shim over the internal engine so existing code keeps
    working unchanged; new code should call :func:`repro.fuse` (one shot) or
    :func:`repro.open_session` (repeated workloads) with
    ``engine="resilient"`` instead.
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "ResilientPCT is deprecated; use repro.fuse(cube, "
            "engine='resilient', backend=...) or repro.open_session(...) instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(*args, **kwargs)


__all__ = ["ResilientPCT", "ResilientRunOutcome"]
