"""The eight algorithm steps of the spectral-screening PCT, as pure functions.

Each module pairs the numerical kernels with FLOP estimators used by the
simulated backend's cost model:

* :mod:`.screening`  -- steps 1-2: spectral-angle screening and merging
* :mod:`.statistics` -- steps 3-5: mean vector, covariance sums, covariance
* :mod:`.transform`  -- steps 6-7: eigen-decomposition and projection
* :mod:`.colormap`   -- step 8: human-centred colour mapping
"""

from .colormap import (OPPONENCY_MATRIX, color_map, color_map_flops,
                       component_statistics, composite_from_block, luminance,
                       stretch_components)
from .screening import (UniqueSetBuffer, merge_flops, merge_unique_sets,
                        normalize_rows, screen_unique_set,
                        screen_unique_set_reference, screening_flops,
                        spectral_angles)
from .statistics import (covariance_combine_flops, covariance_matrix,
                         covariance_sum, covariance_sum_flops, mean_flops,
                         mean_vector, partition_pixel_matrix)
from .transform import (EIGH_FLOP_CONSTANT, PCTBasis, eigendecomposition_flops,
                        project, project_cube_block, projection_flops,
                        transformation_matrix)

__all__ = [
    "OPPONENCY_MATRIX",
    "color_map",
    "color_map_flops",
    "component_statistics",
    "composite_from_block",
    "luminance",
    "stretch_components",
    "UniqueSetBuffer",
    "merge_flops",
    "merge_unique_sets",
    "normalize_rows",
    "screen_unique_set",
    "screen_unique_set_reference",
    "screening_flops",
    "spectral_angles",
    "covariance_combine_flops",
    "covariance_matrix",
    "covariance_sum",
    "covariance_sum_flops",
    "mean_flops",
    "mean_vector",
    "partition_pixel_matrix",
    "EIGH_FLOP_CONSTANT",
    "PCTBasis",
    "eigendecomposition_flops",
    "project",
    "project_cube_block",
    "projection_flops",
    "transformation_matrix",
]
