"""Step 8: human-centred colour mapping.

The final step maps the first three principal components onto a colour
composite in a way matched to the opponent-process organisation of human
vision: the first (highest variance) component drives the achromatic channel,
the second drives red-green opponency and the third blue-yellow opponency
(Boynton 1979; Poirson & Wandell 1993, both cited by the paper).

The paper gives an explicit 3x3 mixing matrix applied to the components after
an offset of 128, followed by normalisation by 256.  The matrix printed in
the archival scan is partially garbled by the OCR of the equation; the matrix
used here is reconstructed so that its columns implement exactly the stated
opponency scheme (column 1 adds to every RGB channel, column 2 is a
red-minus-green difference, column 3 a blue-minus-yellow difference) while
keeping the legible coefficients (0.4387, 0.4972, 0.1403, 0.1355, 0.0795,
0.0641, 0.0116).  The qualitative behaviour the paper reports -- improved
contrast, the camouflaged vehicle standing out against foliage -- depends
only on this structure, which the reproduction tests check directly.

Normalisation
-------------
Principal components have arbitrary numeric range, so before the 3x3 mix the
components are stretched into the +-128 digital range implied by the paper's
``(C - 128)`` term.  The stretch statistics (per-component mean and standard
deviation) may either be computed from the data being mapped
(``self-normalising``, the convenient single-machine path) or supplied
explicitly.  The distributed implementation supplies statistics computed once
from the screened unique set so that every worker's block is normalised with
the *same* constants -- otherwise block boundaries would be visible and the
distributed composite would not match the sequential reference.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Opponency-to-RGB mixing matrix.  Rows produce (R, G, B); columns take
#: (achromatic, red-green, blue-yellow) inputs.
OPPONENCY_MATRIX = np.array([
    [0.4387, +0.4972, +0.0641],   # red   = luminance + R-G push + small B-Y
    [0.4972, -0.1403, +0.0795],   # green = luminance - R-G push + small B-Y
    [0.1355, -0.0116, -0.4972],   # blue  = luminance            - B-Y push
], dtype=np.float64)

#: Offset and scale constants from the paper's equation.
_OFFSET = 128.0
_SCALE = 256.0


def component_statistics(components: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-component mean and standard deviation of the first three components.

    Used by the manager to derive global stretch constants from the screened
    unique set before distributing the transform/colour-map tasks.
    """
    components = np.asarray(components, dtype=np.float64)
    if components.shape[-1] < 3:
        raise ValueError("need at least 3 components")
    flat = components.reshape(-1, components.shape[-1])[:, :3]
    mean = flat.mean(axis=0)
    std = flat.std(axis=0)
    std = np.where(std > 0, std, 1.0)
    return mean, std


def stretch_components(components: np.ndarray, *, mean: Optional[np.ndarray] = None,
                       std: Optional[np.ndarray] = None,
                       clip_sigma: float = 2.5) -> np.ndarray:
    """Scale principal components into the [0, 256] digital range.

    Each component is centred on ``mean`` and scaled so ``clip_sigma``
    standard deviations span the +-128 range, then clipped and shifted to be
    non-negative.  When ``mean``/``std`` are omitted they are computed from
    the data itself.
    """
    components = np.asarray(components, dtype=np.float64)
    if components.shape[-1] < 3:
        raise ValueError("need at least 3 components")
    first_three = components[..., :3]
    if mean is None or std is None:
        mean, std = component_statistics(first_three)
    mean = np.asarray(mean, dtype=np.float64)[:3]
    std = np.asarray(std, dtype=np.float64)[:3]
    std = np.where(std > 0, std, 1.0)
    if clip_sigma <= 0:
        raise ValueError("clip_sigma must be positive")
    scaled = (first_three - mean) / (clip_sigma * std) * _OFFSET
    return np.clip(scaled, -_OFFSET, _OFFSET) + _OFFSET


def color_map(components: np.ndarray, *, normalize: bool = True,
              mean: Optional[np.ndarray] = None, std: Optional[np.ndarray] = None,
              clip_sigma: float = 2.5, as_uint8: bool = False) -> np.ndarray:
    """Map the first three principal components to an RGB composite.

    Parameters
    ----------
    components:
        ``(..., k)`` array with k >= 3; only the first three are used.
        Typically ``(rows, cols, 3)`` from
        :func:`~repro.core.steps.transform.project_cube_block`.
    normalize:
        Apply :func:`stretch_components` first (recommended; raw principal
        components have arbitrary numeric range).
    mean / std:
        Optional global stretch statistics (see module docstring).
    clip_sigma:
        Stretch width used by the normalisation.
    as_uint8:
        Return ``uint8`` in [0, 255] instead of float in [0, 1].

    Returns
    -------
    ndarray
        ``(..., 3)`` RGB composite.
    """
    components = np.asarray(components, dtype=np.float64)
    if components.shape[-1] < 3:
        raise ValueError(
            f"colour mapping needs at least 3 components; got {components.shape[-1]}")
    first_three = components[..., :3]
    if normalize:
        first_three = stretch_components(first_three, mean=mean, std=std,
                                         clip_sigma=clip_sigma)
    # R_ij = (128 + M (C_ij - 128)) / 256, vectorised over all pixels.
    centred = first_three - _OFFSET
    mixed = centred @ OPPONENCY_MATRIX.T
    rgb = (_OFFSET + mixed) / _SCALE
    rgb = np.clip(rgb, 0.0, 1.0)
    if as_uint8:
        return np.round(rgb * 255.0).astype(np.uint8)
    return rgb


def composite_from_block(component_block: np.ndarray, *, mean: Optional[np.ndarray] = None,
                         std: Optional[np.ndarray] = None, clip_sigma: float = 2.5,
                         as_uint8: bool = False) -> np.ndarray:
    """Convenience wrapper used by workers: block of components -> RGB block."""
    return color_map(component_block, normalize=True, mean=mean, std=std,
                     clip_sigma=clip_sigma, as_uint8=as_uint8)


def luminance(rgb: np.ndarray) -> np.ndarray:
    """Rec.601 luminance of an RGB composite (used by contrast metrics)."""
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.shape[-1] != 3:
        raise ValueError("expected an RGB array with a trailing dimension of 3")
    return rgb[..., 0] * 0.299 + rgb[..., 1] * 0.587 + rgb[..., 2] * 0.114


# --------------------------------------------------------------------------
# Cost model
# --------------------------------------------------------------------------

def color_map_flops(n_pixels: int) -> float:
    """FLOPs of the colour mapping: a 3x3 mix plus offsets per pixel."""
    return float(n_pixels) * (2 * 9 + 6 + 4)


__all__ = [
    "OPPONENCY_MATRIX",
    "component_statistics",
    "stretch_components",
    "color_map",
    "composite_from_block",
    "luminance",
    "color_map_flops",
]
