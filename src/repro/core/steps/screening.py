"""Steps 1-2: spectral-angle screening and unique-set merging.

The screening pass reduces the full set of pixel vectors to a small *unique
set*: a subset in which no two members are within ``angle_threshold`` radians
of each other (spectral angle = arccos of the normalised dot product, the
metric of Kruse et al.'s Spectral Image Processing System cited by the
paper).  Because the statistics of the PCT are subsequently computed over the
unique set rather than the raw image, a rare target signature (a vehicle)
carries the same weight as the signature of the dominant background (trees) --
which is exactly the property the paper highlights.

The implementation is a greedy cover: a pixel joins the unique set only if
its angle to every current member exceeds the threshold.  To keep the pass
vectorised, candidate pixels are processed in chunks; each chunk's angles to
the current unique set are computed as one matrix product, and only the small
set of survivors is resolved with an inner (short) loop.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: Numerical floor used when normalising pixel vectors; prevents division by
#: zero for dead detector pixels.
_NORM_FLOOR = 1e-12


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` with every row scaled to unit Euclidean norm."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, _NORM_FLOOR)


def spectral_angles(candidates: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Pairwise spectral angles (radians) between two sets of pixel vectors.

    Parameters
    ----------
    candidates:
        ``(m, bands)`` array.
    references:
        ``(u, bands)`` array.

    Returns
    -------
    ndarray
        ``(m, u)`` matrix of angles; this is the paper's
        ``alpha(i, j) = arccos(x . y / (|x||y|))`` evaluated for all pairs.
    """
    cand = normalize_rows(candidates)
    ref = normalize_rows(references)
    cos = np.clip(cand @ ref.T, -1.0, 1.0)
    return np.arccos(cos)


def screen_unique_set(pixels: np.ndarray, angle_threshold: float, *,
                      max_unique: int | None = None, sample_stride: int = 1,
                      chunk_size: int = 2048) -> np.ndarray:
    """Greedy spectral screening of a ``(pixels, bands)`` matrix (step 1).

    Parameters
    ----------
    pixels:
        Pixel-vector matrix of one image partition.
    angle_threshold:
        Minimum angle (radians) a candidate must subtend with *every* current
        unique-set member to be admitted.
    max_unique:
        Optional cap on the unique-set size (safety valve for noisy data).
    sample_stride:
        Optional spatial sub-sampling of the candidates.
    chunk_size:
        Number of candidates examined per vectorised block.

    Returns
    -------
    ndarray
        ``(unique, bands)`` float64 array of unique pixel vectors.
    """
    pixels = np.asarray(pixels, dtype=np.float64)
    if pixels.ndim != 2:
        raise ValueError(f"pixels must be 2-D (pixels, bands); got shape {pixels.shape}")
    if not 0.0 < angle_threshold < np.pi:
        raise ValueError("angle_threshold must be in (0, pi)")
    if sample_stride > 1:
        pixels = pixels[::sample_stride]
    if pixels.shape[0] == 0:
        return np.empty((0, pixels.shape[1]), dtype=np.float64)

    unique: List[np.ndarray] = [pixels[0]]
    for start in range(1, pixels.shape[0], chunk_size):
        if max_unique is not None and len(unique) >= max_unique:
            break
        chunk = pixels[start:start + chunk_size]
        reference = np.vstack(unique)
        angles = spectral_angles(chunk, reference)
        min_angle = angles.min(axis=1)
        survivors = chunk[min_angle > angle_threshold]
        # Survivors may still be mutually similar: resolve them greedily.
        for row in survivors:
            if max_unique is not None and len(unique) >= max_unique:
                break
            recent = np.vstack(unique[-256:])
            if spectral_angles(row[None, :], recent).min() > angle_threshold:
                # Also verify against the older members (rarely reached).
                if len(unique) <= 256 or \
                        spectral_angles(row[None, :], np.vstack(unique)).min() > angle_threshold:
                    unique.append(row)
    return np.vstack(unique)


def merge_unique_sets(unique_sets: Sequence[np.ndarray], angle_threshold: float, *,
                      max_unique: int | None = None, rescreen: bool = False) -> np.ndarray:
    """Merge per-partition unique sets into a single one (step 2).

    The paper only states that the per-worker sets are "sent back to the
    manager and combined"; two combination strategies are provided:

    * ``rescreen=False`` (default): plain concatenation.  This is O(K) and is
      what keeps step 2 negligible next to the eigen-decomposition, matching
      the paper's observation that step 6 "dominates the sequential time".
      Spectrally similar members contributed by different partitions are
      retained, which slightly re-weights materials that occur everywhere;
      the effect on the resulting composite is marginal because the
      covariance is still computed over screened (not raw) vectors.
    * ``rescreen=True``: re-screen the concatenation with the same threshold,
      collapsing cross-partition near-duplicates exactly as if the screening
      had been performed globally.  Cost grows as O(P * K^2) and is exposed
      for the ablation benchmarks.
    """
    non_empty = [np.asarray(s, dtype=np.float64) for s in unique_sets
                 if s is not None and len(s) > 0]
    if not non_empty:
        raise ValueError("cannot merge an empty collection of unique sets")
    bands = {s.shape[1] for s in non_empty}
    if len(bands) != 1:
        raise ValueError(f"unique sets disagree on band count: {sorted(bands)}")
    stacked = np.vstack(non_empty)
    if not rescreen:
        if max_unique is not None and stacked.shape[0] > max_unique:
            stacked = stacked[:max_unique]
        return stacked
    return screen_unique_set(stacked, angle_threshold, max_unique=max_unique)


# --------------------------------------------------------------------------
# Cost model
# --------------------------------------------------------------------------

def screening_flops(n_pixels: int, n_unique: int, bands: int) -> float:
    """FLOP estimate of screening ``n_pixels`` against a final unique set of
    ``n_unique`` members: each comparison is a dot product (2*bands FLOPs)
    plus normalisation amortised over the pass."""
    comparisons = float(n_pixels) * float(max(n_unique, 1))
    return comparisons * (2.0 * bands) + 3.0 * n_pixels * bands


def merge_flops(total_members: int, merged_unique: int, bands: int, *,
                rescreen: bool = False) -> float:
    """FLOP estimate of merging the per-partition unique sets.

    A plain union only copies ``total_members * bands`` values; the optional
    re-screening merge costs a full screening pass over the concatenation.
    """
    if rescreen:
        return screening_flops(total_members, merged_unique, bands)
    return float(total_members) * bands


__all__ = [
    "normalize_rows",
    "spectral_angles",
    "screen_unique_set",
    "merge_unique_sets",
    "screening_flops",
    "merge_flops",
]
