"""Steps 1-2: spectral-angle screening and unique-set merging.

The screening pass reduces the full set of pixel vectors to a small *unique
set*: a subset in which no two members are within ``angle_threshold`` radians
of each other (spectral angle = arccos of the normalised dot product, the
metric of Kruse et al.'s Spectral Image Processing System cited by the
paper).  Because the statistics of the PCT are subsequently computed over the
unique set rather than the raw image, a rare target signature (a vehicle)
carries the same weight as the signature of the dominant background (trees) --
which is exactly the property the paper highlights.

The implementation is a greedy cover: a pixel joins the unique set only if
its angle to every current member exceeds the threshold.  The hot kernel
(:func:`screen_unique_set`) keeps the pass vectorised and incremental:

* members live in a :class:`UniqueSetBuffer` -- a grow-by-doubling
  preallocated ``(capacity, bands)`` array of *already-normalised* vectors.
  Each admitted row is normalised exactly once; every candidate chunk takes
  one matrix product against a zero-copy view of the buffer, instead of
  re-stacking and re-normalising the entire unique set per chunk;
* the admission test runs in the **cosine domain**: a candidate survives when
  its largest cosine against the members is below an arccos-calibrated
  ``cos(angle_threshold)`` (see ``_cosine_admission_threshold``).  ``arccos``
  is monotone decreasing, so the decision -- and therefore the unique set --
  is the same as thresholding the angles, without evaluating a
  transcendental over the ``(chunk, unique)`` matrix.  The cosines
  themselves are produced by exactly the reference arithmetic (normalise
  the chunk, one GEMM against the unit members), so the comparison sees the
  same bits the seed kernel's ``arccos`` saw;
* chunk survivors that may still be mutually similar are resolved against one
  survivor-by-survivor cosine matrix (a single small GEMM walked in row
  order), not a per-row Python loop of repeated ``vstack``/GEMM calls.

:func:`screen_unique_set_reference` retains the seed implementation verbatim.
It is the ground truth the equivalence property tests and
``benchmarks/bench_screening_kernel.py`` compare the incremental kernel
against: both make the same greedy decisions, so their unique sets (and
every composite derived from them) are bit-identical under the default
float64 compute dtype -- asserted across random scenes, thresholds,
chunkings, strides and caps, and re-checked by the benchmark before any
timing is trusted.  The one theoretical exception is a candidate whose
cosine to a member lands within one rounding unit (~1e-16) of the
threshold: the seed kernel evaluates that cosine twice in different BLAS
call shapes (chunk matrix, then per-row recheck) and may see two
roundings, so no single-evaluation kernel can match it on such inputs.
No finite-precision scene sits on that boundary by accident.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: Numerical floor used when normalising pixel vectors; prevents division by
#: zero for dead detector pixels.
_NORM_FLOOR = 1e-12


def normalize_rows(matrix: np.ndarray, *, dtype=np.float64) -> np.ndarray:
    """Return ``matrix`` with every row scaled to unit Euclidean norm.

    ``dtype`` selects the arithmetic precision (the compute-dtype policy of
    the fast screening mode); the default float64 matches the seed kernel
    bit for bit.
    """
    matrix = np.asarray(matrix, dtype=dtype)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, matrix.dtype.type(_NORM_FLOOR))


def spectral_angles(candidates: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Pairwise spectral angles (radians) between two sets of pixel vectors.

    Parameters
    ----------
    candidates:
        ``(m, bands)`` array.
    references:
        ``(u, bands)`` array.

    Returns
    -------
    ndarray
        ``(m, u)`` matrix of angles; this is the paper's
        ``alpha(i, j) = arccos(x . y / (|x||y|))`` evaluated for all pairs.
    """
    cand = normalize_rows(candidates)
    ref = normalize_rows(references)
    cos = np.clip(cand @ ref.T, -1.0, 1.0)
    return np.arccos(cos)


class UniqueSetBuffer:
    """Grow-by-doubling store of already-normalised unique-set members.

    The buffer owns a preallocated ``(capacity, bands)`` array; admitted
    members are written in place and read back through :attr:`view` -- a
    zero-copy slice -- so the screening loop never re-stacks or re-normalises
    the unique set.  Doubling keeps amortised admission cost O(bands).
    """

    def __init__(self, bands: int, *, capacity: int = 256,
                 dtype=np.float64) -> None:
        if bands < 1:
            raise ValueError("bands must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._data = np.empty((capacity, bands), dtype=dtype)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return self._data.shape[0]

    @property
    def view(self) -> np.ndarray:
        """Zero-copy ``(members, bands)`` view of the admitted rows."""
        return self._data[: self._count]

    def append(self, rows: np.ndarray) -> None:
        """Admit ``rows`` (already normalised, ``(k, bands)``)."""
        rows = np.atleast_2d(rows)
        need = self._count + rows.shape[0]
        if need > self._data.shape[0]:
            capacity = self._data.shape[0]
            while capacity < need:
                capacity *= 2
            grown = np.empty((capacity, self._data.shape[1]),
                             dtype=self._data.dtype)
            grown[: self._count] = self._data[: self._count]
            self._data = grown
        self._data[self._count: need] = rows
        self._count = need


def _cosine_admission_threshold(angle_threshold: float) -> float:
    """The exclusive cosine bound equivalent to the arccos-domain decision.

    Returns the smallest float ``T`` in ``[-1, 1]`` with ``arccos(T) <=
    angle_threshold``, so that for every representable cosine ``c`` in
    ``[-1, 1]``::

        arccos(c) > angle_threshold  <=>  c < T

    Simply using ``cos(angle_threshold)`` is *almost* right but can disagree
    with the seed kernel on exact-boundary cosines because ``cos`` and
    ``arccos`` round independently (e.g. ``cos(pi/2)`` is ``6.1e-17``, not
    the ``0.0`` whose ``arccos`` equals the float ``pi/2``).  A float
    bisection calibrates the constant against ``arccos`` itself -- ~60
    iterations, paid once per screening pass.  (A nextafter walk would not
    do: ``arccos`` is constant over ~1e16 consecutive floats around 0.)
    """
    if np.arccos(-1.0) <= angle_threshold:  # pragma: no cover - thr >= pi
        return -1.0
    low, high = -1.0, 1.0  # predicate arccos(c) <= thr: false at low, true at high
    while True:
        mid = (low + high) / 2.0
        if not low < mid < high:
            return high
        if np.arccos(mid) <= angle_threshold:
            high = mid
        else:
            low = mid


def _validate_screening_args(pixels: np.ndarray, angle_threshold: float,
                             sample_stride: int, chunk_size: int) -> None:
    if pixels.ndim != 2:
        raise ValueError(f"pixels must be 2-D (pixels, bands); got shape {pixels.shape}")
    if not 0.0 < angle_threshold < np.pi:
        raise ValueError("angle_threshold must be in (0, pi)")
    if sample_stride < 1:
        raise ValueError(f"sample_stride must be >= 1, got {sample_stride}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")


def screen_unique_set(pixels: np.ndarray, angle_threshold: float, *,
                      max_unique: int | None = None, sample_stride: int = 1,
                      chunk_size: int = 2048,
                      compute_dtype=np.float64,
                      compute: str = "numpy") -> np.ndarray:
    """Greedy spectral screening of a ``(pixels, bands)`` matrix (step 1).

    Parameters
    ----------
    pixels:
        Pixel-vector matrix of one image partition.
    angle_threshold:
        Minimum angle (radians) a candidate must subtend with *every* current
        unique-set member to be admitted.
    max_unique:
        Optional cap on the unique-set size (safety valve for noisy data).
    sample_stride:
        Optional spatial sub-sampling of the candidates (must be >= 1).
    chunk_size:
        Number of candidates examined per vectorised block (must be >= 1).
    compute_dtype:
        Arithmetic precision of the admission test (float64 default, or
        float32 for the documented fast mode).  The *returned* unique set is
        always the raw float64 pixel vectors; only the normalisation and
        cosine comparisons run in the reduced precision, so float32 may make
        marginally different admission decisions near the threshold.
    compute:
        Compute backend executing the survivor-elimination inner pass
        (:func:`repro.core.kernels.compute_names` lists the registered
        tiers).  The decisions -- and therefore the unique set -- are the
        same on every backend.

    Returns
    -------
    ndarray
        ``(unique, bands)`` float64 array of unique pixel vectors.
    """
    # Imported lazily: the kernels package imports this module's siblings.
    from ..kernels import resolve_compute

    kernel = resolve_compute(compute)
    pixels = np.asarray(pixels, dtype=np.float64)
    _validate_screening_args(pixels, angle_threshold, sample_stride, chunk_size)
    if sample_stride > 1:
        pixels = pixels[::sample_stride]
    if pixels.shape[0] == 0:
        return np.empty((0, pixels.shape[1]), dtype=np.float64)

    dtype = np.dtype(compute_dtype)
    # The admission test compares cosines against an arccos-calibrated
    # cos(threshold): arccos is monotone decreasing on [-1, 1], so "every
    # angle > threshold" is exactly "every cosine < T" -- no arccos over the
    # hot matrix (see _cosine_admission_threshold for the boundary
    # calibration).  The cosines come from the reference arithmetic --
    # normalise the chunk, multiply against the unit members -- so the
    # cosine-domain comparison sees bit-for-bit the values whose arccos the
    # seed kernel thresholded.
    cos_threshold = dtype.type(_cosine_admission_threshold(angle_threshold))

    buffer = UniqueSetBuffer(pixels.shape[1], dtype=dtype)
    buffer.append(normalize_rows(pixels[:1], dtype=dtype))
    indices: List[int] = [0]

    for start in range(1, pixels.shape[0], chunk_size):
        if max_unique is not None and len(buffer) >= max_unique:
            break
        chunk = normalize_rows(pixels[start:start + chunk_size], dtype=dtype)
        cosines = chunk @ buffer.view.T
        survivor_rows = np.nonzero(cosines.max(axis=1) < cos_threshold)[0]
        if survivor_rows.size == 0:
            continue
        survivors = chunk[survivor_rows]
        # Survivors may still be mutually similar: resolve them greedily.
        # The first survivor (lowest pixel index) is always admitted; every
        # remaining survivor within the threshold of it is eliminated, and
        # the procedure repeats on the shrinking remainder.  The inner pass
        # is a registered compute kernel (the reference implementation is
        # :meth:`~repro.core.kernels.numpy_backend.NumpyBackend.
        # eliminate_survivors`); it makes the same decisions as the
        # sequential greedy pass on every backend.
        room = (None if max_unique is None else max_unique - len(buffer))
        admitted, admitted_rows = kernel.eliminate_survivors(
            survivors, survivor_rows, cos_threshold, room=room)
        if admitted.shape[0]:
            buffer.append(admitted)
            indices.extend(start + int(row) for row in admitted_rows)
    return pixels[np.asarray(indices, dtype=np.intp)]


def screen_unique_set_reference(pixels: np.ndarray, angle_threshold: float, *,
                                max_unique: int | None = None,
                                sample_stride: int = 1,
                                chunk_size: int = 2048) -> np.ndarray:
    """The seed screening kernel, retained verbatim as ground truth.

    Re-``vstack``s and re-normalises the whole unique set on every chunk and
    resolves chunk survivors with a per-row Python loop.  The equivalence
    property tests assert :func:`screen_unique_set` reproduces its output
    bit for bit (see the module docstring for the one-ulp boundary caveat),
    and ``benchmarks/bench_screening_kernel.py`` measures the incremental
    kernel's speed-up against it.
    """
    pixels = np.asarray(pixels, dtype=np.float64)
    _validate_screening_args(pixels, angle_threshold, sample_stride, chunk_size)
    if sample_stride > 1:
        pixels = pixels[::sample_stride]
    if pixels.shape[0] == 0:
        return np.empty((0, pixels.shape[1]), dtype=np.float64)

    unique: List[np.ndarray] = [pixels[0]]
    for start in range(1, pixels.shape[0], chunk_size):
        if max_unique is not None and len(unique) >= max_unique:
            break
        chunk = pixels[start:start + chunk_size]
        reference = np.vstack(unique)
        angles = spectral_angles(chunk, reference)
        min_angle = angles.min(axis=1)
        survivors = chunk[min_angle > angle_threshold]
        # Survivors may still be mutually similar: resolve them greedily.
        for row in survivors:
            if max_unique is not None and len(unique) >= max_unique:
                break
            recent = np.vstack(unique[-256:])
            if spectral_angles(row[None, :], recent).min() > angle_threshold:
                # Also verify against the older members (rarely reached).
                if len(unique) <= 256 or \
                        spectral_angles(row[None, :], np.vstack(unique)).min() > angle_threshold:
                    unique.append(row)
    return np.vstack(unique)


def merge_unique_sets(unique_sets: Sequence[np.ndarray], angle_threshold: float, *,
                      max_unique: int | None = None, rescreen: bool = False,
                      compute_dtype=np.float64,
                      compute: str = "numpy") -> np.ndarray:
    """Merge per-partition unique sets into a single one (step 2).

    The paper only states that the per-worker sets are "sent back to the
    manager and combined"; two combination strategies are provided:

    * ``rescreen=False`` (default): plain concatenation.  This is O(K) and is
      what keeps step 2 negligible next to the eigen-decomposition, matching
      the paper's observation that step 6 "dominates the sequential time".
      Spectrally similar members contributed by different partitions are
      retained, which slightly re-weights materials that occur everywhere;
      the effect on the resulting composite is marginal because the
      covariance is still computed over screened (not raw) vectors.
    * ``rescreen=True``: re-screen the concatenation with the same threshold,
      collapsing cross-partition near-duplicates exactly as if the screening
      had been performed globally.  Cost grows as O(P * K^2) and is exposed
      for the ablation benchmarks.  ``compute_dtype`` selects the re-screen
      arithmetic (the compute-dtype policy applies to this screening pass
      like any other); the plain union never does arithmetic.
    """
    non_empty = [np.asarray(s, dtype=np.float64) for s in unique_sets
                 if s is not None and len(s) > 0]
    if not non_empty:
        raise ValueError("cannot merge an empty collection of unique sets")
    bands = {s.shape[1] for s in non_empty}
    if len(bands) != 1:
        raise ValueError(f"unique sets disagree on band count: {sorted(bands)}")
    stacked = np.vstack(non_empty)
    if not rescreen:
        if max_unique is not None and stacked.shape[0] > max_unique:
            stacked = stacked[:max_unique]
        return stacked
    return screen_unique_set(stacked, angle_threshold, max_unique=max_unique,
                             compute_dtype=compute_dtype, compute=compute)


# --------------------------------------------------------------------------
# Cost model
# --------------------------------------------------------------------------

def screening_flops(n_pixels: int, n_unique: int, bands: int) -> float:
    """FLOP estimate of screening ``n_pixels`` against a final unique set of
    ``n_unique`` members: each comparison is a dot product (2*bands FLOPs)
    plus normalisation amortised over the pass."""
    comparisons = float(n_pixels) * float(max(n_unique, 1))
    return comparisons * (2.0 * bands) + 3.0 * n_pixels * bands


def merge_flops(total_members: int, merged_unique: int, bands: int, *,
                rescreen: bool = False) -> float:
    """FLOP estimate of merging the per-partition unique sets.

    A plain union only copies ``total_members * bands`` values; the optional
    re-screening merge costs a full screening pass over the concatenation.
    """
    if rescreen:
        return screening_flops(total_members, merged_unique, bands)
    return float(total_members) * bands


__all__ = [
    "UniqueSetBuffer",
    "normalize_rows",
    "spectral_angles",
    "screen_unique_set",
    "screen_unique_set_reference",
    "merge_unique_sets",
    "screening_flops",
    "merge_flops",
]
