"""Steps 3-5: mean vector, covariance sums and covariance matrix.

The statistics of the principal component transform are computed over the
*unique set* produced by spectral screening (not over the raw image), which
is what prevents numerically dominant materials from monopolising the leading
components.

Step 4 is the distributed part: the unique set is divided into P parts and
each worker accumulates the covariance sum of its part around the global mean
vector.  Step 5 (combining the sums into the covariance matrix) is sequential
at the manager because its cost depends only on the number of workers and the
band count, not the image size -- the same argument the paper makes.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def mean_vector(pixels: np.ndarray) -> np.ndarray:
    """Step 3: per-band mean of a ``(pixels, bands)`` matrix.

    Accumulation is performed in float64 regardless of the input dtype so the
    covariance computed from it is well conditioned even for 16-bit data.
    """
    pixels = np.asarray(pixels)
    if pixels.ndim != 2:
        raise ValueError(f"pixels must be 2-D (pixels, bands); got shape {pixels.shape}")
    if pixels.shape[0] == 0:
        raise ValueError("cannot compute the mean of zero pixel vectors")
    return pixels.mean(axis=0, dtype=np.float64)


def covariance_sum(pixels: np.ndarray, mean: np.ndarray) -> np.ndarray:
    """Step 4: covariance *sum* of one partition around the global mean.

    Implements ``sum_i (I_i - m)(I_i - m)^T`` as a single symmetric rank-k
    update (one GEMM), which is algebraically identical to the paper's
    per-pixel ``I I^T - m m^T`` accumulation but runs at BLAS speed.
    """
    pixels = np.asarray(pixels, dtype=np.float64)
    mean = np.asarray(mean, dtype=np.float64)
    if pixels.ndim != 2:
        raise ValueError("pixels must be 2-D (pixels, bands)")
    if mean.shape != (pixels.shape[1],):
        raise ValueError(f"mean of shape {mean.shape} does not match {pixels.shape[1]} bands")
    centred = pixels - mean[None, :]
    return centred.T @ centred


def covariance_matrix(partial_sums: Sequence[np.ndarray], total_pixels: int) -> np.ndarray:
    """Step 5: combine per-partition covariance sums into the covariance matrix.

    Parameters
    ----------
    partial_sums:
        The ``(bands, bands)`` sums returned by :func:`covariance_sum` for
        each partition.
    total_pixels:
        Total number of pixel vectors across all partitions (K in the paper).

    Notes
    -----
    The paper describes this step as "the average of all the matrices
    calculated in step 4"; dividing by the number of pixel vectors (rather
    than the number of partitions) yields the sample covariance.  The two
    normalisations differ only by a positive scalar, so the eigenvectors --
    and therefore the transform -- are identical; we use the statistically
    conventional one.
    """
    sums = [np.asarray(s, dtype=np.float64) for s in partial_sums]
    if not sums:
        raise ValueError("need at least one partial covariance sum")
    shape = sums[0].shape
    if any(s.shape != shape for s in sums):
        raise ValueError("partial covariance sums disagree on shape")
    if total_pixels <= 0:
        raise ValueError("total_pixels must be positive")
    total = np.zeros(shape, dtype=np.float64)
    for s in sums:
        total += s
    cov = total / float(total_pixels)
    # Enforce exact symmetry; eigh assumes it and accumulated rounding can
    # introduce asymmetries of order 1e-12 that needlessly perturb results.
    return 0.5 * (cov + cov.T)


def partition_pixel_matrix(pixels: np.ndarray, parts: int) -> List[np.ndarray]:
    """Split a pixel matrix into ``parts`` nearly equal row blocks (step 4's
    distribution of the unique set).

    The blocks are *views* into ``pixels`` -- contiguous row ranges need no
    copy, so fanning the unique set out to the covariance workers costs
    O(parts) bookkeeping rather than an extra O(unique * bands) copy per
    partitioning.  (Blocks shipped to worker processes are serialised from
    the view directly; in-process consumers only read them.)
    """
    pixels = np.asarray(pixels)
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if pixels.shape[0] < parts:
        parts = max(1, pixels.shape[0])
    return list(np.array_split(pixels, parts, axis=0))


# --------------------------------------------------------------------------
# Cost model
# --------------------------------------------------------------------------

def mean_flops(n_pixels: int, bands: int) -> float:
    """FLOPs of the mean vector: one add per element plus the final divide."""
    return float(n_pixels) * bands + bands


def covariance_sum_flops(n_pixels: int, bands: int) -> float:
    """FLOPs of a partition's covariance sum: the rank-k update dominates."""
    return 2.0 * float(n_pixels) * bands * bands + float(n_pixels) * bands


def covariance_combine_flops(parts: int, bands: int) -> float:
    """FLOPs of combining ``parts`` sums and normalising."""
    return float(parts) * bands * bands + bands * bands


__all__ = [
    "mean_vector",
    "covariance_sum",
    "covariance_matrix",
    "partition_pixel_matrix",
    "mean_flops",
    "covariance_sum_flops",
    "covariance_combine_flops",
]
