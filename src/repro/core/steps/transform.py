"""Steps 6-7: transformation matrix and principal component projection.

Step 6 computes the eigenvectors of the covariance matrix, sorted by
decreasing eigenvalue, so that "the high spectral content is forced into the
front components".  Its cost is O(bands^3) but independent of image size,
which is why the paper keeps it sequential at the manager and why, at 210
bands, it does not dominate the run time (a claim the step-6 benchmark
checks).

Step 7 projects every pixel vector of the *original* cube onto the leading
eigenvectors; it is embarrassingly parallel over pixels and is distributed
over the workers together with the colour mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class PCTBasis:
    """The principal component transform derived from the screened statistics.

    Attributes
    ----------
    eigenvalues:
        All eigenvalues of the covariance matrix, descending.
    components:
        ``(n_components, bands)`` matrix A whose rows are the leading
        eigenvectors; ``project`` computes ``A (x - mean)``.
    mean:
        The mean vector the data is centred on before projection.
    """

    eigenvalues: np.ndarray
    components: np.ndarray
    mean: np.ndarray

    @property
    def n_components(self) -> int:
        return self.components.shape[0]

    @property
    def bands(self) -> int:
        return self.components.shape[1]

    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance captured by each retained component."""
        total = float(np.sum(self.eigenvalues))
        if total <= 0:
            return np.zeros(self.n_components)
        return np.asarray(self.eigenvalues[: self.n_components]) / total


def transformation_matrix(covariance: np.ndarray, mean: np.ndarray,
                          n_components: Optional[int] = 3) -> PCTBasis:
    """Step 6: eigen-decompose the covariance and build the transform basis.

    Parameters
    ----------
    covariance:
        ``(bands, bands)`` symmetric covariance matrix from step 5.
    mean:
        ``(bands,)`` mean vector from step 3.
    n_components:
        Number of leading eigenvectors to retain; ``None`` keeps all of them.
        The colour mapping needs only the first three, and retaining exactly
        three also reduces the projection cost of step 7 by a factor of
        ``bands / 3``.

    Notes
    -----
    Eigenvector signs are fixed so that the largest-magnitude entry of each
    eigenvector is positive.  ``numpy.linalg.eigh`` returns an arbitrary sign
    per eigenvector; without the convention, bit-identical reproducibility of
    the colour composite across runs and backends could not be asserted.
    """
    covariance = np.asarray(covariance, dtype=np.float64)
    mean = np.asarray(mean, dtype=np.float64)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise ValueError(f"covariance must be square; got {covariance.shape}")
    if mean.shape != (covariance.shape[0],):
        raise ValueError("mean length does not match covariance dimension")
    if not np.allclose(covariance, covariance.T, atol=1e-8):
        raise ValueError("covariance matrix must be symmetric")
    bands = covariance.shape[0]
    if n_components is None:
        n_components = bands
    if not 1 <= n_components <= bands:
        raise ValueError(f"n_components must be in [1, {bands}]")

    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]

    # Deterministic sign convention.
    flip = np.sign(eigenvectors[np.argmax(np.abs(eigenvectors), axis=0),
                                np.arange(bands)])
    flip[flip == 0] = 1.0
    eigenvectors = eigenvectors * flip[None, :]

    components = eigenvectors[:, :n_components].T.copy()
    return PCTBasis(eigenvalues=eigenvalues, components=components, mean=mean)


def project(pixels: np.ndarray, basis: PCTBasis, *,
            compute_dtype=np.float64,
            out: Optional[np.ndarray] = None) -> np.ndarray:
    """Step 7: transform pixel vectors into principal component space.

    ``Cs_ij = A (Is_ij - m)`` for every pixel vector, vectorised as a single
    matrix product.  Returns a ``(pixels, n_components)`` float64 array.

    ``compute_dtype`` selects the precision of the centring and the matrix
    product (the fast mode runs them in float32 and widens the result back);
    the float64 default is the seed arithmetic, bit for bit.

    ``out`` optionally receives the result: a preallocated float64
    ``(pixels, n_components)`` array the matrix product writes into directly
    (the zero-copy tile path points it at a shared-memory view).  The same
    BLAS call runs on the same operands, so the bytes are identical to the
    allocating path -- ``out`` only removes the per-call output allocation.
    """
    source = np.asarray(pixels)
    if source.ndim != 2 or source.shape[1] != basis.bands:
        raise ValueError(
            f"pixels of shape {source.shape} do not match basis with {basis.bands} bands")
    if out is not None and (out.shape != (source.shape[0], basis.n_components)
                            or out.dtype != np.float64):
        raise ValueError(
            f"out must be float64 of shape {(source.shape[0], basis.n_components)}; "
            f"got {out.dtype} {out.shape}")
    dtype = np.dtype(compute_dtype)
    if dtype == np.float64:
        centred = np.asarray(source, dtype=np.float64) - basis.mean[None, :]
        if out is not None:
            return np.matmul(centred, basis.components.T, out=out)
        return centred @ basis.components.T
    if source.dtype == dtype:
        # Input already in the compute dtype: skip the float64 round-trip
        # (exact -- float64 represents every float32 value, so converting
        # up and back returns the same bits the input held).
        narrow_pixels = source
    else:
        narrow_pixels = np.asarray(source, dtype=np.float64).astype(dtype, copy=False)
    centred = narrow_pixels - basis.mean.astype(dtype, copy=False)[None, :]
    narrow = centred @ basis.components.astype(dtype, copy=False).T
    if out is not None:
        np.copyto(out, narrow)
        return out
    return narrow.astype(np.float64)


def project_cube_block(block: np.ndarray, basis: PCTBasis, *,
                       compute_dtype=np.float64) -> np.ndarray:
    """Project a ``(bands, rows, cols)`` sub-cube; returns ``(rows, cols, n_components)``."""
    block = np.asarray(block)
    if block.ndim != 3 or block.shape[0] != basis.bands:
        raise ValueError(f"block of shape {block.shape} does not match basis bands {basis.bands}")
    bands, rows, cols = block.shape
    matrix = block.reshape(bands, -1).T
    transformed = project(matrix, basis, compute_dtype=compute_dtype)
    return transformed.reshape(rows, cols, basis.n_components)


# --------------------------------------------------------------------------
# Cost model
# --------------------------------------------------------------------------

#: Constant in front of the n^3 eigen-solve cost.  The raw operation count of
#: tridiagonalisation plus QL iteration is closer to 9n^3, but dense
#: eigen-solvers run much nearer to a workstation's peak rate than the scalar
#: screening code the single effective node FLOP rate is calibrated to, so
#: the constant is reduced to keep the *time* charged for step 6 realistic
#: (well under a handful of seconds at 210 bands -- the paper notes this step
#: does not dominate the overall run time).
EIGH_FLOP_CONSTANT = 2.0


def eigendecomposition_flops(bands: int) -> float:
    """FLOP estimate of the symmetric eigen-decomposition (step 6)."""
    return EIGH_FLOP_CONSTANT * float(bands) ** 3


def projection_flops(n_pixels: int, bands: int, n_components: int) -> float:
    """FLOP estimate of projecting ``n_pixels`` vectors (step 7)."""
    return 2.0 * float(n_pixels) * bands * n_components + float(n_pixels) * bands


__all__ = [
    "PCTBasis",
    "transformation_matrix",
    "project",
    "project_cube_block",
    "eigendecomposition_flops",
    "projection_flops",
    "EIGH_FLOP_CONSTANT",
]
