"""Streaming tile-pipelined fusion: the ``pipeline`` engine.

Every other engine materialises the whole cube and runs the eight algorithm
steps as a barrier-synchronised batch, so peak memory is O(cube) per request
and a queue of requests executes strictly serially.  The paper's algorithm
is, however, embarrassingly parallel across row blocks everywhere except two
small global reductions, which suggests a *staged dataflow* instead:

.. code-block:: text

    tiles ──▶ screen ──▶ [merge + mean]  ──▶ covariance ──▶ [combine + eig
              (par)       (barrier)           partials        + stretch]
                                              (par)           (barrier)
                                                                 │
              reassemble ◀── project + colour-map (par) ◀────────┘

Each parallel stage is a set of pure *stage tasks* executed on borrowed
:class:`~repro.scp.pool.ProcessPool` slots through a
:class:`~repro.scp.stages.PoolStageExecutor` (or host threads for the
``local``/``sim`` backend specs).  The two barriers are tiny: merging unique
sets, a ``bands x bands`` eigen-decomposition and the colour-stretch
statistics -- all independent of image size.  Because the executor bounds
the number of tasks in flight, several independent fusions can stream
through one executor concurrently (that is what
:meth:`repro.api.session.FusionSession.fuse_stream` does) with bounded
memory and no cross-talk.

Bit-identity
------------
The pipeline engine produces *bit-identical* composites to the sequential
reference for the same :class:`~repro.api.request.FusionRequest`:

* screening uses the exact sub-cube decomposition of the request's
  partition configuration (``config.partition.effective_subcubes``) and the
  per-block unique sets are merged in block order -- the same greedy pass,
  in the same order, as :class:`~repro.core.pipeline.SpectralScreeningPCT`;
* covariance partials follow :func:`~repro.core.steps.statistics.
  partition_pixel_matrix`'s split of the merged unique set and are combined
  in partition order (float summation order preserved);
* the eigen-decomposition barrier pins one global basis and one set of
  colour-stretch constants, after which projection and colour mapping are
  per-pixel operations -- any row tiling of step 7/8 reassembles to the
  untiled result exactly.  ``tile_rows`` therefore only tunes streaming
  granularity, never the output, which is what the tiling property tests
  assert for arbitrary cube shapes and tilings.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import FIRST_COMPLETED, wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.metrics import RunMetrics
from ..config import FusionConfig, ScreeningConfig
from ..data.cube import CubeError, HyperspectralCube
from ..data.shared import (OutputPool, SharedComposite, SharedCompositeHandle,
                           SharedCube, output_tile_views)
from ..scp.pool import PooledProcessBackend, ProcessPool
from ..scp.registry import BackendSpec
from ..scp.runtime import Backend
from ..scp.stages import (PoolStageExecutor, ThreadStageExecutor,
                          ThroughputEWMA, TransportStageExecutor)
from ..scp.transport import SocketTransport
from .kernels import kernel_covariance_sum, kernel_project_and_map
from .partition import (SubcubeSpec, decompose, extract_subcube,
                        reassemble_composite, subcube_pixel_matrix)
from .pipeline import FusionResult, SpectralScreeningPCT
from .profiling import stage_timings_from_result
from .steps.colormap import component_statistics
from .steps.screening import merge_unique_sets, screen_unique_set
from .steps.statistics import (covariance_matrix, mean_vector,
                               partition_pixel_matrix)
from .steps.transform import PCTBasis, project, transformation_matrix

#: Backend spec names executed on pool processes, node-agent processes
#: reached over TCP, and host threads respectively.
_PROCESS_SPECS = ("process",)
_SOCKET_SPECS = ("socket",)
_THREAD_SPECS = ("local", "sim")


# ---------------------------------------------------------------------------
# Tile planning
# ---------------------------------------------------------------------------

def plan_tiles(rows: int, tile_rows: int) -> List[SubcubeSpec]:
    """Split ``rows`` scene rows into contiguous tiles of ~``tile_rows`` rows.

    Delegates to :func:`~repro.core.partition.decompose`, so tiles inherit
    its invariants: contiguous, non-overlapping, exhaustive, sizes differing
    by at most one row.
    """
    if rows < 1:
        raise ValueError("rows must be >= 1")
    if tile_rows < 1:
        raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
    count = min(rows, max(1, math.ceil(rows / tile_rows)))
    return decompose(rows, count)


def default_tile_rows(rows: int, workers: int) -> int:
    """Default streaming granularity: ~2 tiles per worker, at least one row.

    Mirrors the paper's Figure-5 observation that 2-3x more work units than
    workers overlaps communication with computation without drowning in
    per-task overhead.
    """
    return max(1, math.ceil(rows / max(2 * workers, 1)))


class AdaptiveTileScheduler:
    """Sizes projection tiles from measured stage throughput.

    The paper balances load across heterogeneous workers by over-decomposing
    and letting fast machines claim more work units; a *fixed* ``tile_rows``
    reproduces that only when the operator guesses the granularity well.
    This scheduler removes the guess: it tracks an EWMA of the projection
    stage's measured rows/second (:class:`~repro.scp.stages.ThroughputEWMA`)
    and sizes each *next* tile to take roughly ``target_seconds`` at the
    observed rate, capped by a guided-self-scheduling taper
    (``remaining / workers``) so the tail of the row range degenerates into
    small tiles any idle slot can grab -- the load-balancing behaviour of
    the paper's Figure 5 without a granularity knob.

    Scheduling only *repartitions rows of the projection stage*, which the
    tiling property tests prove output-invariant (the eigen-decomposition
    barrier pins one global basis), so adaptivity can never change the
    composite -- it is a pure throughput control.
    """

    def __init__(self, rows: int, workers: int, *, initial_tile_rows: int,
                 target_seconds: float = 0.2, alpha: float = 0.4,
                 min_tile_rows: int = 1) -> None:
        if rows < 1:
            raise ValueError("rows must be >= 1")
        if initial_tile_rows < 1 or min_tile_rows < 1:
            raise ValueError("tile sizes must be >= 1")
        if target_seconds <= 0:
            raise ValueError("target_seconds must be positive")
        self._rows = rows
        self._workers = max(workers, 1)
        self._initial = initial_tile_rows
        self._target_seconds = target_seconds
        self._min_tile_rows = min_tile_rows
        self._next_row = 0
        self._issued = 0
        self._throughput = ThroughputEWMA(alpha=alpha)

    @property
    def tiles_issued(self) -> int:
        return self._issued

    @property
    def throughput(self) -> ThroughputEWMA:
        return self._throughput

    def record(self, rows: int, seconds: float) -> None:
        """Feed one completed tile's measured rows/seconds back in."""
        self._throughput.record(rows, seconds)

    def next_tile(self) -> Optional[SubcubeSpec]:
        """The next tile to dispatch, or ``None`` when the rows are spent."""
        remaining = self._rows - self._next_row
        if remaining <= 0:
            return None
        rate = self._throughput.rate()
        if rate is None:
            size = self._initial  # probe tiles until a rate is observed
        else:
            size = int(rate * self._target_seconds)
        size = max(self._min_tile_rows, size)
        # Guided taper: never grab more than an even share of what is left,
        # so stragglers at the tail can be picked up by whichever slot is
        # free -- the heterogeneous-worker balance the paper relies on.
        size = min(size, max(1, math.ceil(remaining / self._workers)), remaining)
        spec = SubcubeSpec(task_id=self._issued, row_start=self._next_row,
                           row_stop=self._next_row + size)
        self._next_row += size
        self._issued += 1
        return spec


# ---------------------------------------------------------------------------
# Stage tasks (pure module-level functions: picklable, deterministic,
# safely re-runnable after a slot crash)
# ---------------------------------------------------------------------------

def screen_tile(cube: HyperspectralCube, spec: SubcubeSpec,
                screening: ScreeningConfig,
                compute_dtype: str = "float64",
                compute: str = "numpy") -> np.ndarray:
    """Stage 1 task: spectral screening of one sub-cube block."""
    block_pixels = subcube_pixel_matrix(extract_subcube(cube, spec))
    return screen_unique_set(block_pixels, screening.angle_threshold,
                             max_unique=screening.max_unique,
                             sample_stride=screening.sample_stride,
                             compute_dtype=compute_dtype, compute=compute)


def covariance_partial(part: np.ndarray, mean: np.ndarray,
                       compute: str = "numpy") -> np.ndarray:
    """Stage 2 task: covariance sum of one unique-set partition."""
    return kernel_covariance_sum(part, mean, compute=compute)


def project_tile(cube: HyperspectralCube, spec: SubcubeSpec, basis: PCTBasis,
                 n_components: int, normalize: bool, stretch_mean: np.ndarray,
                 stretch_std: np.ndarray, compute_dtype: str = "float64",
                 compute: str = "numpy"):
    """Stage 3 task: fused projection + colour mapping of one output tile."""
    return kernel_project_and_map(
        extract_subcube(cube, spec), basis, n_components=n_components,
        normalize=normalize, stretch_mean=stretch_mean,
        stretch_std=stretch_std, compute_dtype=compute_dtype, compute=compute)


def project_tile_into(cube: HyperspectralCube, spec: SubcubeSpec,
                      basis: PCTBasis, n_components: int, normalize: bool,
                      stretch_mean: np.ndarray, stretch_std: np.ndarray,
                      out: SharedCompositeHandle,
                      compute_dtype: str = "float64",
                      compute: str = "numpy") -> Tuple[int, int]:
    """Stage 3 task, zero-copy variant: write the tile into ``out`` directly.

    The kernel's ``out=`` path computes straight into the shared-memory
    output placement views (no tile-sized temporaries, nothing through the
    result spool) and only the row range is acknowledged back.  Safe under
    crash retry: tiles own disjoint row ranges and the computation is
    deterministic, so re-running a killed task rewrites the same bytes.
    """
    with output_tile_views(out, spec.row_start, spec.row_stop) as views:
        components_view, composite_view = views
        kernel_project_and_map(
            extract_subcube(cube, spec), basis,
            n_components=n_components, normalize=normalize,
            stretch_mean=stretch_mean, stretch_std=stretch_std,
            compute_dtype=compute_dtype, compute=compute,
            components_out=components_view, composite_out=composite_view)
    return spec.row_start, spec.row_stop


# ---------------------------------------------------------------------------
# The staged DAG driver
# ---------------------------------------------------------------------------

def _gather(futures: Sequence) -> List:
    """Await stage futures in submission order, surfacing the first error."""
    return [future.result() for future in futures]


def _drive_projection(submit_tile: Callable, rows: int, workers: int, *,
                      adaptive: bool, initial_tile_rows: int):
    """Dispatch the stage-3 tiles and collect their payloads in tile order.

    The fixed path plans every tile upfront (:func:`plan_tiles`); the
    adaptive path sizes each next tile from the
    :class:`AdaptiveTileScheduler`'s throughput EWMA as completions come
    back, keeping up to ``workers`` tiles in flight so the sizing decision
    is always made with the freshest measurement.
    """
    if not adaptive:
        tiles = plan_tiles(rows, initial_tile_rows)
        return tiles, _gather([submit_tile(spec) for spec in tiles])
    scheduler = AdaptiveTileScheduler(rows, workers,
                                      initial_tile_rows=initial_tile_rows)
    tiles: List[SubcubeSpec] = []
    payloads = {}
    inflight = {}
    durations = {}
    while True:
        while len(inflight) < max(workers, 1):
            spec = scheduler.next_tile()
            if spec is None:
                break
            tiles.append(spec)
            future = submit_tile(spec)
            # The clock starts after submit returns (its backpressure wait
            # is not task time) and stops in a done callback on the
            # resolving thread, so each tile gets its own duration rather
            # than a shared wait()-batch timestamp.
            started = time.perf_counter()
            future.add_done_callback(
                lambda f, tid=spec.task_id, t0=started:
                    durations.setdefault(tid, time.perf_counter() - t0))
            inflight[future] = spec
        if not inflight:
            break
        done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
        for future in done:
            spec = inflight.pop(future)
            payloads[spec.task_id] = future.result()  # surfaces stage errors
            elapsed = durations.get(spec.task_id)
            if elapsed is not None:
                scheduler.record(spec.rows, elapsed)
    return tiles, [payloads[index] for index in range(len(tiles))]


def _validate_row_coverage(acks: Sequence[Tuple[int, int]], rows: int) -> None:
    """Assert the acknowledged zero-copy writes tile the rows exactly once."""
    covered = np.zeros(rows, dtype=bool)
    for start, stop in acks:
        if covered[start:stop].any():
            raise ValueError(f"rows {start}:{stop} were written twice")
        covered[start:stop] = True
    if not covered.all():
        missing = int(np.count_nonzero(~covered))
        raise ValueError(f"output placement is missing {missing} rows")


def run_pipeline(cube: HyperspectralCube, config: FusionConfig, executor, *,
                 n_components: int = 3, full_projection: bool = True,
                 tile_rows: Optional[int] = None, adaptive_tiles: bool = False,
                 zero_copy: Optional[bool] = None,
                 output_pool: Optional[OutputPool] = None) -> FusionResult:
    """Drive one cube through the staged screen/statistics/transform DAG.

    ``executor`` is any stage executor (:class:`PoolStageExecutor` or
    :class:`ThreadStageExecutor`); several concurrent ``run_pipeline`` calls
    may share one executor, which is how independent cubes overlap.

    ``zero_copy`` selects the result transport of the projection stage:
    workers write tiles straight into a :class:`~repro.data.shared.
    SharedComposite` placement (``True``; the default on process-backed
    executors, where the alternative is pickling every tile through the
    spool) or return them as pickled blocks (``False``; the default on
    thread executors, which share the driver's address space anyway).
    ``adaptive_tiles`` switches the projection tiling from the fixed
    ``tile_rows`` plan to the :class:`AdaptiveTileScheduler`.  Neither knob
    can change the composite -- tiling is output-invariant past the
    eigen-decomposition barrier and both transports carry identical bytes.
    ``output_pool`` lets sessions reuse placement segments across runs.
    """
    reference = SpectralScreeningPCT(config, n_components=n_components,
                                     full_projection=full_projection)
    screening = config.screening
    compute_dtype = config.compute_dtype
    compute = config.compute
    workers = max(config.partition.workers, 1)
    subcubes = min(config.partition.effective_subcubes, cube.rows)
    # Driver-side wall clock per stage (the stages barrier on _gather, so
    # the driver's elapsed time is the stage's critical-path time even
    # though the tasks themselves run on pool slots).
    stage_seconds: Dict[str, float] = {}
    stage_marks: Dict[str, float] = {}

    def _stage_done(stage: str, started: float) -> None:
        stage_seconds[stage] = time.perf_counter() - started

    # Stage 1: per-sub-cube screening (parallel), merged in block order.
    stage_marks["screening"] = time.perf_counter()
    screen_futures = [executor.submit("screen", screen_tile, cube, spec,
                                      screening, compute_dtype, compute)
                      for spec in decompose(cube.rows, subcubes)]
    unique = merge_unique_sets(_gather(screen_futures), screening.angle_threshold,
                               max_unique=screening.max_unique,
                               rescreen=screening.rescreen_merge,
                               compute_dtype=compute_dtype, compute=compute)
    _stage_done("screening", stage_marks["screening"])

    # Barrier A: global mean, then the unique-set partition of step 4.
    stage_marks["mean"] = time.perf_counter()
    mean = mean_vector(unique)
    parts = partition_pixel_matrix(unique, workers)
    _stage_done("mean", stage_marks["mean"])

    # Stage 2: per-partition covariance sums (parallel), combined in order.
    stage_marks["covariance"] = time.perf_counter()
    cov_futures = [executor.submit("covariance", covariance_partial, part,
                                   mean, compute)
                   for part in parts]
    covariance = covariance_matrix(_gather(cov_futures),
                                   total_pixels=unique.shape[0])
    _stage_done("covariance", stage_marks["covariance"])

    # Barrier B: eigen-decomposition and global colour-stretch statistics.
    stage_marks["eigendecomposition"] = time.perf_counter()
    rank = cube.bands if full_projection else n_components
    basis = transformation_matrix(covariance, mean, n_components=rank)
    stats_basis = PCTBasis(eigenvalues=basis.eigenvalues,
                           components=basis.components[:3], mean=basis.mean)
    stretch_mean, stretch_std = component_statistics(project(unique, stats_basis))
    _stage_done("eigendecomposition", stage_marks["eigendecomposition"])

    # Stage 3: per-tile projection + colour mapping (parallel).  Tiles are
    # either returned as pickled blocks and reassembled here (spool path)
    # or written by the workers straight into a shared-memory output
    # placement and acknowledged as row ranges (zero-copy path).
    effective_tile_rows = (tile_rows if tile_rows is not None
                           else default_tile_rows(cube.rows, workers))
    normalize = config.colormap.normalize_components
    use_zero_copy = (zero_copy if zero_copy is not None
                     else bool(getattr(executor, "uses_processes", False)))
    placement: Optional[SharedComposite] = None
    completed = False
    if use_zero_copy:
        placement = (output_pool.acquire(cube.rows, cube.cols, n_components)
                     if output_pool is not None
                     else SharedComposite.create(cube.rows, cube.cols,
                                                 n_components))
    try:
        if use_zero_copy:
            out_handle = placement.handle()

            def submit_tile(spec: SubcubeSpec):
                return executor.submit("project", project_tile_into, cube,
                                       spec, basis, n_components, normalize,
                                       stretch_mean, stretch_std, out_handle,
                                       compute_dtype, compute)
        else:
            def submit_tile(spec: SubcubeSpec):
                return executor.submit("project", project_tile, cube, spec,
                                       basis, n_components, normalize,
                                       stretch_mean, stretch_std,
                                       compute_dtype, compute)

        stage_marks["projection"] = time.perf_counter()
        tiles, payloads = _drive_projection(submit_tile, cube.rows, workers,
                                            adaptive=adaptive_tiles,
                                            initial_tile_rows=effective_tile_rows)
        _stage_done("projection", stage_marks["projection"])
        if use_zero_copy:
            _validate_row_coverage(payloads, cube.rows)
            components = np.array(placement.components)
            composite = np.array(placement.composite)
            if placement.closed:
                # A racing session.close() force-released the placement
                # (only possible for a direct fuse() the close cannot
                # join); the copies above may be the swapped-out stubs, so
                # fail loudly rather than return corrupt pixels.
                raise CubeError("output placement was released under the "
                                "run (session closed mid-fuse)")
        else:
            components = reassemble_composite(
                [(spec, block[0]) for spec, block in zip(tiles, payloads)],
                cube.rows, cube.cols, channels=n_components)
            composite = reassemble_composite(
                [(spec, block[1]) for spec, block in zip(tiles, payloads)],
                cube.rows, cube.cols, channels=3)
        completed = True
    finally:
        if placement is not None:
            if output_pool is not None and completed:
                output_pool.release(placement)
            elif output_pool is not None:
                # Failed run: straggler tile tasks may still be writing, so
                # the segment is retired, never reissued to another run.
                output_pool.discard(placement)
            else:
                placement.close()

    phase_flops = reference.estimate_phase_flops(cube, unique.shape[0])
    stage_rows = {"screening": cube.pixels, "mean": int(unique.shape[0]),
                  "covariance": int(unique.shape[0]), "projection": cube.pixels}
    # The pipeline's projection stage fuses steps 7 and 8 into one task, so
    # its FLOP estimate is the sum of both cost models.
    stage_flops = {"screening": phase_flops["screening"],
                   "mean": phase_flops["mean"],
                   "covariance": phase_flops["covariance"],
                   "eigendecomposition": phase_flops["eigendecomposition"],
                   "projection": phase_flops["projection"] + phase_flops["colormap"]}
    stage_invocations = {"screening": len(screen_futures), "mean": 1,
                         "covariance": len(cov_futures),
                         "eigendecomposition": 1, "projection": len(tiles)}
    metadata = {
        "mode": "pipeline",
        "angle_threshold": screening.angle_threshold,
        "n_components": n_components,
        "bands": cube.bands,
        "rows": cube.rows,
        "cols": cube.cols,
        "stretch_mean": stretch_mean,
        "stretch_std": stretch_std,
        "tile_rows": effective_tile_rows,
        "tiles": len(tiles),
        "tile_scheduler": "adaptive" if adaptive_tiles else "fixed",
        "zero_copy": use_zero_copy,
        "stage_tasks": len(screen_futures) + len(cov_futures) + len(tiles),
        "compute_dtype": compute_dtype,
        "compute": compute,
        "stage_seconds": stage_seconds,
        "stage_rows": stage_rows,
        "stage_invocations": stage_invocations,
        "stage_flops": stage_flops,
    }
    return FusionResult(composite=composite, components=components, basis=basis,
                        unique_set_size=int(unique.shape[0]),
                        phase_flops=phase_flops, metadata=metadata)


# ---------------------------------------------------------------------------
# Executor resolution and the registered engine
# ---------------------------------------------------------------------------

def make_stage_executor(spec: BackendSpec, *, workers: int,
                        start_method: Optional[str] = None):
    """Build a stage executor for a parsed backend spec.

    ``process`` specs get a private :class:`~repro.scp.pool.ProcessPool`
    (pre-warmed to ``workers`` slots) wrapped in a
    :class:`~repro.scp.stages.PoolStageExecutor` that owns it; ``socket``
    specs get a :class:`~repro.scp.transport.SocketTransport` node agent
    (worker processes reached over TCP frames, results through the same
    crash-safe spool commit); ``local`` and ``sim`` specs run stages on
    host threads -- the simulated backend has no meaningful virtual clock
    for a streaming dataflow, so the engine degrades it to measured wall
    clock on threads, with identical output.
    """
    if spec.name in _PROCESS_SPECS:
        pool = ProcessPool(start_method=start_method or spec.variant or None,
                           warm=workers)
        return PoolStageExecutor(pool, workers=workers, owns_pool=True)
    if spec.name in _SOCKET_SPECS:
        transport = SocketTransport(workers=workers, start_method=start_method)
        return TransportStageExecutor(transport, workers=workers)
    if spec.name in _THREAD_SPECS:
        return ThreadStageExecutor(workers=workers)
    raise ValueError(
        f"engine 'pipeline' cannot stream on backend {spec.name!r}; "
        f"supported backend specs: "
        f"{', '.join(_PROCESS_SPECS + _SOCKET_SPECS + _THREAD_SPECS)}")


def validate_pipeline_request(request, *, one_shot: bool) -> None:
    """Reject knobs the pipeline cannot honour, on every entry path.

    Shared by :meth:`PipelineEngine.run` and the session's streaming branch
    (which bypasses the engine), so an ignored option can never differ in
    behaviour between ``repro.fuse`` and ``session.fuse``.  ``one_shot``
    additionally rejects ``max_inflight``: a single run has no stream for
    it to schedule, whereas session-built requests legitimately carry it.
    """
    from ..api.engines import _reject_resilience_options

    _reject_resilience_options(request, "pipeline")
    if one_shot and request.max_inflight is not None:
        raise ValueError(
            "max_inflight schedules concurrent cubes across a session "
            "stream, which a one-shot run does not have; use "
            "repro.open_session(engine='pipeline', "
            "max_inflight=...).fuse_stream(cubes)")
    if request.protocol is not None:
        raise ValueError("engine 'pipeline' measures wall clock and has no "
                         "protocol cost model; protocol= applies to the "
                         "simulated backend of the other engines")


def execute_pipeline_request(request, executor, *, backend_label: str,
                             output_pool: Optional[OutputPool] = None):
    """Run one :class:`~repro.api.request.FusionRequest` on ``executor``.

    Shared by :class:`PipelineEngine` (one-shot, private executor) and
    :class:`~repro.api.session.FusionSession` (streaming, one executor for
    every in-flight cube; sessions also pass their reusable ``output_pool``
    of zero-copy placements).  Returns the unified
    :class:`~repro.api.request.FusionReport`.
    """
    from ..api.request import FusionReport

    config = request.resolved_config()
    start = time.perf_counter()
    result = run_pipeline(request.cube, config, executor,
                          n_components=request.n_components,
                          full_projection=request.full_projection,
                          tile_rows=request.tile_rows,
                          adaptive_tiles=bool(request.adaptive_tiles),
                          zero_copy=request.zero_copy,
                          output_pool=output_pool)
    elapsed = time.perf_counter() - start
    metrics = RunMetrics(elapsed_seconds=elapsed, backend=backend_label,
                         workers=config.partition.workers,
                         subcubes=config.partition.effective_subcubes)
    return FusionReport(result=result, metrics=metrics, engine="pipeline",
                        backend=backend_label,
                        stage_timings=stage_timings_from_result(result))


class PipelineEngine:
    """Streaming tile-pipelined fusion on pooled processes or host threads.

    Registered as ``"pipeline"`` by :mod:`repro.api.engines`.  One-shot runs
    build (and tear down) a private stage executor; sessions keep a shared
    executor alive instead and bypass :meth:`run` -- see
    :meth:`repro.api.session.FusionSession.fuse_stream`.
    """

    uses_backend = True

    def run(self, request, backend: Optional[Backend] = None):
        validate_pipeline_request(request, one_shot=True)
        config = request.resolved_config()
        workers = max(config.partition.workers, 1)

        owned_executor = None
        placed: Optional[SharedCube] = None
        if backend is not None:
            if isinstance(backend, PooledProcessBackend):
                executor = PoolStageExecutor(backend._pool, workers=workers,
                                             owns_pool=False)
                owned_executor = executor
                label = backend.kind
                uses_processes = True
            else:
                raise ValueError(
                    "engine 'pipeline' executes stage tasks, not SCP programs; "
                    "pass a backend spec (e.g. 'process:8') or a "
                    "PooledProcessBackend, not a bare backend instance")
        else:
            spec = request.backend_choice(default="process")
            if isinstance(spec, Backend):  # an instance smuggled through request
                raise ValueError(
                    "engine 'pipeline' executes stage tasks, not SCP programs; "
                    "pass a backend spec string such as 'process:8'")
            executor = make_stage_executor(spec, workers=workers)
            owned_executor = executor
            label = str(spec)
            uses_processes = bool(getattr(executor, "uses_processes", False))
        try:
            working = request
            if uses_processes and not isinstance(request.cube, SharedCube):
                # Place the samples in shared memory once, so stage tasks
                # ship a tiny handle instead of pickling the cube per task.
                placed = SharedCube.from_cube(request.cube)
                working = request.replace(cube=placed)
            return execute_pipeline_request(working, executor, backend_label=label)
        finally:
            if owned_executor is not None:
                owned_executor.close()
            if placed is not None:
                placed.close()


__all__ = ["PipelineEngine", "AdaptiveTileScheduler", "run_pipeline",
           "execute_pipeline_request", "validate_pipeline_request",
           "make_stage_executor", "plan_tiles", "default_tile_rows",
           "screen_tile", "covariance_partial", "project_tile",
           "project_tile_into"]
