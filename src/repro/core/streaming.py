"""Streaming tile-pipelined fusion: the ``pipeline`` engine.

Every other engine materialises the whole cube and runs the eight algorithm
steps as a barrier-synchronised batch, so peak memory is O(cube) per request
and a queue of requests executes strictly serially.  The paper's algorithm
is, however, embarrassingly parallel across row blocks everywhere except two
small global reductions, which suggests a *staged dataflow* instead:

.. code-block:: text

    tiles ──▶ screen ──▶ [merge + mean]  ──▶ covariance ──▶ [combine + eig
              (par)       (barrier)           partials        + stretch]
                                              (par)           (barrier)
                                                                 │
              reassemble ◀── project + colour-map (par) ◀────────┘

Each parallel stage is a set of pure *stage tasks* executed on borrowed
:class:`~repro.scp.pool.ProcessPool` slots through a
:class:`~repro.scp.stages.PoolStageExecutor` (or host threads for the
``local``/``sim`` backend specs).  The two barriers are tiny: merging unique
sets, a ``bands x bands`` eigen-decomposition and the colour-stretch
statistics -- all independent of image size.  Because the executor bounds
the number of tasks in flight, several independent fusions can stream
through one executor concurrently (that is what
:meth:`repro.api.session.FusionSession.fuse_stream` does) with bounded
memory and no cross-talk.

Bit-identity
------------
The pipeline engine produces *bit-identical* composites to the sequential
reference for the same :class:`~repro.api.request.FusionRequest`:

* screening uses the exact sub-cube decomposition of the request's
  partition configuration (``config.partition.effective_subcubes``) and the
  per-block unique sets are merged in block order -- the same greedy pass,
  in the same order, as :class:`~repro.core.pipeline.SpectralScreeningPCT`;
* covariance partials follow :func:`~repro.core.steps.statistics.
  partition_pixel_matrix`'s split of the merged unique set and are combined
  in partition order (float summation order preserved);
* the eigen-decomposition barrier pins one global basis and one set of
  colour-stretch constants, after which projection and colour mapping are
  per-pixel operations -- any row tiling of step 7/8 reassembles to the
  untiled result exactly.  ``tile_rows`` therefore only tunes streaming
  granularity, never the output, which is what the tiling property tests
  assert for arbitrary cube shapes and tilings.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Sequence

import numpy as np

from ..cluster.metrics import RunMetrics
from ..config import FusionConfig, ScreeningConfig
from ..data.cube import HyperspectralCube
from ..data.shared import SharedCube
from ..scp.pool import PooledProcessBackend, ProcessPool
from ..scp.registry import BackendSpec
from ..scp.runtime import Backend
from ..scp.stages import PoolStageExecutor, ThreadStageExecutor
from .partition import (SubcubeSpec, decompose, extract_subcube,
                        reassemble_composite, subcube_pixel_matrix)
from .pipeline import FusionResult, SpectralScreeningPCT
from .steps.colormap import color_map, component_statistics
from .steps.screening import merge_unique_sets, screen_unique_set
from .steps.statistics import (covariance_matrix, covariance_sum, mean_vector,
                               partition_pixel_matrix)
from .steps.transform import PCTBasis, project, project_cube_block, transformation_matrix

#: Backend spec names executed on pool processes vs host threads.
_PROCESS_SPECS = ("process",)
_THREAD_SPECS = ("local", "sim")


# ---------------------------------------------------------------------------
# Tile planning
# ---------------------------------------------------------------------------

def plan_tiles(rows: int, tile_rows: int) -> List[SubcubeSpec]:
    """Split ``rows`` scene rows into contiguous tiles of ~``tile_rows`` rows.

    Delegates to :func:`~repro.core.partition.decompose`, so tiles inherit
    its invariants: contiguous, non-overlapping, exhaustive, sizes differing
    by at most one row.
    """
    if rows < 1:
        raise ValueError("rows must be >= 1")
    if tile_rows < 1:
        raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
    count = min(rows, max(1, math.ceil(rows / tile_rows)))
    return decompose(rows, count)


def default_tile_rows(rows: int, workers: int) -> int:
    """Default streaming granularity: ~2 tiles per worker, at least one row.

    Mirrors the paper's Figure-5 observation that 2-3x more work units than
    workers overlaps communication with computation without drowning in
    per-task overhead.
    """
    return max(1, math.ceil(rows / max(2 * workers, 1)))


# ---------------------------------------------------------------------------
# Stage tasks (pure module-level functions: picklable, deterministic,
# safely re-runnable after a slot crash)
# ---------------------------------------------------------------------------

def screen_tile(cube: HyperspectralCube, spec: SubcubeSpec,
                screening: ScreeningConfig) -> np.ndarray:
    """Stage 1 task: spectral screening of one sub-cube block."""
    block_pixels = subcube_pixel_matrix(extract_subcube(cube, spec))
    return screen_unique_set(block_pixels, screening.angle_threshold,
                             max_unique=screening.max_unique,
                             sample_stride=screening.sample_stride)


def covariance_partial(part: np.ndarray, mean: np.ndarray) -> np.ndarray:
    """Stage 2 task: covariance sum of one unique-set partition."""
    return covariance_sum(part, mean)


def project_tile(cube: HyperspectralCube, spec: SubcubeSpec, basis: PCTBasis,
                 n_components: int, normalize: bool, stretch_mean: np.ndarray,
                 stretch_std: np.ndarray):
    """Stage 3 task: projection + colour mapping of one output tile."""
    components = project_cube_block(extract_subcube(cube, spec),
                                    basis)[..., :n_components]
    composite = color_map(components, normalize=normalize,
                          mean=stretch_mean, std=stretch_std)
    return components, composite


# ---------------------------------------------------------------------------
# The staged DAG driver
# ---------------------------------------------------------------------------

def _gather(futures: Sequence) -> List:
    """Await stage futures in submission order, surfacing the first error."""
    return [future.result() for future in futures]


def run_pipeline(cube: HyperspectralCube, config: FusionConfig, executor, *,
                 n_components: int = 3, full_projection: bool = True,
                 tile_rows: Optional[int] = None) -> FusionResult:
    """Drive one cube through the staged screen/statistics/transform DAG.

    ``executor`` is any stage executor (:class:`PoolStageExecutor` or
    :class:`ThreadStageExecutor`); several concurrent ``run_pipeline`` calls
    may share one executor, which is how independent cubes overlap.
    """
    reference = SpectralScreeningPCT(config, n_components=n_components,
                                     full_projection=full_projection)
    screening = config.screening
    workers = max(config.partition.workers, 1)
    subcubes = min(config.partition.effective_subcubes, cube.rows)

    # Stage 1: per-sub-cube screening (parallel), merged in block order.
    screen_futures = [executor.submit("screen", screen_tile, cube, spec, screening)
                      for spec in decompose(cube.rows, subcubes)]
    unique = merge_unique_sets(_gather(screen_futures), screening.angle_threshold,
                               max_unique=screening.max_unique,
                               rescreen=screening.rescreen_merge)

    # Barrier A: global mean, then the unique-set partition of step 4.
    mean = mean_vector(unique)
    parts = partition_pixel_matrix(unique, workers)

    # Stage 2: per-partition covariance sums (parallel), combined in order.
    cov_futures = [executor.submit("covariance", covariance_partial, part, mean)
                   for part in parts]
    covariance = covariance_matrix(_gather(cov_futures),
                                   total_pixels=unique.shape[0])

    # Barrier B: eigen-decomposition and global colour-stretch statistics.
    rank = cube.bands if full_projection else n_components
    basis = transformation_matrix(covariance, mean, n_components=rank)
    stats_basis = PCTBasis(eigenvalues=basis.eigenvalues,
                           components=basis.components[:3], mean=basis.mean)
    stretch_mean, stretch_std = component_statistics(project(unique, stats_basis))

    # Stage 3: per-tile projection + colour mapping (parallel), reassembled.
    effective_tile_rows = (tile_rows if tile_rows is not None
                           else default_tile_rows(cube.rows, workers))
    tiles = plan_tiles(cube.rows, effective_tile_rows)
    normalize = config.colormap.normalize_components
    tile_futures = [executor.submit("project", project_tile, cube, spec, basis,
                                    n_components, normalize, stretch_mean,
                                    stretch_std)
                    for spec in tiles]
    blocks = _gather(tile_futures)
    components = reassemble_composite(
        [(spec, block[0]) for spec, block in zip(tiles, blocks)],
        cube.rows, cube.cols, channels=n_components)
    composite = reassemble_composite(
        [(spec, block[1]) for spec, block in zip(tiles, blocks)],
        cube.rows, cube.cols, channels=3)

    metadata = {
        "mode": "pipeline",
        "angle_threshold": screening.angle_threshold,
        "n_components": n_components,
        "bands": cube.bands,
        "rows": cube.rows,
        "cols": cube.cols,
        "stretch_mean": stretch_mean,
        "stretch_std": stretch_std,
        "tile_rows": effective_tile_rows,
        "tiles": len(tiles),
        "stage_tasks": len(screen_futures) + len(cov_futures) + len(tile_futures),
    }
    return FusionResult(composite=composite, components=components, basis=basis,
                        unique_set_size=int(unique.shape[0]),
                        phase_flops=reference.estimate_phase_flops(cube, unique.shape[0]),
                        metadata=metadata)


# ---------------------------------------------------------------------------
# Executor resolution and the registered engine
# ---------------------------------------------------------------------------

def make_stage_executor(spec: BackendSpec, *, workers: int,
                        start_method: Optional[str] = None):
    """Build a stage executor for a parsed backend spec.

    ``process`` specs get a private :class:`~repro.scp.pool.ProcessPool`
    (pre-warmed to ``workers`` slots) wrapped in a
    :class:`PoolStageExecutor` that owns it; ``local`` and ``sim`` specs
    run stages on host threads -- the simulated backend has no meaningful
    virtual clock for a streaming dataflow, so the engine degrades it to
    measured wall clock on threads, with identical output.
    """
    if spec.name in _PROCESS_SPECS:
        pool = ProcessPool(start_method=start_method or spec.variant or None,
                           warm=workers)
        return PoolStageExecutor(pool, workers=workers, owns_pool=True)
    if spec.name in _THREAD_SPECS:
        return ThreadStageExecutor(workers=workers)
    raise ValueError(
        f"engine 'pipeline' cannot stream on backend {spec.name!r}; "
        f"supported backend specs: {', '.join(_PROCESS_SPECS + _THREAD_SPECS)}")


def validate_pipeline_request(request, *, one_shot: bool) -> None:
    """Reject knobs the pipeline cannot honour, on every entry path.

    Shared by :meth:`PipelineEngine.run` and the session's streaming branch
    (which bypasses the engine), so an ignored option can never differ in
    behaviour between ``repro.fuse`` and ``session.fuse``.  ``one_shot``
    additionally rejects ``max_inflight``: a single run has no stream for
    it to schedule, whereas session-built requests legitimately carry it.
    """
    from ..api.engines import _reject_resilience_options

    _reject_resilience_options(request, "pipeline")
    if one_shot and request.max_inflight is not None:
        raise ValueError(
            "max_inflight schedules concurrent cubes across a session "
            "stream, which a one-shot run does not have; use "
            "repro.open_session(engine='pipeline', "
            "max_inflight=...).fuse_stream(cubes)")
    if request.protocol is not None:
        raise ValueError("engine 'pipeline' measures wall clock and has no "
                         "protocol cost model; protocol= applies to the "
                         "simulated backend of the other engines")


def execute_pipeline_request(request, executor, *, backend_label: str):
    """Run one :class:`~repro.api.request.FusionRequest` on ``executor``.

    Shared by :class:`PipelineEngine` (one-shot, private executor) and
    :class:`~repro.api.session.FusionSession` (streaming, one executor for
    every in-flight cube).  Returns the unified
    :class:`~repro.api.request.FusionReport`.
    """
    from ..api.request import FusionReport

    config = request.resolved_config()
    start = time.perf_counter()
    result = run_pipeline(request.cube, config, executor,
                          n_components=request.n_components,
                          full_projection=request.full_projection,
                          tile_rows=request.tile_rows)
    elapsed = time.perf_counter() - start
    metrics = RunMetrics(elapsed_seconds=elapsed, backend=backend_label,
                         workers=config.partition.workers,
                         subcubes=config.partition.effective_subcubes)
    return FusionReport(result=result, metrics=metrics, engine="pipeline",
                        backend=backend_label)


class PipelineEngine:
    """Streaming tile-pipelined fusion on pooled processes or host threads.

    Registered as ``"pipeline"`` by :mod:`repro.api.engines`.  One-shot runs
    build (and tear down) a private stage executor; sessions keep a shared
    executor alive instead and bypass :meth:`run` -- see
    :meth:`repro.api.session.FusionSession.fuse_stream`.
    """

    uses_backend = True

    def run(self, request, backend: Optional[Backend] = None):
        validate_pipeline_request(request, one_shot=True)
        config = request.resolved_config()
        workers = max(config.partition.workers, 1)

        owned_executor = None
        placed: Optional[SharedCube] = None
        if backend is not None:
            if isinstance(backend, PooledProcessBackend):
                executor = PoolStageExecutor(backend._pool, workers=workers,
                                             owns_pool=False)
                owned_executor = executor
                label = backend.kind
                uses_processes = True
            else:
                raise ValueError(
                    "engine 'pipeline' executes stage tasks, not SCP programs; "
                    "pass a backend spec (e.g. 'process:8') or a "
                    "PooledProcessBackend, not a bare backend instance")
        else:
            spec = request.backend_choice(default="process")
            if isinstance(spec, Backend):  # an instance smuggled through request
                raise ValueError(
                    "engine 'pipeline' executes stage tasks, not SCP programs; "
                    "pass a backend spec string such as 'process:8'")
            executor = make_stage_executor(spec, workers=workers)
            owned_executor = executor
            label = str(spec)
            uses_processes = spec.name in _PROCESS_SPECS
        try:
            working = request
            if uses_processes and not isinstance(request.cube, SharedCube):
                # Place the samples in shared memory once, so stage tasks
                # ship a tiny handle instead of pickling the cube per task.
                placed = SharedCube.from_cube(request.cube)
                working = request.replace(cube=placed)
            return execute_pipeline_request(working, executor, backend_label=label)
        finally:
            if owned_executor is not None:
                owned_executor.close()
            if placed is not None:
                placed.close()


__all__ = ["PipelineEngine", "run_pipeline", "execute_pipeline_request",
           "validate_pipeline_request", "make_stage_executor", "plan_tiles",
           "default_tile_rows", "screen_tile", "covariance_partial",
           "project_tile"]
