"""Worker thread program of the distributed spectral-screening PCT.

A worker participates in the three distributed phases of the algorithm:

* ``screen``      -- step 1: spectral-angle screening of a sub-cube,
* ``covariance``  -- step 4: covariance sum of a slice of the unique set,
* ``transform``   -- steps 7-8: projection and colour mapping of a sub-cube.

The worker is deliberately stateless between tasks: it announces itself to
the manager, then loops receiving a task, computing it, and returning the
result.  Idempotent duplicate-suppression keys on both tasks and results make
the protocol safe under replication (every replica of a worker receives and
computes every task, but the manager keeps only one copy of each result) and
under regeneration (a replica that rejoins after a failure simply announces
itself again; the manager re-sends whatever is outstanding).

The paper's communication/computation overlap (Section 3: "a worker overlaps
the request for its next sub-problem with the calculation associated with the
current sub-problem") arises naturally: the manager keeps ``prefetch`` tasks
outstanding per worker, so while a worker computes one sub-cube the next is
already in flight or waiting in its mailbox.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

import numpy as np

from ..config import FusionConfig
from ..scp.effects import Compute, Recv, Send
from ..scp.runtime import Context
from .messages import (PHASE_COVARIANCE, PHASE_SCREEN, PHASE_TRANSFORM,
                       PORT_HELLO, PORT_RESULT, PORT_TASK, StopWork,
                       TaskAssignment, TaskResult, WorkerHello)
from .kernels import kernel_covariance_sum, kernel_project_and_map
from .partition import subcube_pixel_matrix
from .steps.colormap import color_map_flops
from .steps.screening import screen_unique_set, screening_flops
from .steps.statistics import covariance_sum_flops
from .steps.transform import projection_flops


def _compute_screen(task: TaskAssignment, config: FusionConfig) -> Compute:
    """Build the Compute effect for a screening task."""
    block = task.data["block"]
    pixels = subcube_pixel_matrix(block)
    n_pixels, bands = pixels.shape
    screening = config.screening

    def flops_of(result: np.ndarray, n=n_pixels, b=bands) -> float:
        return screening_flops(n, result.shape[0], b)

    return Compute(fn=screen_unique_set,
                   args=(pixels, screening.angle_threshold),
                   kwargs={"max_unique": screening.max_unique,
                           "sample_stride": screening.sample_stride,
                           "compute_dtype": config.compute_dtype,
                           "compute": config.compute},
                   flops=flops_of, phase="screening")


def _compute_covariance(task: TaskAssignment, config: FusionConfig) -> Compute:
    """Build the Compute effect for a covariance-sum task."""
    pixels = task.data["pixels"]
    mean = task.data["mean"]
    return Compute(fn=kernel_covariance_sum, args=(pixels, mean),
                   kwargs={"compute": config.compute},
                   flops=covariance_sum_flops(pixels.shape[0], pixels.shape[1]),
                   phase="covariance")


def _transform_and_map(block: np.ndarray, basis, stretch_mean, stretch_std,
                       keep_components: int, compute_dtype: str = "float64",
                       compute: str = "numpy") -> Dict[str, np.ndarray]:
    """Steps 7-8 fused into one call: project a sub-cube and colour-map it.

    The projection uses every eigenvector carried by ``basis`` (the paper's
    full transform); only the leading ``keep_components`` planes are kept in
    the result to bound the size of the message sent back to the manager.
    The named compute kernel does the fusing, so forked and socket workers
    pick it by name rather than by a pickled function.
    """
    components, rgb = kernel_project_and_map(
        block, basis, n_components=keep_components, normalize=True,
        stretch_mean=stretch_mean, stretch_std=stretch_std,
        compute_dtype=compute_dtype, compute=compute)
    return {"components": components, "rgb": rgb}


def _compute_transform(task: TaskAssignment, config: FusionConfig) -> Compute:
    """Build the Compute effect for a transform + colour-map task."""
    block = task.data["block"]
    basis = task.data["basis"]
    stretch_mean = task.data["stretch_mean"]
    stretch_std = task.data["stretch_std"]
    keep = int(task.data.get("keep_components", 3))
    n_pixels = block.shape[1] * block.shape[2]
    flops = (projection_flops(n_pixels, basis.bands, basis.n_components)
             + color_map_flops(n_pixels))
    return Compute(fn=_transform_and_map,
                   args=(block, basis, stretch_mean, stretch_std, keep,
                         config.compute_dtype, config.compute),
                   flops=flops, phase="transform")


def worker_program(ctx: Context, *, manager: str = "manager",
                   config: Optional[FusionConfig] = None) -> Generator:
    """Generator program executed by every worker replica.

    Parameters
    ----------
    ctx:
        Backend-provided context (identity, replica index, incarnation).
    manager:
        Logical name of the manager thread.
    config:
        Fusion configuration (screening thresholds are the only part used).
    """
    config = config or FusionConfig()
    tasks_completed = 0

    # Announce availability.  Regenerated replicas carry a new incarnation
    # number so the announcement is not suppressed as a duplicate and the
    # manager knows to re-send outstanding work.
    hello = WorkerHello(worker=ctx.name, incarnation=ctx.incarnation)
    yield Send(dst=manager, port=PORT_HELLO, payload=hello, key=hello.dedup_key())

    while True:
        envelope = yield Recv(port=PORT_TASK)
        message = envelope.payload

        if isinstance(message, StopWork):
            return {"worker": ctx.name, "replica": ctx.replica,
                    "tasks_completed": tasks_completed, "reason": message.reason}

        if not isinstance(message, TaskAssignment):
            # Unknown control traffic is ignored rather than crashing the
            # worker; the manager's accounting is authoritative.
            continue

        task = message
        if task.phase == PHASE_SCREEN:
            unique = yield _compute_screen(task, config)
            result_data = {"unique": unique, "pixels_screened": int(
                task.data["block"].shape[1] * task.data["block"].shape[2])}
        elif task.phase == PHASE_COVARIANCE:
            cov = yield _compute_covariance(task, config)
            result_data = {"cov_sum": cov, "count": int(task.data["pixels"].shape[0])}
        elif task.phase == PHASE_TRANSFORM:
            block_result = yield _compute_transform(task, config)
            result_data = {"rgb": block_result["rgb"],
                           "components": block_result["components"],
                           "spec": task.spec}
        else:
            # Unknown phase: report an empty result so the manager does not
            # wait forever on a protocol mismatch.
            result_data = {"error": f"unknown phase {task.phase!r}"}

        result = TaskResult(phase=task.phase, task_id=task.task_id,
                            worker=ctx.name, data=result_data)
        yield Send(dst=manager, port=PORT_RESULT, payload=result, key=result.dedup_key())
        tasks_completed += 1


__all__ = ["worker_program"]
