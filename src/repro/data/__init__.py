"""Synthetic HYDICE-like data substrate.

The paper evaluates on proprietary HYDICE airborne spectrometer collections;
this subpackage provides a deterministic, physically-motivated synthetic
stand-in (see the substitution table in DESIGN.md): a spectral signature
library (:mod:`.signatures`), scene layout generation with embedded vehicle
targets (:mod:`.scene`), a sensor noise model (:mod:`.noise`), the
:class:`~repro.data.cube.HyperspectralCube` container (:mod:`.cube`), the
end-to-end generator (:mod:`.hydice`) and the shared-memory cube used by the
process-parallel backend (:mod:`.shared`).
"""

from .cube import CubeError, HyperspectralCube
from .hydice import HydiceConfig, HydiceGenerator, generate_cube, solar_illumination
from .shared import (OutputPool, SharedComposite, SharedCompositeHandle,
                     SharedCube, SharedCubeHandle, owned_segment_names,
                     share_cube_params, sweep_owned_segments)
from .noise import NoiseModel, apply_sensor_noise, band_noise_sigma
from .scene import (DEFAULT_MATERIALS, SceneLayout, VehiclePlacement,
                    generate_scene)
from .signatures import (HYDICE_MAX_NM, HYDICE_MIN_NM, SpectralSignature,
                         available_materials, get_signature, signature_matrix,
                         spectral_angle)

__all__ = [
    "CubeError",
    "HyperspectralCube",
    "HydiceConfig",
    "HydiceGenerator",
    "generate_cube",
    "solar_illumination",
    "SharedCube",
    "SharedCubeHandle",
    "SharedComposite",
    "SharedCompositeHandle",
    "OutputPool",
    "share_cube_params",
    "owned_segment_names",
    "sweep_owned_segments",
    "NoiseModel",
    "apply_sensor_noise",
    "band_noise_sigma",
    "DEFAULT_MATERIALS",
    "SceneLayout",
    "VehiclePlacement",
    "generate_scene",
    "HYDICE_MAX_NM",
    "HYDICE_MIN_NM",
    "SpectralSignature",
    "available_materials",
    "get_signature",
    "signature_matrix",
    "spectral_angle",
]
