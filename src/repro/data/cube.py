"""Hyper-spectral image cube container.

A HYDICE collection is a stack of co-registered images, one per spectral
band.  :class:`HyperspectralCube` stores the stack as a single
``(bands, rows, cols)`` ``float32`` array together with the band-centre
wavelengths, and provides the views the fusion algorithm needs: the
pixel-vector matrix (each row one pixel across all bands), individual band
frames (Figure 2 of the paper), and spatial/spectral subsets used for
decomposition and for building reduced test problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


class CubeError(ValueError):
    """Raised for malformed cube construction or out-of-range access."""


@dataclass
class HyperspectralCube:
    """A ``(bands, rows, cols)`` hyper-spectral data cube.

    Attributes
    ----------
    data:
        Radiance/reflectance samples, ``float32``, indexed ``[band, row, col]``.
    wavelengths_nm:
        Band-centre wavelengths in nanometres, ascending, length ``bands``.
    metadata:
        Free-form provenance (sensor name, scene seed, ground-truth labels...).
    """

    data: np.ndarray
    wavelengths_nm: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float32)
        self.wavelengths_nm = np.asarray(self.wavelengths_nm, dtype=np.float64)
        if self.data.ndim != 3:
            raise CubeError(f"cube data must be 3-D (bands, rows, cols); got {self.data.shape}")
        if self.wavelengths_nm.ndim != 1 or len(self.wavelengths_nm) != self.data.shape[0]:
            raise CubeError(
                f"wavelengths length {self.wavelengths_nm.shape} does not match "
                f"band count {self.data.shape[0]}")
        if len(self.wavelengths_nm) > 1 and np.any(np.diff(self.wavelengths_nm) <= 0):
            raise CubeError("wavelengths must be strictly ascending")

    # ------------------------------------------------------------ dimensions
    @property
    def bands(self) -> int:
        return self.data.shape[0]

    @property
    def rows(self) -> int:
        return self.data.shape[1]

    @property
    def cols(self) -> int:
        return self.data.shape[2]

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def pixels(self) -> int:
        return self.rows * self.cols

    def nbytes_estimate(self) -> int:
        """Serialized size estimate used by the communication cost model."""
        return int(self.data.nbytes + self.wavelengths_nm.nbytes)

    # ----------------------------------------------------------------- views
    def as_pixel_matrix(self) -> np.ndarray:
        """Return a ``(pixels, bands)`` view with each row one pixel vector.

        The transformation and statistics steps of the algorithm operate on
        pixel vectors; this reshape is free (a view) because the cube is
        stored band-major and we only permute axes lazily.
        """
        return self.data.reshape(self.bands, -1).T

    def band(self, index: int) -> np.ndarray:
        """Return one spectral frame as a ``(rows, cols)`` array."""
        if not 0 <= index < self.bands:
            raise CubeError(f"band index {index} out of range [0, {self.bands})")
        return self.data[index]

    def band_nearest(self, wavelength_nm: float) -> Tuple[int, np.ndarray]:
        """Return ``(index, frame)`` of the band closest to ``wavelength_nm``.

        Figure 2 of the paper shows the 400 nm and 1998 nm frames; this is
        the accessor the corresponding benchmark and example use.
        """
        index = int(np.argmin(np.abs(self.wavelengths_nm - wavelength_nm)))
        return index, self.data[index]

    # --------------------------------------------------------------- subsets
    def spatial_subset(self, row_slice: slice, col_slice: slice) -> "HyperspectralCube":
        """Return a new cube restricted to a spatial window (copies data)."""
        sub = self.data[:, row_slice, col_slice].copy()
        if sub.size == 0:
            raise CubeError("spatial subset is empty")
        return HyperspectralCube(sub, self.wavelengths_nm.copy(), dict(self.metadata))

    def spectral_subset(self, band_slice: slice) -> "HyperspectralCube":
        """Return a new cube restricted to a subset of bands (copies data)."""
        sub = self.data[band_slice].copy()
        wl = self.wavelengths_nm[band_slice].copy()
        if sub.size == 0:
            raise CubeError("spectral subset is empty")
        return HyperspectralCube(sub, wl, dict(self.metadata))

    def row_blocks(self, count: int) -> Tuple[Tuple[int, int], ...]:
        """Split the row range into ``count`` contiguous, near-equal blocks.

        Returns ``(start, stop)`` pairs; used by the sub-cube decomposition.
        """
        if count < 1:
            raise CubeError("block count must be >= 1")
        if count > self.rows:
            raise CubeError(f"cannot split {self.rows} rows into {count} blocks")
        edges = np.linspace(0, self.rows, count + 1, dtype=int)
        return tuple((int(edges[i]), int(edges[i + 1])) for i in range(count))

    # ------------------------------------------------------------------- i/o
    def save_npz(self, path: str) -> None:
        """Persist the cube to a compressed ``.npz`` file."""
        label_map = self.metadata.get("label_map")
        np.savez_compressed(path, data=self.data, wavelengths_nm=self.wavelengths_nm,
                            label_map=label_map if label_map is not None else np.empty(0))

    @classmethod
    def load_npz(cls, path: str) -> "HyperspectralCube":
        """Load a cube previously written by :meth:`save_npz`."""
        archive = np.load(path, allow_pickle=False)
        metadata: Dict[str, object] = {}
        if "label_map" in archive and archive["label_map"].size:
            metadata["label_map"] = archive["label_map"]
        return cls(archive["data"], archive["wavelengths_nm"], metadata)

    @classmethod
    def from_pixel_matrix(cls, matrix: np.ndarray, rows: int, cols: int,
                          wavelengths_nm: Optional[np.ndarray] = None) -> "HyperspectralCube":
        """Rebuild a cube from a ``(pixels, bands)`` matrix."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != rows * cols:
            raise CubeError(
                f"pixel matrix of shape {matrix.shape} does not match {rows}x{cols} pixels")
        bands = matrix.shape[1]
        data = matrix.T.reshape(bands, rows, cols)
        if wavelengths_nm is None:
            wavelengths_nm = np.linspace(400.0, 2500.0, bands)
        return cls(data.astype(np.float32), wavelengths_nm)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HyperspectralCube bands={self.bands} rows={self.rows} cols={self.cols} "
                f"{self.wavelengths_nm[0]:.0f}-{self.wavelengths_nm[-1]:.0f}nm>")


__all__ = ["HyperspectralCube", "CubeError"]
