"""Synthetic HYDICE collection generator.

The paper's test data comes from the Hyper-spectral Digital Imagery
Collection Experiment (HYDICE) airborne spectrometer: 210 channels between
400 nm and 2.5 um over foliated scenes containing mechanised vehicles, some
camouflaged.  That data is not publicly distributable, so this module builds
a synthetic stand-in with the same structural properties (see DESIGN.md,
substitution table): the scene layout from :mod:`repro.data.scene`, material
reflectances from :mod:`repro.data.signatures`, a simple solar-illumination
term, and the sensor-noise model from :mod:`repro.data.noise`.

The generator is deterministic given its configuration, and the label map /
vehicle ground truth is carried in the cube metadata so evaluation code can
quantify target enhancement in the fused composite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .cube import HyperspectralCube
from .noise import NoiseModel, apply_sensor_noise
from .scene import DEFAULT_MATERIALS, generate_scene
from .signatures import HYDICE_MAX_NM, HYDICE_MIN_NM, signature_matrix


@dataclass(frozen=True)
class HydiceConfig:
    """Configuration of a synthetic HYDICE collection.

    Attributes
    ----------
    bands, rows, cols:
        Cube dimensions.  The paper's full collection is 210 bands; its
        granularity experiment uses a 105-band, 320x320 cube.
    seed:
        Master seed controlling layout, abundances and noise.
    vehicles / camouflaged_vehicles:
        Targets embedded in the scene.
    noise:
        Sensor noise model.
    illumination:
        Peak radiance scale (arbitrary units ~ uint16 full range).
    mixing_strength:
        Maximum sub-pixel mixing fraction folded into the material variants:
        real airborne pixels (1-4 m ground sample distance) are almost never
        spectrally pure, so each variant blends its own material with a
        randomly chosen second material by up to this fraction.
    spectral_variability:
        Amplitude of the low-order spectral-shape perturbations (slope and
        curvature) that distinguish the variants of one material, modelling
        within-class variability such as leaf water content, soil moisture
        and illumination geometry.  Unlike multiplicative brightness, these
        change a pixel's spectral *angle* and therefore control how many
        distinct spectra the screening threshold can resolve.
    variants_per_material:
        Size of the per-material variant library.  Every pixel is assigned
        one variant of its material, so the number of genuinely distinct
        spectra in a scene is bounded by ``materials x variants`` -- the
        property of real hyper-spectral scenes that makes the unique-set size
        (and therefore the screening workload) saturate instead of growing
        with the number of pixels examined.
    """

    bands: int = 210
    rows: int = 320
    cols: int = 320
    seed: int = 0
    vehicles: int = 3
    camouflaged_vehicles: int = 1
    noise: NoiseModel = field(default_factory=NoiseModel)
    illumination: float = 4000.0
    mixing_strength: float = 0.4
    spectral_variability: float = 0.12
    variants_per_material: int = 24
    clutter_fraction: float = 0.15
    materials: Tuple[str, ...] = DEFAULT_MATERIALS

    def __post_init__(self) -> None:
        if self.bands < 3:
            raise ValueError("need at least 3 spectral bands")
        if self.rows < 16 or self.cols < 16:
            raise ValueError("scene must be at least 16x16 pixels")
        if self.illumination <= 0:
            raise ValueError("illumination must be positive")
        if not 0.0 <= self.mixing_strength <= 1.0:
            raise ValueError("mixing_strength must be in [0, 1]")
        if self.spectral_variability < 0:
            raise ValueError("spectral_variability must be >= 0")
        if self.variants_per_material < 1:
            raise ValueError("variants_per_material must be >= 1")
        if not 0.0 <= self.clutter_fraction < 1.0:
            raise ValueError("clutter_fraction must be in [0, 1)")


def solar_illumination(wavelengths_nm: np.ndarray) -> np.ndarray:
    """Relative at-sensor illumination: a smooth black-body-like curve peaking
    in the visible and declining into the SWIR."""
    wl = np.asarray(wavelengths_nm, dtype=np.float64)
    curve = np.exp(-0.5 * ((wl - 580.0) / 700.0) ** 2) + 0.15
    return curve / curve.max()


class HydiceGenerator:
    """Builds :class:`~repro.data.cube.HyperspectralCube` objects from a config."""

    def __init__(self, config: Optional[HydiceConfig] = None) -> None:
        self.config = config or HydiceConfig()

    # ------------------------------------------------------------------ main
    def generate(self) -> HyperspectralCube:
        """Generate the synthetic collection described by the configuration."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        wavelengths = np.linspace(HYDICE_MIN_NM, HYDICE_MAX_NM, cfg.bands)

        scene = generate_scene(cfg.rows, cfg.cols, seed=cfg.seed,
                               vehicles=cfg.vehicles,
                               camouflaged_vehicles=cfg.camouflaged_vehicles,
                               materials=cfg.materials,
                               clutter_fraction=cfg.clutter_fraction)

        reflectance = signature_matrix(scene.materials, wavelengths)  # (materials, bands)
        illumination = solar_illumination(wavelengths) * cfg.illumination

        # Per-material variant library: a bounded set of distinct spectra per
        # material (shape perturbations + sub-pixel mixing), so the diversity
        # of the scene saturates like a real collection instead of growing
        # with the number of pixels sampled.
        variants = self._variant_library(reflectance, wavelengths, rng)
        variant_index = rng.integers(0, cfg.variants_per_material,
                                     size=(cfg.rows, cfg.cols))

        # Radiance cube: gather each pixel's (material, variant) spectrum and
        # scale by the abundance field and the illumination curve.
        per_pixel_reflectance = variants[scene.labels, variant_index]  # (rows, cols, bands)
        radiance = per_pixel_reflectance * scene.abundance[..., None]
        radiance = np.transpose(radiance, (2, 0, 1)) * illumination[:, None, None]

        noisy = apply_sensor_noise(radiance, wavelengths, cfg.noise, rng)

        metadata = {
            "sensor": "synthetic-HYDICE",
            "seed": cfg.seed,
            "label_map": scene.labels.copy(),
            "materials": scene.materials,
            "target_mask": scene.target_mask(),
            "vehicles": scene.vehicles,
            "scene_fractions": scene.fractions(),
        }
        return HyperspectralCube(noisy, wavelengths, metadata)

    # --------------------------------------------------------------- variants
    def _variant_library(self, reflectance: np.ndarray, wavelengths: np.ndarray,
                         rng: np.random.Generator) -> np.ndarray:
        """Build the ``(materials, variants, bands)`` spectral variant library.

        Each variant of a material is the base signature modulated by an
        independent, spectrally smooth random perturbation (within-class
        variability: leaf chemistry, soil moisture, paint weathering) and
        blended with a randomly chosen second material (sub-pixel mixing).
        Variant 0 is always the unperturbed base signature.

        Because every variant has its own perturbation shape, the variants of
        one material are mutually separated by spectral angles of roughly
        ``spectral_variability`` radians -- well above the screening
        threshold -- so the number of unique spectra a screening pass finds
        saturates at (roughly) the library size rather than growing with the
        number of pixels examined.  That saturation is what keeps the
        distributed screening workload nearly independent of the sub-cube
        decomposition, as it is for real collections.
        """
        cfg = self.config
        n_materials, bands = reflectance.shape
        v = cfg.variants_per_material

        # Smooth random perturbation curves, unit RMS, one per (material, variant).
        raw = rng.standard_normal((n_materials, v, bands))
        width = max(3, bands // 12)
        kernel = np.exp(-0.5 * ((np.arange(-2 * width, 2 * width + 1)) / width) ** 2)
        kernel /= kernel.sum()
        pad = len(kernel) // 2
        padded = np.pad(raw, ((0, 0), (0, 0), (pad, pad)), mode="reflect")
        smooth = np.zeros_like(raw)
        for offset, weight in enumerate(kernel):
            smooth += weight * padded[:, :, offset:offset + bands]
        rms = np.sqrt(np.mean(smooth ** 2, axis=-1, keepdims=True))
        smooth /= np.maximum(rms, 1e-12)
        smooth[:, 0, :] = 0.0

        modulation = 1.0 + cfg.spectral_variability * smooth
        variants = reflectance[:, None, :] * modulation      # (materials, v, bands)

        if cfg.mixing_strength > 0 and n_materials > 1:
            partners = rng.integers(0, n_materials, size=(n_materials, v))
            weights = rng.beta(1.2, 4.0, size=(n_materials, v)) * cfg.mixing_strength
            weights[:, 0] = 0.0
            variants = ((1.0 - weights[..., None]) * variants
                        + weights[..., None] * reflectance[partners])

        return np.clip(variants, 0.0, None)

    # ------------------------------------------------------------- shortcuts
    @classmethod
    def paper_granularity_cube(cls, *, scale: float = 1.0, seed: int = 0) -> HyperspectralCube:
        """The 320x320x105 cube of the granularity experiment (Figure 5).

        ``scale`` < 1 shrinks the spatial extent proportionally (the cost
        model of the simulated backend still reflects the actual array sizes,
        so benchmark runs stay fast while preserving compute/communication
        ratios reasonably well).
        """
        rows = max(32, int(round(320 * scale)))
        cols = max(32, int(round(320 * scale)))
        config = HydiceConfig(bands=105, rows=rows, cols=cols, seed=seed)
        return cls(config).generate()

    @classmethod
    def paper_full_cube(cls, *, scale: float = 1.0, seed: int = 0) -> HyperspectralCube:
        """The full 210-band collection used for the fusion result (Figure 3)."""
        rows = max(32, int(round(320 * scale)))
        cols = max(32, int(round(320 * scale)))
        config = HydiceConfig(bands=210, rows=rows, cols=cols, seed=seed)
        return cls(config).generate()

    @classmethod
    def quicklook_cube(cls, *, bands: int = 32, rows: int = 48, cols: int = 48,
                       seed: int = 0) -> HyperspectralCube:
        """A small cube for unit tests and quick examples."""
        config = HydiceConfig(bands=bands, rows=rows, cols=cols, seed=seed,
                              vehicles=1, camouflaged_vehicles=1)
        return cls(config).generate()


def generate_cube(bands: int = 210, rows: int = 320, cols: int = 320, *,
                  seed: int = 0, **kwargs) -> HyperspectralCube:
    """Functional shortcut: ``generate_cube(210, 320, 320, seed=0)``."""
    config = HydiceConfig(bands=bands, rows=rows, cols=cols, seed=seed, **kwargs)
    return HydiceGenerator(config).generate()


__all__ = ["HydiceConfig", "HydiceGenerator", "generate_cube", "solar_illumination"]
