"""Sensor noise models for the synthetic HYDICE generator.

The noise model captures the characteristics that matter to the fusion
algorithm:

* per-band Gaussian noise whose standard deviation varies with wavelength
  (water-absorption bands are markedly noisier, as in real HYDICE data),
* a small amount of spectral smoothing that makes adjacent bands correlated
  (the instrument's spectral response overlaps), and
* optional dead or striped detector columns, which the screening step must
  tolerate without admitting thousands of spurious "unique" pixels.

All randomness flows through a caller-provided :class:`numpy.random.Generator`
so whole scenes are reproducible from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Parameters of the synthetic sensor noise.

    Attributes
    ----------
    base_snr:
        Signal-to-noise ratio in well-behaved bands (HYDICE is ~100:1).
    absorption_snr:
        Signal-to-noise ratio inside the 1400/1900 nm water-absorption bands.
    spectral_smoothing:
        Width (in bands) of the triangular smoothing applied along the
        spectral axis; 0 disables it.
    dead_column_fraction:
        Fraction of detector columns that are dead (read near zero).
    stripe_amplitude:
        Relative amplitude of column-wise gain striping.
    """

    base_snr: float = 100.0
    absorption_snr: float = 25.0
    spectral_smoothing: int = 1
    dead_column_fraction: float = 0.0
    stripe_amplitude: float = 0.0

    def __post_init__(self) -> None:
        if self.base_snr <= 0 or self.absorption_snr <= 0:
            raise ValueError("SNR values must be positive")
        if self.spectral_smoothing < 0:
            raise ValueError("spectral_smoothing must be >= 0")
        if not 0.0 <= self.dead_column_fraction < 1.0:
            raise ValueError("dead_column_fraction must be in [0, 1)")
        if self.stripe_amplitude < 0:
            raise ValueError("stripe_amplitude must be >= 0")


def band_noise_sigma(wavelengths_nm: np.ndarray, signal_level: np.ndarray,
                     model: NoiseModel) -> np.ndarray:
    """Per-band noise standard deviation for a given mean signal level.

    ``signal_level`` is the per-band mean radiance of the scene; the returned
    sigma interpolates between ``signal/base_snr`` in clean bands and
    ``signal/absorption_snr`` inside the absorption features.
    """
    wl = np.asarray(wavelengths_nm, dtype=np.float64)
    absorption_weight = (np.exp(-0.5 * ((wl - 1400.0) / 60.0) ** 2)
                         + np.exp(-0.5 * ((wl - 1900.0) / 70.0) ** 2))
    absorption_weight = np.clip(absorption_weight, 0.0, 1.0)
    snr = model.base_snr * (1.0 - absorption_weight) + model.absorption_snr * absorption_weight
    return np.asarray(signal_level, dtype=np.float64) / snr


def apply_sensor_noise(cube: np.ndarray, wavelengths_nm: np.ndarray,
                       model: NoiseModel, rng: np.random.Generator) -> np.ndarray:
    """Apply the full noise model to a clean ``(bands, rows, cols)`` cube.

    The input is not modified; a new ``float32`` array is returned.
    """
    cube = np.asarray(cube, dtype=np.float64)
    bands, rows, cols = cube.shape
    mean_signal = cube.reshape(bands, -1).mean(axis=1)
    sigma = band_noise_sigma(wavelengths_nm, np.maximum(mean_signal, 1e-6), model)
    noisy = cube + rng.standard_normal(cube.shape) * sigma[:, None, None]

    if model.spectral_smoothing > 0:
        width = model.spectral_smoothing
        kernel = np.concatenate([np.arange(1, width + 2), np.arange(width, 0, -1)]).astype(float)
        kernel /= kernel.sum()
        pad = len(kernel) // 2
        padded = np.pad(noisy, ((pad, pad), (0, 0), (0, 0)), mode="edge")
        smoothed = np.zeros_like(noisy)
        for offset, weight in enumerate(kernel):
            smoothed += weight * padded[offset:offset + bands]
        noisy = smoothed

    if model.stripe_amplitude > 0:
        gains = 1.0 + model.stripe_amplitude * rng.standard_normal(cols)
        noisy *= gains[None, None, :]

    if model.dead_column_fraction > 0:
        n_dead = int(round(model.dead_column_fraction * cols))
        if n_dead:
            dead = rng.choice(cols, size=n_dead, replace=False)
            noisy[:, :, dead] = rng.uniform(0.0, 1e-3, size=(bands, rows, n_dead))

    return np.clip(noisy, 0.0, None).astype(np.float32)


__all__ = ["NoiseModel", "band_noise_sigma", "apply_sensor_noise"]
