"""Scene layout generation.

A scene is a ``(rows, cols)`` map of material labels plus per-pixel abundance
variation.  The layouts generated here mimic the paper's HYDICE collections:
a foliated background (forest with grass clearings), a road cutting through,
and a handful of mechanised vehicles, some sitting in the open and some under
camouflage netting.  The ground-truth vehicle mask is kept so the evaluation
can measure how strongly the fused composite enhances the targets
(Figure 3's "camouflaged vehicle ... significantly enhanced against its
background").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Canonical material ordering used for label encoding.
DEFAULT_MATERIALS: Tuple[str, ...] = (
    "forest", "grass", "soil", "road", "vehicle", "camouflage", "shadow",
)


class ScenePlacementError(ValueError):
    """A requested vehicle target cannot be placed in the scene.

    Raised when every candidate window for a vehicle footprint is already
    occupied (road, previously placed targets).  Only reachable on very
    small or very crowded scenes; the caller should either shrink the
    target count or grow the scene.  Historically the generator silently
    stamped an *overlapping* placement in this situation, and scenes under
    ~32px crashed outright in the quadrant-constrained draw -- both fixed
    by the typed error plus the quadrant fallback in ``_place``.
    """


@dataclass(frozen=True)
class VehiclePlacement:
    """Location and size (in pixels) of one target vehicle."""

    row: int
    col: int
    height: int = 4
    width: int = 7
    camouflaged: bool = False


@dataclass
class SceneLayout:
    """Material label map plus target ground truth.

    Attributes
    ----------
    labels:
        ``(rows, cols)`` integer map indexing into :attr:`materials`.
    materials:
        Material name per label value.
    abundance:
        ``(rows, cols)`` multiplicative brightness variation (canopy texture,
        illumination), centred on 1.0.
    vehicles:
        The placements used, for ground truth.
    """

    labels: np.ndarray
    materials: Tuple[str, ...]
    abundance: np.ndarray
    vehicles: List[VehiclePlacement] = field(default_factory=list)

    @property
    def rows(self) -> int:
        return self.labels.shape[0]

    @property
    def cols(self) -> int:
        return self.labels.shape[1]

    def material_index(self, name: str) -> int:
        try:
            return self.materials.index(name)
        except ValueError:
            raise KeyError(f"material {name!r} not present in scene") from None

    def mask(self, name: str) -> np.ndarray:
        """Boolean mask of pixels labelled with ``name``."""
        return self.labels == self.material_index(name)

    def target_mask(self) -> np.ndarray:
        """Pixels belonging to any vehicle (camouflaged ones included).

        Camouflaged vehicles are labelled ``"camouflage"`` in the label map,
        so the mask is reconstructed from the placements rather than labels.
        """
        mask = np.zeros_like(self.labels, dtype=bool)
        for vehicle in self.vehicles:
            r0, c0 = vehicle.row, vehicle.col
            mask[r0:r0 + vehicle.height, c0:c0 + vehicle.width] = True
        return mask

    def fractions(self) -> Dict[str, float]:
        """Fraction of scene pixels per material (sanity checks, reports)."""
        total = self.labels.size
        return {name: float(np.count_nonzero(self.labels == i)) / total
                for i, name in enumerate(self.materials)}


def target_capacity(rows: int, cols: int) -> int:
    """Vehicles a ``rows x cols`` scene reliably hosts (conservative bound).

    Placement draws footprints up to 5x8 with a 1px margin and must avoid
    the road and other targets, so very small scenes saturate quickly: a
    16x16 scene fits exactly one target, a 24x24 scene three.  Callers
    sizing random workloads (the parity fuzzer, the scenario library)
    should stay within this bound; :func:`generate_scene` itself raises
    :class:`ScenePlacementError` when a scene genuinely cannot host the
    targets asked of it.
    """
    return max(1, ((rows - 2) * (cols - 2)) // 160)


def _smooth_field(rng: np.random.Generator, rows: int, cols: int, scale: int) -> np.ndarray:
    """Cheap smooth random field via block noise + separable box blur."""
    coarse = rng.standard_normal((max(rows // scale, 1) + 2, max(cols // scale, 1) + 2))
    field_rows = np.repeat(coarse, scale, axis=0)[:rows + scale]
    field_full = np.repeat(field_rows, scale, axis=1)[:, :cols + scale]
    kernel = np.ones(scale, dtype=float) / scale
    blurred = np.apply_along_axis(lambda m: np.convolve(m, kernel, mode="same"), 0, field_full)
    blurred = np.apply_along_axis(lambda m: np.convolve(m, kernel, mode="same"), 1, blurred)
    return blurred[:rows, :cols]


def generate_scene(rows: int = 320, cols: int = 320, *, seed: int = 0,
                   vehicles: int = 3, camouflaged_vehicles: int = 1,
                   materials: Sequence[str] = DEFAULT_MATERIALS,
                   road: bool = True, clutter_fraction: float = 0.10) -> SceneLayout:
    """Generate a foliated scene with embedded vehicle targets.

    Parameters
    ----------
    rows, cols:
        Spatial size of the scene.
    seed:
        Seed of the deterministic layout.
    vehicles:
        Number of vehicles parked in the open.
    camouflaged_vehicles:
        Number of additional vehicles hidden under camouflage netting (one of
        them is placed in the lower-left quadrant, as in Figure 3).
    materials:
        Materials available for labelling; must contain at least
        ``forest``, ``grass``, ``vehicle`` and ``camouflage``.
    road:
        Whether to draw a road strip across the scene.
    clutter_fraction:
        Fraction of pixels re-labelled with a random *background* material
        (isolated bushes, bare patches, litter).  Real foliated scenes are
        heterogeneous at the pixel scale; the clutter also guarantees that
        every sub-cube of a distributed decomposition sees the full
        background material diversity, so the screening workload per pixel is
        nearly independent of the decomposition granularity.
    """
    if not 0.0 <= clutter_fraction < 1.0:
        raise ValueError("clutter_fraction must be in [0, 1)")
    if rows < 16 or cols < 16:
        raise ValueError("scene must be at least 16x16 pixels")
    materials = tuple(materials)
    for required in ("forest", "grass", "vehicle", "camouflage"):
        if required not in materials:
            raise ValueError(f"materials must include {required!r}")
    rng = np.random.default_rng(seed)

    labels = np.full((rows, cols), materials.index("forest"), dtype=np.int16)

    # Grass clearings: threshold a smooth random field.
    clearing_field = _smooth_field(rng, rows, cols, scale=max(8, rows // 10))
    labels[clearing_field > 0.6] = materials.index("grass")
    if "soil" in materials:
        labels[clearing_field > 1.1] = materials.index("soil")

    # Shadowed canopy along one edge of the clearings.
    if "shadow" in materials:
        shadow_field = np.roll(clearing_field, shift=3, axis=0)
        labels[(shadow_field > 0.6) & (clearing_field <= 0.6)] = materials.index("shadow")

    # Road: a gently sloping strip.
    if road and "road" in materials:
        col_positions = (np.linspace(0, cols - 1, rows)
                         + 8.0 * np.sin(np.linspace(0, 3.0, rows))).astype(int)
        half_width = max(1, cols // 80)
        for r in range(rows):
            c = int(np.clip(col_positions[r], 0, cols - 1))
            labels[r, max(0, c - half_width):min(cols, c + half_width + 1)] = \
                materials.index("road")

    # Pixel-scale background clutter (applied before the vehicles so targets
    # are never overwritten).
    if clutter_fraction > 0:
        background = [m for m in ("forest", "grass", "soil", "shadow") if m in materials]
        n_clutter = int(round(clutter_fraction * rows * cols))
        if n_clutter and background:
            flat = rng.choice(rows * cols, size=n_clutter, replace=False)
            choices = rng.integers(0, len(background), size=n_clutter)
            clutter_labels = np.array([materials.index(m) for m in background],
                                      dtype=labels.dtype)
            labels.reshape(-1)[flat] = clutter_labels[choices]

    placements: List[VehiclePlacement] = []

    def _window_free(r: int, c: int, height: int, width: int) -> bool:
        window = labels[r:r + height, c:c + width]
        # Avoid stacking vehicles on the road or on each other.
        if "road" in materials and np.any(window == materials.index("road")):
            return False
        return not (np.any(window == materials.index("vehicle"))
                    or np.any(window == materials.index("camouflage")))

    def _place(camouflaged: bool, forced_quadrant: Optional[str] = None) -> None:
        height = int(rng.integers(3, 6))
        width = int(rng.integers(5, 9))
        # The lower-left quadrant constraint (Figure 3) only holds when the
        # quadrant can actually contain the footprint; on smaller scenes the
        # draw falls back to the whole scene.  Scenes >= 32px always satisfy
        # the constraint, so their RNG consumption is unchanged.
        quadrant = forced_quadrant
        if quadrant == "lower_left" and (rows - height - 1 <= rows // 2
                                         or cols // 2 - width <= 1):
            quadrant = None
        found = False
        for _ in range(64):
            if quadrant == "lower_left":
                r = int(rng.integers(rows // 2, rows - height - 1))
                c = int(rng.integers(1, cols // 2 - width))
            else:
                r = int(rng.integers(1, rows - height - 1))
                c = int(rng.integers(1, cols - width - 1))
            if _window_free(r, c, height, width):
                found = True
                break
        if not found:
            # Random probing exhausted: fall back to a deterministic scan of
            # the same candidate range (no RNG consumed) so crowded-but-
            # placeable scenes still place, and genuinely full scenes raise
            # a typed error instead of silently stamping an overlap.
            if quadrant == "lower_left":
                row_range = range(rows // 2, rows - height - 1)
                col_range = range(1, cols // 2 - width)
            else:
                row_range = range(1, rows - height - 1)
                col_range = range(1, cols - width - 1)
            for r in row_range:
                for c in col_range:
                    if _window_free(r, c, height, width):
                        found = True
                        break
                if found:
                    break
            if not found:
                raise ScenePlacementError(
                    f"cannot place a {height}x{width} vehicle in the "
                    f"{rows}x{cols} scene: every candidate window is occupied "
                    f"by the road or existing targets; use a larger scene or "
                    f"fewer vehicles")
        label = materials.index("camouflage") if camouflaged else materials.index("vehicle")
        labels[r:r + height, c:c + width] = label
        placements.append(VehiclePlacement(row=r, col=c, height=height, width=width,
                                           camouflaged=camouflaged))

    for index in range(camouflaged_vehicles):
        _place(True, forced_quadrant="lower_left" if index == 0 else None)
    for _ in range(vehicles):
        _place(False)

    abundance = 1.0 + 0.08 * _smooth_field(rng, rows, cols, scale=max(4, rows // 32))
    abundance += 0.02 * rng.standard_normal((rows, cols))
    abundance = np.clip(abundance, 0.6, 1.4)

    return SceneLayout(labels=labels, materials=materials,
                       abundance=abundance.astype(np.float32), vehicles=placements)


__all__ = ["SceneLayout", "ScenePlacementError", "VehiclePlacement",
           "generate_scene", "target_capacity", "DEFAULT_MATERIALS"]
