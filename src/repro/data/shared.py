"""Zero-copy sharing of hyper-spectral cubes between processes.

The process-parallel backend (:mod:`repro.scp.process_backend`) runs the
manager and the workers in separate operating-system processes.  Shipping the
full data cube to the manager process by pickling it through a pipe would
copy hundreds of megabytes at paper scale, so :class:`SharedCube` places the
sample array in a POSIX shared-memory segment
(:mod:`multiprocessing.shared_memory`) instead.  Pickling a :class:`SharedCube`
transfers only a tiny :class:`SharedCubeHandle`; the receiving process maps
the same physical pages and reads the samples without any copy.

A :class:`SharedCube` *is a* :class:`~repro.data.cube.HyperspectralCube`, so
every consumer of a cube (the manager program, ``extract_subcube`` and so on)
works on it unchanged.  The creating process owns the segment: it must keep
the cube alive for the duration of the run and call :meth:`SharedCube.close`
(or use the cube as a context manager) to release the segment afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Tuple

import numpy as np

from .cube import CubeError, HyperspectralCube


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    On CPython < 3.13 merely *attaching* to an existing segment registers it
    with the resource tracker, which unlinks the segment when the attaching
    process exits -- destroying it for the creator and every other process
    (bpo-39959).  Only the creating process should own the segment's
    lifetime, so registration is suppressed here: natively via ``track=False``
    where available, otherwise by briefly disabling the tracker's hook.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class SharedCubeHandle:
    """Everything a process needs to attach to a shared cube.

    The handle is what actually travels through a pipe when a
    :class:`SharedCube` is pickled: the segment name plus the (small) shape,
    wavelength and metadata information.
    """

    name: str
    shape: Tuple[int, int, int]
    wavelengths_nm: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)


class SharedCube(HyperspectralCube):
    """A :class:`HyperspectralCube` whose samples live in shared memory.

    Create one with :meth:`from_cube` (copies the samples into a fresh
    segment exactly once) or :meth:`attach` (maps an existing segment with no
    copy at all).  Pickling produces an :meth:`attach` call on the receiving
    side, which is how the process backend hands the cube to the manager
    process for free.
    """

    def __init__(self, data: np.ndarray, wavelengths_nm: np.ndarray,
                 metadata: Dict[str, object], *,
                 shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        super().__init__(data, wavelengths_nm, metadata)

    # -------------------------------------------------------------- creation
    @classmethod
    def from_cube(cls, cube: HyperspectralCube) -> "SharedCube":
        """Copy ``cube``'s samples into a new shared-memory segment.

        Passing a :class:`SharedCube` returns it unchanged (sharing an
        already-shared cube must not duplicate the segment).
        """
        if isinstance(cube, SharedCube):
            return cube
        data = np.ascontiguousarray(cube.data, dtype=np.float32)
        shm = shared_memory.SharedMemory(create=True, size=max(data.nbytes, 1))
        view = np.ndarray(data.shape, dtype=np.float32, buffer=shm.buf)
        view[:] = data
        return cls(view, cube.wavelengths_nm.copy(), dict(cube.metadata),
                   shm=shm, owner=True)

    @classmethod
    def attach(cls, handle: SharedCubeHandle) -> "SharedCube":
        """Map an existing segment described by ``handle`` (zero copy)."""
        shm = _attach_untracked(handle.name)
        view = np.ndarray(tuple(handle.shape), dtype=np.float32, buffer=shm.buf)
        return cls(view, np.asarray(handle.wavelengths_nm), dict(handle.metadata),
                   shm=shm, owner=False)

    # -------------------------------------------------------------- identity
    @property
    def segment_name(self) -> str:
        """Operating-system name of the backing shared-memory segment."""
        return self._shm.name

    @property
    def is_owner(self) -> bool:
        """Whether this process created (and must unlink) the segment."""
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    def handle(self) -> SharedCubeHandle:
        """The picklable description other processes attach with."""
        if self._closed:
            raise CubeError("shared cube segment has been released")
        return SharedCubeHandle(name=self._shm.name,
                                shape=(self.bands, self.rows, self.cols),
                                wavelengths_nm=self.wavelengths_nm.copy(),
                                metadata=dict(self.metadata))

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the local mapping; the owner also destroys the segment.

        After closing, the cube's data may no longer be accessed.  Closing
        twice is harmless.
        """
        if self._closed:
            return
        self._closed = True
        # Drop the numpy view so the exported memoryview can be released.
        self.data = np.zeros((1, 1, 1), dtype=np.float32)
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a caller still holds a view
            return
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __enter__(self) -> "SharedCube":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- pickling
    def __reduce__(self):
        return (SharedCube.attach, (self.handle(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("owner" if self._owner else "attached")
        return (f"<SharedCube {self.bands}x{self.rows}x{self.cols} "
                f"segment={self._shm.name!r} {state}>")


def share_cube_params(params: Dict[str, object]) -> Tuple[Dict[str, object], list]:
    """Replace every :class:`HyperspectralCube` value with a :class:`SharedCube`.

    Returns the rewritten parameter dict plus the list of segments created
    here (which the caller must close once the run is over).  Used by the
    process backend so thread specifications never pickle bulk sample data.
    """
    created = []
    shared: Dict[str, object] = {}
    for key, value in params.items():
        if isinstance(value, HyperspectralCube) and not isinstance(value, SharedCube):
            cube = SharedCube.from_cube(value)
            created.append(cube)
            shared[key] = cube
        else:
            shared[key] = value
    return shared, created


__all__ = ["SharedCube", "SharedCubeHandle", "share_cube_params"]
