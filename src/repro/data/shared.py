"""Zero-copy sharing of hyper-spectral cubes and fusion outputs.

The process-parallel backend (:mod:`repro.scp.process_backend`) runs the
manager and the workers in separate operating-system processes.  Shipping the
full data cube to the manager process by pickling it through a pipe would
copy hundreds of megabytes at paper scale, so :class:`SharedCube` places the
sample array in a POSIX shared-memory segment
(:mod:`multiprocessing.shared_memory`) instead.  Pickling a :class:`SharedCube`
transfers only a tiny :class:`SharedCubeHandle`; the receiving process maps
the same physical pages and reads the samples without any copy.

A :class:`SharedCube` *is a* :class:`~repro.data.cube.HyperspectralCube`, so
every consumer of a cube (the manager program, ``extract_subcube`` and so on)
works on it unchanged.  The creating process owns the segment: it must keep
the cube alive for the duration of the run and call :meth:`SharedCube.close`
(or use the cube as a context manager) to release the segment afterwards.

Output placements
-----------------
:class:`SharedComposite` is the mirror image for fusion *outputs*: one
preallocated segment holding a run's component and composite arrays, into
which projection/colour-map stage tasks write their tiles directly
(:func:`write_output_tile`).  The tile results then travel back to the
driver as tiny row-range acknowledgements instead of pickled arrays -- the
streaming engine's zero-copy result path.  Placements are *pin-counted*:
a pinned placement (one an in-flight run is writing into) can neither be
evicted from an :class:`OutputPool` nor released early by ``close``.

Leak-proofing
-------------
Every segment *created* by this process is recorded in a process-wide
:class:`SegmentRegistry`.  ``close`` unregisters; whatever is left --
crashed runs, abandoned streams, sessions never closed -- is unlinked by
the registry's ``atexit`` sweep, so no ``/dev/shm`` residue and no
``resource_tracker`` shutdown warnings can outlive the interpreter.  An
owner's ``close`` also unlinks even when a stray numpy view still pins the
local mapping (the pages stay valid for that view; the *name* is gone), so
a forgotten reference can no longer leak a whole segment.
"""

from __future__ import annotations

import atexit
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Callable, Dict, Iterator, List, Protocol, Tuple

import numpy as np

from ..forksafe import ForkSafeLock
from .cube import CubeError, HyperspectralCube


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    On CPython < 3.13 merely *attaching* to an existing segment registers it
    with the resource tracker, which unlinks the segment when the attaching
    process exits -- destroying it for the creator and every other process
    (bpo-39959).  Only the creating process should own the segment's
    lifetime, so registration is suppressed here: natively via ``track=False``
    where available, otherwise by briefly disabling the tracker's hook.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


# ---------------------------------------------------------------------------
# Leak-proof segment registry
# ---------------------------------------------------------------------------

class _SegmentOwner(Protocol):
    """What the registry needs from an owning object: a name, a closer."""

    @property
    def segment_name(self) -> str: ...

    def close(self, *, _force: bool = False) -> None: ...


class SegmentRegistry:
    """Process-wide record of every shared-memory segment this process owns.

    Owning objects (:class:`SharedCube`, :class:`SharedComposite`) register
    at creation and unregister from ``close``; :meth:`sweep` force-closes
    whatever is left.  The module installs one instance plus an ``atexit``
    sweep, so segments abandoned by crashed runs or never-closed sessions
    are unlinked at interpreter exit instead of leaking into ``/dev/shm``
    (and instead of tripping the resource tracker's shutdown warnings).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: segment name -> owning object (strong ref: a leaked owner must
        #: stay reachable so the sweep can still close it).
        self._owners: Dict[str, object] = {}

    def register(self, owner: _SegmentOwner) -> None:
        with self._lock:
            self._owners[owner.segment_name] = owner

    def unregister(self, name: str) -> None:
        with self._lock:
            self._owners.pop(name, None)

    def owned_segment_names(self) -> Tuple[str, ...]:
        """Names of the segments currently registered (test/diagnostic aid)."""
        with self._lock:
            return tuple(self._owners)

    def sweep(self) -> int:
        """Force-close every registered segment; returns how many were swept.

        Used as the ``atexit`` hook and by session teardown paths.  Pin
        counts are ignored -- by the time a sweep runs, whoever held the
        pins is gone.
        """
        with self._lock:
            leftovers = list(self._owners.values())
            self._owners.clear()
        for owner in leftovers:
            try:
                owner.close(_force=True)
            # The atexit sweep must never raise: an owner it cannot close
            # is beyond saving, and failing here would mask the real exit.
            # repro: allow[RPL005] sweep must never raise
            except Exception:  # pragma: no cover
                pass
        return len(leftovers)


#: The process-wide registry; swept at interpreter exit.
_registry = SegmentRegistry()
atexit.register(_registry.sweep)


def owned_segment_names() -> Tuple[str, ...]:
    """Shared-memory segments this process currently owns (diagnostics)."""
    return _registry.owned_segment_names()


def sweep_owned_segments() -> int:
    """Force-release every segment this process still owns; returns count.

    The post-crash safety net: after a run that may have abandoned
    placements (worker SIGKILL, interrupted stream), calling this guarantees
    no ``/dev/shm`` residue regardless of which cleanup path was skipped.
    """
    return _registry.sweep()


@dataclass(frozen=True)
class SharedCubeHandle:
    """Everything a process needs to attach to a shared cube.

    The handle is what actually travels through a pipe when a
    :class:`SharedCube` is pickled: the segment name plus the (small) shape,
    wavelength and metadata information.
    """

    name: str
    shape: Tuple[int, int, int]
    wavelengths_nm: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)


class SharedCube(HyperspectralCube):
    """A :class:`HyperspectralCube` whose samples live in shared memory.

    Create one with :meth:`from_cube` (copies the samples into a fresh
    segment exactly once) or :meth:`attach` (maps an existing segment with no
    copy at all).  Pickling produces an :meth:`attach` call on the receiving
    side, which is how the process backend hands the cube to the manager
    process for free.
    """

    def __init__(self, data: np.ndarray, wavelengths_nm: np.ndarray,
                 metadata: Dict[str, object], *,
                 shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        super().__init__(data, wavelengths_nm, metadata)
        if owner:
            _registry.register(self)

    # -------------------------------------------------------------- creation
    @classmethod
    def from_cube(cls, cube: HyperspectralCube) -> "SharedCube":
        """Copy ``cube``'s samples into a new shared-memory segment.

        Passing a :class:`SharedCube` returns it unchanged (sharing an
        already-shared cube must not duplicate the segment).
        """
        if isinstance(cube, SharedCube):
            return cube
        data = np.ascontiguousarray(cube.data, dtype=np.float32)
        shm = shared_memory.SharedMemory(create=True, size=max(data.nbytes, 1))
        view = np.ndarray(data.shape, dtype=np.float32, buffer=shm.buf)
        view[:] = data
        return cls(view, cube.wavelengths_nm.copy(), dict(cube.metadata),
                   shm=shm, owner=True)

    @classmethod
    def attach(cls, handle: SharedCubeHandle) -> "SharedCube":
        """Map an existing segment described by ``handle`` (zero copy)."""
        shm = _attach_untracked(handle.name)
        view = np.ndarray(tuple(handle.shape), dtype=np.float32, buffer=shm.buf)
        return cls(view, np.asarray(handle.wavelengths_nm), dict(handle.metadata),
                   shm=shm, owner=False)

    # -------------------------------------------------------------- identity
    @property
    def segment_name(self) -> str:
        """Operating-system name of the backing shared-memory segment."""
        return self._shm.name

    @property
    def is_owner(self) -> bool:
        """Whether this process created (and must unlink) the segment."""
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    def handle(self) -> SharedCubeHandle:
        """The picklable description other processes attach with."""
        if self._closed:
            raise CubeError("shared cube segment has been released")
        return SharedCubeHandle(name=self._shm.name,
                                shape=(self.bands, self.rows, self.cols),
                                wavelengths_nm=self.wavelengths_nm.copy(),
                                metadata=dict(self.metadata))

    # ------------------------------------------------------------- lifecycle
    def close(self, *, _force: bool = False) -> None:
        """Release the local mapping; the owner also destroys the segment.

        After closing, the cube's data may no longer be accessed.  Closing
        twice is harmless.  The owner unlinks the segment *even when* a
        stray numpy view keeps the local mapping alive: the view's pages
        stay valid, but the operating-system name is released, so a
        forgotten reference can no longer leak the segment (``_force`` is
        accepted for registry-sweep symmetry with :class:`SharedComposite`).
        """
        if self._closed:
            return
        self._closed = True
        # Drop the numpy view so the exported memoryview can be released.
        self.data = np.zeros((1, 1, 1), dtype=np.float32)
        name = self._shm.name
        try:
            self._shm.close()
        except BufferError:  # a caller still holds a view; unlink regardless
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            _registry.unregister(name)

    def __enter__(self) -> "SharedCube":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- pickling
    def __reduce__(self) -> Tuple[Callable[[SharedCubeHandle], "SharedCube"],
                                  Tuple[SharedCubeHandle]]:
        return (SharedCube.attach, (self.handle(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("owner" if self._owner else "attached")
        return (f"<SharedCube {self.bands}x{self.rows}x{self.cols} "
                f"segment={self._shm.name!r} {state}>")


# ---------------------------------------------------------------------------
# Output placements: SharedComposite
# ---------------------------------------------------------------------------

#: Element type of the output arrays; matches the float64 accumulation of
#: :func:`~repro.core.partition.reassemble_composite`, so the zero-copy path
#: is bit-identical to the reassembled spool path.
_OUTPUT_DTYPE = np.float64


@dataclass(frozen=True)
class SharedCompositeHandle:
    """Everything a worker needs to write tiles into an output placement."""

    name: str
    rows: int
    cols: int
    n_components: int


class SharedComposite:
    """A run's output arrays, preallocated in one shared-memory segment.

    Layout: a ``(rows, cols, n_components)`` float64 component array followed
    by a ``(rows, cols, 3)`` float64 colour composite.  The driver creates
    the placement (:meth:`create`), ships the tiny :meth:`handle` with each
    projection task, and the workers write their tiles straight into the
    mapped pages (:func:`write_output_tile`) -- the result path carries row
    ranges, not pixel data.

    Placements are pin-counted.  :meth:`pin` marks the placement in use by
    an in-flight run; :meth:`close` on a pinned placement is *deferred* (it
    completes when the last pin is released) so a concurrent stream can
    never unlink a segment another run is still writing.  ``close`` is
    idempotent, including after the segment was already unlinked by a
    crashed peer (close-after-crash).
    """

    def __init__(self, shm: shared_memory.SharedMemory, rows: int, cols: int,
                 n_components: int, *, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._pins = 0
        self._close_deferred = False
        self._lock = threading.Lock()
        self.rows = rows
        self.cols = cols
        self.n_components = n_components
        itemsize = np.dtype(_OUTPUT_DTYPE).itemsize
        split = rows * cols * n_components * itemsize
        self.components = np.ndarray((rows, cols, n_components),
                                     dtype=_OUTPUT_DTYPE, buffer=shm.buf)
        self.composite = np.ndarray((rows, cols, 3), dtype=_OUTPUT_DTYPE,
                                    buffer=shm.buf, offset=split)
        if owner:
            _registry.register(self)

    @staticmethod
    def _nbytes(rows: int, cols: int, n_components: int) -> int:
        itemsize = np.dtype(_OUTPUT_DTYPE).itemsize
        return rows * cols * (n_components + 3) * itemsize

    # -------------------------------------------------------------- creation
    @classmethod
    def create(cls, rows: int, cols: int, n_components: int = 3) -> "SharedComposite":
        """Allocate a fresh output segment sized for one run's outputs."""
        if rows < 1 or cols < 1 or n_components < 1:
            raise ValueError("output placement dimensions must be >= 1")
        shm = shared_memory.SharedMemory(
            create=True, size=max(cls._nbytes(rows, cols, n_components), 1))
        return cls(shm, rows, cols, n_components, owner=True)

    @classmethod
    def attach(cls, handle: SharedCompositeHandle) -> "SharedComposite":
        """Map an existing output segment described by ``handle`` (zero copy)."""
        shm = _attach_untracked(handle.name)
        return cls(shm, handle.rows, handle.cols, handle.n_components, owner=False)

    # -------------------------------------------------------------- identity
    @property
    def segment_name(self) -> str:
        return self._shm.name

    @property
    def is_owner(self) -> bool:
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pins(self) -> int:
        with self._lock:
            return self._pins

    def handle(self) -> SharedCompositeHandle:
        """The picklable description workers attach and write through."""
        if self._closed:
            raise CubeError("output placement segment has been released")
        return SharedCompositeHandle(name=self._shm.name, rows=self.rows,
                                     cols=self.cols,
                                     n_components=self.n_components)

    def matches(self, rows: int, cols: int, n_components: int) -> bool:
        """Whether this placement can hold a run of the given output shape."""
        return (self.rows, self.cols, self.n_components) == (rows, cols, n_components)

    # -------------------------------------------------------------- pinning
    def pin(self) -> "SharedComposite":
        """Mark the placement in use by an in-flight run."""
        with self._lock:
            if self._closed:
                raise CubeError("cannot pin a released output placement")
            self._pins += 1
        return self

    def unpin(self) -> None:
        """Release one pin; performs any close deferred while pinned."""
        do_close = False
        with self._lock:
            if self._pins > 0:
                self._pins -= 1
            do_close = self._close_deferred and self._pins == 0
        if do_close:
            self.close()

    # -------------------------------------------------------------- writing
    def write_rows(self, row_start: int, row_stop: int,
                   components_block: np.ndarray,
                   composite_block: np.ndarray) -> None:
        """Write one tile's rows into both output arrays.

        Writers own disjoint row ranges (the driver's tile plan partitions
        the rows), so no synchronisation is needed; re-writing a range after
        a crash retry is idempotent because stage tasks are deterministic.
        """
        if self._closed:
            raise CubeError("output placement segment has been released")
        if not 0 <= row_start < row_stop <= self.rows:
            raise ValueError(f"tile rows {row_start}:{row_stop} out of range "
                             f"for a {self.rows}-row placement")
        self.components[row_start:row_stop] = components_block
        self.composite[row_start:row_stop] = composite_block

    # ------------------------------------------------------------- lifecycle
    def close(self, *, _force: bool = False) -> None:
        """Release the mapping; the owner also unlinks the segment.

        Idempotent.  While pinned the close is deferred to the last
        :meth:`unpin` (unless ``_force``, the registry-sweep path, where the
        pin holders are already gone).
        """
        with self._lock:
            if self._closed:
                return
            if self._pins > 0 and not _force:
                self._close_deferred = True
                return
            self._closed = True
        name = self._shm.name
        # Drop the views so the exported memoryviews can be released.
        self.components = np.zeros((1, 1, 1), dtype=_OUTPUT_DTYPE)
        self.composite = np.zeros((1, 1, 1), dtype=_OUTPUT_DTYPE)
        try:
            self._shm.close()
        except BufferError:  # a caller still holds a view; unlink regardless
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked (close-after-crash)
                pass
            _registry.unregister(name)
            # When writers ran in this very process (thread executors), the
            # attachment cache still maps the now-unlinked pages; drop it so
            # the memory is genuinely released, not just nameless.
            _evict_attachment(name)

    def __enter__(self) -> "SharedComposite":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- pickling
    def __reduce__(self) -> Tuple[
            Callable[[SharedCompositeHandle], "SharedComposite"],
            Tuple[SharedCompositeHandle]]:
        return (SharedComposite.attach, (self.handle(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("owner" if self._owner else "attached")
        return (f"<SharedComposite {self.rows}x{self.cols} "
                f"n_components={self.n_components} pins={self._pins} "
                f"segment={self._shm.name!r} {state}>")


# ---------------------------------------------------------------------------
# Child-side attachment cache
# ---------------------------------------------------------------------------

#: Output segments a worker process has attached, keyed by segment name.
#: Stage tasks of one run all target the same placement, so caching the
#: mapping turns per-task attach syscalls into dictionary hits.  Bounded:
#: a cached mapping keeps the pages of an already-unlinked segment alive
#: until eviction, so the cap bounds that retained memory.
_ATTACHMENTS: "OrderedDict[str, SharedComposite]" = OrderedDict()
_ATTACHMENTS_LIMIT = 8
#: Fork-safe (RPL003): a forked pool child gets a released lock and an
#: empty cache -- entries inherited mid-mutation (or pinned by parent
#: threads that do not exist in the child) must never be trusted.
_attachments_lock = ForkSafeLock(on_reset=_ATTACHMENTS.clear)


def _attach_output(handle: SharedCompositeHandle) -> SharedComposite:
    """Cached attach; the returned placement is *pinned* for the caller.

    The pin is taken under the cache lock and eviction only considers
    unpinned entries, so a concurrent writer's placement can never be
    closed out from under its in-progress :meth:`~SharedComposite.
    write_rows` -- the cache transiently exceeds its bound instead when
    every entry is in use.
    """
    evicted: List[SharedComposite] = []
    with _attachments_lock:
        cached = _ATTACHMENTS.get(handle.name)
        if cached is None or cached.closed:
            cached = SharedComposite.attach(handle)
            _ATTACHMENTS[handle.name] = cached
        else:
            _ATTACHMENTS.move_to_end(handle.name)
        cached.pin()
        while len(_ATTACHMENTS) > _ATTACHMENTS_LIMIT:
            for name in _ATTACHMENTS:
                if _ATTACHMENTS[name].pins == 0:
                    evicted.append(_ATTACHMENTS.pop(name))
                    break
            else:  # everything pinned by in-progress writes
                break
    for stale in evicted:
        stale.close()
    return cached


def write_output_tile(handle: SharedCompositeHandle, row_start: int,
                      row_stop: int, components_block: np.ndarray,
                      composite_block: np.ndarray) -> Tuple[int, int]:
    """Worker-side: write one projected tile into the output placement.

    Returns the written row range -- the only payload that travels back to
    the driver on the zero-copy result path.
    """
    placement = _attach_output(handle)  # pinned for the duration of the write
    try:
        placement.write_rows(row_start, row_stop, components_block,
                             composite_block)
    finally:
        placement.unpin()
    return row_start, row_stop


@contextmanager
def output_tile_views(handle: SharedCompositeHandle, row_start: int,
                      row_stop: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Worker-side: the mapped views of one tile's output rows, pinned.

    Yields ``(components_view, composite_view)`` pointing straight into the
    shared placement, so a compute kernel's ``out=`` path writes the tile
    without the compute-then-copy of :func:`write_output_tile`.  The
    placement stays pinned (attach-cached, safe against eviction) for the
    duration of the ``with`` block; the same disjoint-row-ownership and
    deterministic-retry arguments apply -- rewriting a killed tile's range
    produces the same bytes.
    """
    placement = _attach_output(handle)
    try:
        if placement.closed:
            raise CubeError("output placement segment has been released")
        if not 0 <= row_start < row_stop <= placement.rows:
            raise ValueError(f"tile rows {row_start}:{row_stop} out of range "
                             f"for a {placement.rows}-row placement")
        yield (placement.components[row_start:row_stop],
               placement.composite[row_start:row_stop])
    finally:
        placement.unpin()


def _evict_attachment(name: str) -> None:
    """Drop one cached attachment (the owner unlinked its segment)."""
    with _attachments_lock:
        cached = _ATTACHMENTS.pop(name, None)
    if cached is not None:
        cached.close()


def release_attachments() -> int:
    """Close every cached output attachment; returns how many were released.

    Called from a pool child's exit path so worker processes drop their
    mappings deterministically instead of relying on process teardown.
    """
    with _attachments_lock:
        cached = list(_ATTACHMENTS.values())
        _ATTACHMENTS.clear()
    for placement in cached:
        placement.close()
    return len(cached)


# ---------------------------------------------------------------------------
# Bounded pool of reusable output placements
# ---------------------------------------------------------------------------

class OutputPool:
    """Reusable :class:`SharedComposite` segments for a stream of runs.

    A streaming session fuses many cubes of (typically) the same shape;
    allocating and unlinking an output segment per run would churn
    ``/dev/shm``.  The pool keeps up to ``max_segments`` placements alive
    and hands out an *unpinned, shape-matching* one when available --
    pinned placements (in use by a concurrent stream) are never reissued
    and never evicted, so two overlapping runs always write to distinct
    segments.
    """

    DEFAULT_MAX_SEGMENTS = 4

    def __init__(self, max_segments: int = DEFAULT_MAX_SEGMENTS) -> None:
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self._max_segments = max_segments
        self._lock = threading.Lock()
        self._segments: List[SharedComposite] = []
        self._closed = False

    @property
    def segments(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def closed(self) -> bool:
        return self._closed

    def acquire(self, rows: int, cols: int, n_components: int = 3) -> SharedComposite:
        """Borrow a pinned placement of the requested output shape."""
        with self._lock:
            if self._closed:
                raise CubeError("output pool is closed")
            for placement in self._segments:
                if (placement.pins == 0 and not placement.closed
                        and placement.matches(rows, cols, n_components)):
                    return placement.pin()
        placement = SharedComposite.create(rows, cols, n_components).pin()
        with self._lock:
            if self._closed:  # closed underneath the allocation
                placement.unpin()
                placement.close()
                raise CubeError("output pool is closed")
            self._segments.append(placement)
        return placement

    def release(self, placement: SharedComposite) -> None:
        """Return a borrowed placement; evicts over-bound idle segments.

        Only for runs that *completed* (every writer acknowledged): a
        released segment may be reissued to the next run immediately.  A
        failed run must :meth:`discard` instead.
        """
        placement.unpin()
        evicted: List[SharedComposite] = []
        with self._lock:
            over = len(self._segments) - self._max_segments
            if over > 0:
                for candidate in list(self._segments):
                    if candidate.pins == 0:
                        self._segments.remove(candidate)
                        evicted.append(candidate)
                        over -= 1
                        if over <= 0:
                            break
        for stale in evicted:
            stale.close()

    def discard(self, placement: SharedComposite) -> None:
        """Retire a borrowed placement whose run failed.

        A failed run may leave straggler stage tasks still writing into the
        segment (worker processes are not cancelled when the driver gives
        up), so the segment must never be reissued to another run --
        reissuing it would let those stragglers corrupt the next composite.
        It is unlinked instead; stragglers keep writing into their own
        still-valid (but now anonymous) mapping, harmlessly.
        """
        with self._lock:
            if placement in self._segments:
                self._segments.remove(placement)
        placement.unpin()
        placement.close()

    def close(self) -> None:
        """Release every pooled segment (idempotent).

        Segments still pinned at this point belong to runs that were
        abandoned rather than completed (the session closes its stage
        executor first), so they are force-closed: leak-proofing wins.
        """
        if self._closed:
            return
        with self._lock:
            self._closed = True
            segments = list(self._segments)
            self._segments.clear()
        for placement in segments:
            placement.close(_force=True)

    def __enter__(self) -> "OutputPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def share_cube_params(params: Dict[str, object]) -> Tuple[Dict[str, object], list]:
    """Replace every :class:`HyperspectralCube` value with a :class:`SharedCube`.

    Returns the rewritten parameter dict plus the list of segments created
    here (which the caller must close once the run is over).  Used by the
    process backend so thread specifications never pickle bulk sample data.
    """
    created = []
    shared: Dict[str, object] = {}
    for key, value in params.items():
        if isinstance(value, HyperspectralCube) and not isinstance(value, SharedCube):
            cube = SharedCube.from_cube(value)
            created.append(cube)
            shared[key] = cube
        else:
            shared[key] = value
    return shared, created


__all__ = ["SharedCube", "SharedCubeHandle", "SharedComposite",
           "SharedCompositeHandle", "OutputPool", "SegmentRegistry",
           "share_cube_params", "write_output_tile", "output_tile_views",
           "release_attachments",
           "owned_segment_names", "sweep_owned_segments"]
