"""Synthetic spectral signature library.

The HYDICE scenes of the paper are "foliated scenes ... contain[ing]
mechanized vehicles sitting in open fields as well as under camouflage",
collected between 400 nm and 2.5 um.  The fusion algorithm does not depend
on radiometric fidelity -- only on the *relative* spectral structure: strong
inter-band correlation within a material, distinctive shapes between
materials, and rare target materials embedded in a dominant background.

The signatures below are smooth analytic reflectance curves built from a few
Gaussian features that capture the well-known qualitative behaviour of each
material class (chlorophyll red edge and near-infrared plateau for
vegetation, water-absorption dips near 1400/1900 nm, flat low reflectance
for asphalt and painted metal, an intermediate mixed curve for camouflage
netting).  They are deliberately simple, deterministic and fast to evaluate
on arbitrary wavelength grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

#: Wavelength coverage of the HYDICE instrument, nanometres.
HYDICE_MIN_NM = 400.0
HYDICE_MAX_NM = 2500.0


def _gauss(wl: np.ndarray, centre: float, width: float, height: float) -> np.ndarray:
    return height * np.exp(-0.5 * ((wl - centre) / width) ** 2)


def _sigmoid(wl: np.ndarray, centre: float, width: float) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-(wl - centre) / width))


def _water_absorption(wl: np.ndarray, depth: float = 0.55) -> np.ndarray:
    """Multiplicative atmospheric/water absorption dips near 1400 and 1900 nm."""
    dips = (_gauss(wl, 1400.0, 45.0, depth) + _gauss(wl, 1900.0, 55.0, depth)
            + _gauss(wl, 2500.0, 120.0, 0.3 * depth))
    return np.clip(1.0 - dips, 0.05, 1.0)


@dataclass(frozen=True)
class SpectralSignature:
    """A named reflectance curve.

    Attributes
    ----------
    name:
        Material name, used as the scene label.
    reflectance_fn:
        Callable mapping a wavelength array (nm) to reflectance in [0, 1].
    """

    name: str
    reflectance_fn: Callable[[np.ndarray], np.ndarray]

    def reflectance(self, wavelengths_nm: Sequence[float]) -> np.ndarray:
        wl = np.asarray(wavelengths_nm, dtype=np.float64)
        values = np.asarray(self.reflectance_fn(wl), dtype=np.float64)
        return np.clip(values, 0.0, 1.0)


# --------------------------------------------------------------------------
# Material definitions
# --------------------------------------------------------------------------

def _vegetation(wl: np.ndarray) -> np.ndarray:
    # Low visible reflectance with a small green peak, sharp red edge at
    # ~720 nm, high NIR plateau, then declining SWIR with water absorption.
    visible = 0.06 + _gauss(wl, 550.0, 40.0, 0.08)
    nir_plateau = 0.48 * _sigmoid(wl, 720.0, 18.0)
    swir_decline = 1.0 - 0.35 * _sigmoid(wl, 1500.0, 250.0)
    return (visible + nir_plateau) * swir_decline * _water_absorption(wl, 0.6)


def _dry_grass(wl: np.ndarray) -> np.ndarray:
    base = 0.12 + 0.28 * _sigmoid(wl, 700.0, 60.0)
    cellulose = _gauss(wl, 2100.0, 120.0, -0.06)
    return (base + cellulose) * _water_absorption(wl, 0.4)


def _soil(wl: np.ndarray) -> np.ndarray:
    # Monotonically rising reflectance typical of dry soil, clay feature ~2200.
    rise = 0.10 + 0.35 * _sigmoid(wl, 900.0, 350.0)
    clay = _gauss(wl, 2200.0, 60.0, -0.05)
    return (rise + clay) * _water_absorption(wl, 0.35)


def _asphalt(wl: np.ndarray) -> np.ndarray:
    return (0.07 + 0.04 * _sigmoid(wl, 1200.0, 500.0)) * _water_absorption(wl, 0.25)


def _vehicle_paint(wl: np.ndarray) -> np.ndarray:
    # Olive-drab paint: modest green reflectance, *no* red edge, a broad
    # absorption near 870 nm from the pigment, flat and low in the SWIR.
    green = _gauss(wl, 560.0, 45.0, 0.10)
    pigment = _gauss(wl, 870.0, 90.0, -0.05)
    base = 0.10 + 0.05 * _sigmoid(wl, 1000.0, 400.0)
    return (base + green + pigment) * _water_absorption(wl, 0.3)


def _camouflage_net(wl: np.ndarray) -> np.ndarray:
    # Camouflage netting mimics vegetation in the visible but lacks the full
    # NIR plateau and the deep water-absorption structure of live foliage --
    # this is precisely the difference the spectral screening preserves.
    fake_vegetation = 0.07 + _gauss(wl, 550.0, 45.0, 0.07) + 0.22 * _sigmoid(wl, 730.0, 30.0)
    fabric = 0.10 * _sigmoid(wl, 1600.0, 300.0)
    return (fake_vegetation + fabric) * _water_absorption(wl, 0.35)


def _water(wl: np.ndarray) -> np.ndarray:
    return 0.08 * np.exp(-(wl - HYDICE_MIN_NM) / 500.0) + 0.01


def _shadow(wl: np.ndarray) -> np.ndarray:
    return 0.25 * _vegetation(wl)


_LIBRARY: Dict[str, SpectralSignature] = {
    sig.name: sig for sig in [
        SpectralSignature("forest", _vegetation),
        SpectralSignature("grass", _dry_grass),
        SpectralSignature("soil", _soil),
        SpectralSignature("road", _asphalt),
        SpectralSignature("vehicle", _vehicle_paint),
        SpectralSignature("camouflage", _camouflage_net),
        SpectralSignature("water", _water),
        SpectralSignature("shadow", _shadow),
    ]
}


def available_materials() -> List[str]:
    """Names of all materials in the built-in library."""
    return sorted(_LIBRARY)


def get_signature(name: str) -> SpectralSignature:
    """Look up a signature by material name."""
    try:
        return _LIBRARY[name]
    except KeyError:
        raise KeyError(f"unknown material {name!r}; available: {available_materials()}") from None


def signature_matrix(names: Sequence[str], wavelengths_nm: Sequence[float]) -> np.ndarray:
    """Stack reflectance curves into a ``(len(names), bands)`` matrix."""
    wl = np.asarray(wavelengths_nm, dtype=np.float64)
    return np.stack([get_signature(name).reflectance(wl) for name in names])


def spectral_angle(a: np.ndarray, b: np.ndarray) -> float:
    """Spectral angle (radians) between two spectra -- the paper's screening metric."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom == 0.0:
        return np.pi / 2
    cos = float(np.dot(a, b)) / denom
    return float(np.arccos(np.clip(cos, -1.0, 1.0)))


__all__ = [
    "HYDICE_MIN_NM",
    "HYDICE_MAX_NM",
    "SpectralSignature",
    "available_materials",
    "get_signature",
    "signature_matrix",
    "spectral_angle",
]
