"""Reusable experiment runners.

Each module in this package regenerates one of the paper's evaluation
artefacts programmatically (the benchmark harness and the command-line
interface are thin wrappers around them):

* :mod:`.figure4` -- speed-up with and without resiliency,
* :mod:`.figure5` -- granularity control and the tail-off sweep,
* :mod:`.shared_memory` -- the shared-memory multiprocessor ablation,
* :mod:`.measured` -- measured wall-clock speed-up on the process backend.
"""

from .figure4 import Figure4Result, run_figure4
from .figure5 import Figure5Result, run_figure5
from .measured import (MeasuredSpeedupResult, available_cpus,
                       run_measured_speedup)
from .shared_memory import SharedMemoryResult, run_shared_memory_comparison

__all__ = [
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "MeasuredSpeedupResult",
    "available_cpus",
    "run_measured_speedup",
    "SharedMemoryResult",
    "run_shared_memory_comparison",
]
