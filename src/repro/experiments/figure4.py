"""Figure 4 experiment: speed-up with and without resiliency.

Runs the distributed spectral-screening PCT over a sweep of worker counts on
the simulated Sun/100BaseT cluster, once without resiliency and once with
every worker replicated to level 2, and derives the quantities the paper
reports: the two timing series, speed-up/efficiency, and the decomposition of
the resilient run's extra cost into the replication factor and the protocol
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..analysis.figures import figure4_chart
from ..analysis.report import figure4_table, overhead_table
from ..analysis.speedup import (OverheadDecomposition, SpeedupCurve,
                                mean_protocol_overhead, overhead_decomposition)
from ..config import PAPER_SETUP, FusionConfig, PartitionConfig, ResilienceConfig
from ..api.facade import fuse
from ..data.cube import HyperspectralCube


@dataclass
class Figure4Result:
    """Everything the Figure 4 experiment produces.

    Attributes
    ----------
    plain / resilient:
        Timing curves (virtual seconds vs. worker count).
    decompositions:
        Per-processor-count overhead decomposition (replication + protocols).
    per_run_metrics:
        ``(workers, resilient?) -> RunMetrics`` for deeper inspection.
    """

    plain: SpeedupCurve
    resilient: SpeedupCurve
    replication_level: int
    decompositions: List[OverheadDecomposition] = field(default_factory=list)
    per_run_metrics: Dict = field(default_factory=dict)

    # ------------------------------------------------------------- summaries
    def mean_protocol_overhead(self) -> float:
        return mean_protocol_overhead(self.decompositions)

    def worst_efficiency(self) -> float:
        return self.plain.worst_efficiency()

    def table(self) -> str:
        return figure4_table(self.plain, self.resilient,
                             replication_level=self.replication_level)

    def overhead_report(self) -> str:
        return overhead_table(self.decompositions)

    def chart(self) -> str:
        return figure4_chart(self.plain, self.resilient)

    def report(self) -> str:
        """The full Figure 4 report: table, chart and overhead decomposition."""
        return "\n\n".join([
            self.table(),
            self.chart(),
            self.overhead_report(),
            (f"mean protocol overhead beyond replication: "
             f"{self.mean_protocol_overhead():+.1%} (paper: approximately +10%)"),
            (f"worst-case fraction of linear speed-up (no resiliency): "
             f"{self.worst_efficiency():.2f} (paper: within ~20% of linear)"),
        ])


def run_figure4(cube: HyperspectralCube, *,
                processors: Sequence[int] = PAPER_SETUP.figure4_processors,
                subcubes: int = 32,
                replication_level: int = PAPER_SETUP.resiliency_level,
                execute_replicas: bool = False,
                prefetch: int = 2) -> Figure4Result:
    """Run the Figure 4 sweep on ``cube``.

    Parameters
    ----------
    cube:
        The hyper-spectral collection to fuse (the paper uses the 210-channel
        HYDICE set).
    processors:
        Worker counts to sweep (the paper uses 1, 2, 4, 8, 16).
    subcubes:
        Decomposition used for every point; fixed so the total work is
        identical across the sweep.
    replication_level:
        Resiliency level of the replicated series (2 in the paper).
    execute_replicas:
        Whether replica computations are re-executed on the host (True) or
        cloned (False); virtual-time accounting is identical either way.
    """
    plain_curve = SpeedupCurve("no resiliency")
    resilient_curve = SpeedupCurve(f"resiliency level {replication_level}")
    per_run_metrics: Dict = {}

    for workers in processors:
        partition = PartitionConfig(workers=workers, subcubes=max(subcubes, workers))
        plain_config = FusionConfig(partition=partition)
        plain_outcome = fuse(cube, engine="distributed", config=plain_config,
                             prefetch=prefetch)
        plain_curve.add(workers, plain_outcome.elapsed_seconds)
        per_run_metrics[(workers, False)] = plain_outcome.metrics

        resilient_config = plain_config.with_resilience(ResilienceConfig(
            replication_level=replication_level, execute_replicas=execute_replicas))
        resilient_outcome = fuse(cube, engine="resilient", config=resilient_config,
                                 prefetch=prefetch)
        resilient_curve.add(workers, resilient_outcome.elapsed_seconds)
        per_run_metrics[(workers, True)] = resilient_outcome.metrics

    decompositions = overhead_decomposition(plain_curve, resilient_curve,
                                            replication_level=replication_level)
    return Figure4Result(plain=plain_curve, resilient=resilient_curve,
                         replication_level=replication_level,
                         decompositions=decompositions,
                         per_run_metrics=per_run_metrics)


__all__ = ["Figure4Result", "run_figure4"]
