"""Figure 5 experiment: granularity control.

Runs the distributed fusion for every (worker count, granularity multiplier)
combination of the paper's Figure 5, plus an optional tail-off sweep over
many sub-cube counts at the largest machine size, and packages the resulting
series with their table and chart renderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..analysis.figures import figure5_chart
from ..analysis.report import figure5_table, format_table
from ..analysis.speedup import SpeedupCurve
from ..config import PAPER_SETUP, FusionConfig, PartitionConfig
from ..api.facade import fuse
from ..data.cube import HyperspectralCube


@dataclass
class Figure5Result:
    """Granularity-control measurements.

    Attributes
    ----------
    curves:
        ``multiplier -> SpeedupCurve`` (time vs. worker count).
    tail_off:
        ``sub-cube count -> virtual seconds`` at ``tail_off_workers`` workers.
    tail_off_workers:
        Machine size used for the tail-off sweep.
    """

    curves: Dict[int, SpeedupCurve]
    tail_off: Dict[int, float] = field(default_factory=dict)
    tail_off_workers: int = 16

    # ------------------------------------------------------------- summaries
    def best_subcubes(self) -> Optional[int]:
        """Sub-cube count with the lowest time in the tail-off sweep."""
        if not self.tail_off:
            return None
        return min(self.tail_off, key=self.tail_off.get)

    def improvement_from_overlap(self, workers: int) -> float:
        """Relative improvement of the 2x decomposition over 1x at ``workers``."""
        base = self.curves[1].time_at(workers)
        doubled = self.curves[2].time_at(workers)
        return 1.0 - doubled / base

    def table(self) -> str:
        return figure5_table(self.curves)

    def chart(self) -> str:
        return figure5_chart(self.curves)

    def tail_off_table(self) -> str:
        rows = [[subcubes, seconds] for subcubes, seconds in sorted(self.tail_off.items())]
        return format_table(["sub-cubes", "time (virtual s)"], rows,
                            title=(f"Granularity tail-off at {self.tail_off_workers} "
                                   f"workers (paper: tails off past ~32 sub-cubes)"))

    def report(self) -> str:
        parts = [self.table(), self.chart()]
        if self.tail_off:
            parts.append(self.tail_off_table())
            parts.append(f"best decomposition in the tail-off sweep: "
                         f"{self.best_subcubes()} sub-cubes")
        return "\n\n".join(parts)


def run_figure5(cube: HyperspectralCube, *,
                processors: Sequence[int] = PAPER_SETUP.figure5_processors,
                multipliers: Sequence[int] = PAPER_SETUP.figure5_multipliers,
                tail_off_subcubes: Sequence[int] = (16, 32, 48, 96, 128),
                tail_off_workers: int = 16,
                prefetch: int = 2) -> Figure5Result:
    """Run the Figure 5 sweeps on ``cube``.

    Parameters
    ----------
    cube:
        The collection to fuse (the paper uses the 320x320x105 cube).
    processors / multipliers:
        The grid of the main figure (#sub-cubes = multiplier x #workers).
    tail_off_subcubes:
        Additional sub-cube counts swept at ``tail_off_workers`` workers to
        expose the per-message-overhead tail-off; pass an empty sequence to
        skip that part.
    """
    curves: Dict[int, SpeedupCurve] = {}
    for multiplier in multipliers:
        curve = SpeedupCurve(f"#sub-cube = #proc x {multiplier}")
        for workers in processors:
            subcubes = min(workers * multiplier, cube.rows)
            config = FusionConfig(partition=PartitionConfig(workers=workers,
                                                            subcubes=subcubes))
            outcome = fuse(cube, engine="distributed", config=config,
                           prefetch=prefetch)
            curve.add(workers, outcome.elapsed_seconds)
        curves[multiplier] = curve

    tail_off: Dict[int, float] = {}
    for subcubes in tail_off_subcubes:
        if subcubes > cube.rows:
            continue
        config = FusionConfig(partition=PartitionConfig(workers=tail_off_workers,
                                                        subcubes=subcubes))
        outcome = fuse(cube, engine="distributed", config=config, prefetch=prefetch)
        tail_off[subcubes] = outcome.elapsed_seconds

    return Figure5Result(curves=curves, tail_off=tail_off,
                         tail_off_workers=tail_off_workers)


__all__ = ["Figure5Result", "run_figure5"]
