"""Measured (wall-clock) speed-up experiment on the process backend.

The simulated Figure 4 experiment (:mod:`repro.experiments.figure4`) derives
its curves from *virtual* time on a modelled cluster.  This experiment
produces the same style of curve from *measured* wall-clock time: the
sequential :class:`~repro.core.pipeline.SpectralScreeningPCT` reference is
timed on the host, then the distributed engine is run on real operating
system processes (``backend="process"``) for each worker count, and the
per-run :class:`~repro.cluster.metrics.RunMetrics` (including measured
per-phase compute seconds) are collected alongside the speed-up curve.

Measured speed-up obviously depends on the machine: a host with fewer cores
than workers cannot exhibit parallel speed-up at all, which is why
:func:`run_measured_speedup` records ``available_cpus`` in its result and the
benchmark gates its speed-up assertion on it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..analysis.report import format_table
from ..analysis.speedup import SpeedupCurve
from ..api.session import open_session
from ..cluster.metrics import RunMetrics
from ..config import FusionConfig, PartitionConfig, ScreeningConfig
from ..core.pipeline import SpectralScreeningPCT
from ..data.cube import HyperspectralCube
from ..scp.pool import default_start_method


def available_cpus() -> int:
    """Number of CPUs actually usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@dataclass
class MeasuredSpeedupResult:
    """Wall-clock scaling measurements of the process-parallel engine.

    Attributes
    ----------
    curve:
        Measured elapsed seconds per worker count.
    sequential_seconds:
        Wall-clock time of the sequential reference pipeline (the speed-up
        baseline, as in the paper's Figure 4).
    available_cpus:
        Usable cores on the measuring host; speed-up beyond this count is
        physically impossible.
    per_run_metrics:
        ``workers -> RunMetrics`` with measured per-phase timings.
    """

    curve: SpeedupCurve
    sequential_seconds: float
    available_cpus: int
    backend: str = "process"
    per_run_metrics: Dict[int, RunMetrics] = field(default_factory=dict)

    def speedup(self) -> Dict[int, float]:
        """Measured speed-up relative to the sequential reference."""
        return self.curve.speedup(baseline_seconds=self.sequential_seconds)

    def efficiency(self) -> Dict[int, float]:
        return self.curve.efficiency(baseline_seconds=self.sequential_seconds)

    def best_speedup(self) -> float:
        return max(self.speedup().values())

    def table(self) -> str:
        speedup = self.speedup()
        efficiency = self.efficiency()
        rows = [["sequential", f"{self.sequential_seconds:.3f}", "1.00", "-"]]
        for point in self.curve.sorted_points():
            rows.append([point.processors, f"{point.elapsed_seconds:.3f}",
                         f"{speedup[point.processors]:.2f}",
                         f"{efficiency[point.processors]:.2f}"])
        return format_table(["workers", "wall seconds", "speed-up", "efficiency"], rows)

    def report(self) -> str:
        header = (f"Measured wall-clock speed-up ({self.backend} backend, "
                  f"{self.available_cpus} usable CPUs)")
        return f"{header}\n{self.table()}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (written by the benchmark artifact)."""
        return {
            "backend": self.backend,
            "available_cpus": self.available_cpus,
            "sequential_seconds": self.sequential_seconds,
            "runs": [
                {
                    "workers": point.processors,
                    "elapsed_seconds": point.elapsed_seconds,
                    "speedup": self.speedup()[point.processors],
                    "phase_seconds": dict(
                        self.per_run_metrics[point.processors].phase_seconds)
                    if point.processors in self.per_run_metrics else {},
                }
                for point in self.curve.sorted_points()
            ],
        }


def run_measured_speedup(cube: HyperspectralCube, *,
                         processors: Sequence[int] = (1, 2, 4),
                         subcubes: Optional[int] = None,
                         backend: str = "process",
                         start_method: Optional[str] = None,
                         screening: Optional[ScreeningConfig] = None,
                         prefetch: int = 2,
                         repeats: int = 1) -> MeasuredSpeedupResult:
    """Measure sequential vs process-parallel wall-clock on ``cube``.

    Parameters
    ----------
    cube:
        The problem instance.
    processors:
        Worker counts to sweep.
    subcubes:
        Decomposition granularity; defaults to twice the worker count (the
        paper's communication/computation-overlap sweet spot).
    backend:
        Backend spec the measuring session is opened on.  ``"process"``
        gives measured parallel times, ``"local"`` measures the GIL-bound
        thread baseline for comparison.
    start_method:
        ``multiprocessing`` start method of the session's worker pool;
        defaults to :func:`default_start_method` (``fork`` where available).
    screening:
        Optional screening configuration (defaults match the paper setup).
    repeats:
        Runs per configuration; the minimum time is kept, damping scheduler
        noise the way timeit does.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    screening = screening or ScreeningConfig()
    # One decomposition for every run -- the sequential reference included --
    # so total work is identical across the sweep and the curve measures
    # parallelisation, not granularity effects (as in the Figure 4 bench).
    subcubes = subcubes if subcubes is not None else 2 * max(processors)

    def sequential_run() -> float:
        config = FusionConfig(screening=screening,
                              partition=PartitionConfig(workers=1, subcubes=subcubes))
        start = time.perf_counter()
        SpectralScreeningPCT(config).fuse(cube)
        return time.perf_counter() - start

    sequential_seconds = min(sequential_run() for _ in range(repeats))

    # One session for the whole sweep: the worker-process pool is reused
    # across runs and the cube is placed in shared memory exactly once, so
    # the curve measures steady-state service time -- parallelisation, not
    # per-run spawn or copy overhead (the persistent workstations of the
    # paper's testbed paid neither per run either).
    curve = SpeedupCurve(f"measured ({backend})")
    per_run_metrics: Dict[int, RunMetrics] = {}
    with open_session(engine="distributed", backend=backend,
                      start_method=start_method,
                      prefetch=prefetch) as session:
        for workers in processors:
            config = FusionConfig(
                screening=screening,
                partition=PartitionConfig(workers=workers, subcubes=subcubes))
            elapsed_best: Optional[float] = None
            for _ in range(repeats):
                report = session.fuse(cube, config=config)
                if elapsed_best is None or report.elapsed_seconds < elapsed_best:
                    elapsed_best = report.elapsed_seconds
                    per_run_metrics[workers] = report.metrics
            curve.add(workers, elapsed_best)
    return MeasuredSpeedupResult(curve=curve, sequential_seconds=sequential_seconds,
                                 available_cpus=available_cpus(),
                                 backend=backend,
                                 per_run_metrics=per_run_metrics)


__all__ = ["MeasuredSpeedupResult", "run_measured_speedup", "available_cpus",
           "default_start_method"]
