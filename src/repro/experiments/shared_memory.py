"""Shared-memory multiprocessor ablation (Section 4, closing remarks).

Compares the efficiency of the distributed algorithm on a shared-memory
multiprocessor model (no communication cost beyond synchronisation) against
the 100BaseT LAN model, reproducing the paper's remark that the concurrent
algorithm "operates within 5% of linear speedup" on an SMP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.report import format_table
from ..analysis.speedup import SpeedupCurve
from ..cluster.presets import shared_memory_smp, sun_ultra_lan
from ..config import FusionConfig, PartitionConfig
from ..api.facade import fuse
from ..data.cube import HyperspectralCube


@dataclass
class SharedMemoryResult:
    """Timing curves of the SMP and LAN runs of the same workload."""

    smp: SpeedupCurve
    lan: SpeedupCurve

    def smp_worst_efficiency(self) -> float:
        return self.smp.worst_efficiency()

    def lan_worst_efficiency(self) -> float:
        return self.lan.worst_efficiency()

    def table(self) -> str:
        processors = sorted(p.processors for p in self.smp.sorted_points())
        smp_eff = self.smp.efficiency()
        lan_eff = self.lan.efficiency()
        rows = [[p, self.smp.time_at(p), self.lan.time_at(p), smp_eff[p], lan_eff[p]]
                for p in processors]
        return format_table(
            ["processors", "SMP time (s)", "LAN time (s)", "SMP efficiency",
             "LAN efficiency"],
            rows,
            title="Shared-memory ablation (paper: within 5% of linear speed-up on an SMP)")

    def report(self) -> str:
        return "\n\n".join([
            self.table(),
            (f"SMP worst-case efficiency {self.smp_worst_efficiency():.3f} "
             f"vs LAN {self.lan_worst_efficiency():.3f}"),
        ])


def run_shared_memory_comparison(cube: HyperspectralCube, *,
                                 processors: Sequence[int] = (1, 2, 4, 8),
                                 subcubes: int = 16,
                                 prefetch: int = 2) -> SharedMemoryResult:
    """Run the same fusion workload on the SMP and LAN cluster presets."""
    smp_curve = SpeedupCurve("shared-memory SMP")
    lan_curve = SpeedupCurve("100BaseT LAN")
    for workers in processors:
        config = FusionConfig(partition=PartitionConfig(
            workers=workers, subcubes=max(subcubes, workers)))
        smp_outcome = fuse(cube, engine="distributed", config=config,
                           cluster=shared_memory_smp(workers), prefetch=prefetch)
        smp_curve.add(workers, smp_outcome.elapsed_seconds)
        lan_outcome = fuse(cube, engine="distributed", config=config,
                           cluster=sun_ultra_lan(workers), prefetch=prefetch)
        lan_curve.add(workers, lan_outcome.elapsed_seconds)
    return SharedMemoryResult(smp=smp_curve, lan=lan_curve)


__all__ = ["SharedMemoryResult", "run_shared_memory_comparison"]
