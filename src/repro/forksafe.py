"""Fork-safe module-level synchronisation primitives.

The process backends can start workers with the ``fork`` method
(``BackendSpec.parse("process:fork")``), and a forked child inherits every
module-level lock *in whatever state it was in at fork time*.  A lock some
other thread of the parent happened to hold while :func:`os.fork` ran is
permanently stuck in the child -- the classic fork/lock deadlock -- and any
module-level cache the lock guards is inherited mid-mutation.

RPL003 (``repro-fusion lint``) therefore bans raw module-level
``threading.Lock()`` state outside this module.  :class:`ForkSafeLock` is
the sanctioned replacement: it registers an :func:`os.register_at_fork`
hook that re-creates the child's copy of the lock (always released) and
runs an optional ``on_reset`` callback so the guarded state can be cleared
in the same breath.  The parent's lock is untouched.

Usage (module level)::

    _CACHE: dict = {}
    _cache_lock = ForkSafeLock(on_reset=_CACHE.clear)

    with _cache_lock:
        ...
"""

from __future__ import annotations

import os
import threading
from typing import Callable, List, Optional

#: Every constructed lock; strong refs are fine -- module-level locks live
#: for the interpreter's lifetime by definition.
_FORK_SAFE_LOCKS: List["ForkSafeLock"] = []
_hook_installed = False


def _reset_all_after_fork_in_child() -> None:
    for lock in _FORK_SAFE_LOCKS:
        lock._reset_after_fork()


def _install_fork_hook() -> None:
    global _hook_installed
    if _hook_installed:
        return
    _hook_installed = True
    if hasattr(os, "register_at_fork"):  # POSIX; Windows never forks
        os.register_at_fork(after_in_child=_reset_all_after_fork_in_child)


class ForkSafeLock:
    """A mutex whose post-``fork()`` child copy is always released.

    After a fork, the child's underlying :class:`threading.Lock` is
    replaced with a fresh one and ``on_reset`` (when given) runs so the
    state the lock guards can be dropped atomically with the lock itself
    -- a forked child must never trust caches mutated by parent threads
    it did not inherit.

    The wrapper supports the context-manager protocol plus
    ``acquire``/``release``/``locked``, covering every idiom a plain
    ``threading.Lock`` is used with in this codebase.
    """

    def __init__(self, on_reset: Optional[Callable[[], None]] = None) -> None:
        self._lock = threading.Lock()
        self._on_reset = on_reset
        _FORK_SAFE_LOCKS.append(self)
        _install_fork_hook()

    def _reset_after_fork(self) -> None:
        # The inherited lock may be held by a parent thread that does not
        # exist in the child; a fresh lock is the only safe state.
        self._lock = threading.Lock()
        if self._on_reset is not None:
            try:
                self._on_reset()
            except Exception:  # pragma: no cover - a reset hook must not
                pass           # be able to poison the child at birth

    # ---------------------------------------------------------------- facade
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._lock.acquire(blocking, timeout)

    def release(self) -> None:
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self._lock.__enter__()

    def __exit__(self, *exc_info: object) -> None:
        self._lock.__exit__(*exc_info)


__all__ = ["ForkSafeLock"]
