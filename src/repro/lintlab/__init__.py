"""``repro-fusion lint``: the fusion stack's concurrency invariant checker.

PRs 3-6 each paid real debugging time to the same class of process-parallel
hazards: SIGKILL-leaked queue locks, unregistered ``/dev/shm`` segments,
torn pickle frames, racy wall-clock deadlines, reduction-order drift
breaking bit-parity.  The invariants that came out of that debugging are
machine-checked here, at lint time, so they hold *before* the crash matrix
and the parity fuzzer (:mod:`repro.paritylab`) ever run.

The subsystem mirrors the shape of the other CLI labs:

* :mod:`repro.lintlab.registry` -- the rule registry (``@register_rule``);
  a rule is one class with a ``code``, a one-line rationale naming the PR
  that motivated it, and an AST ``check``.
* :mod:`repro.lintlab.rules` -- the built-in rules RPL001-RPL006.
* :mod:`repro.lintlab.suppressions` -- ``# repro: allow[RPL004]`` comment
  handling, including the used/dead accounting the CLI reports so stale
  suppressions can be pruned.
* :mod:`repro.lintlab.runner` -- file walking, per-finding source
  locations, text/JSON rendering; :func:`lint_paths` is the entry point
  the ``repro-fusion lint`` subcommand drives.

Lint a tree programmatically::

    from repro.lintlab import lint_paths
    report = lint_paths(["src"])
    assert report.ok, report.render_text()
"""

from .findings import Finding, Suppression
from .registry import Rule, all_rules, get_rule, register_rule, rule_codes
from .runner import LintReport, lint_paths, lint_source

__all__ = [
    "Finding",
    "Suppression",
    "Rule",
    "register_rule",
    "all_rules",
    "get_rule",
    "rule_codes",
    "LintReport",
    "lint_paths",
    "lint_source",
]
