"""Value objects of the lint subsystem: findings and suppressions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the file as given to the runner (repo-relative when the
    CLI is invoked from the repo root), ``line``/``col`` are 1-based /
    0-based exactly as :mod:`ast` reports them, so the rendered location
    (``path:line:col``) is directly clickable in editors and CI logs.
    """

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    #: Line of the suppression directive that silenced this finding
    #: (``None`` for active findings).
    suppressed_by: Optional[int] = None

    def describe(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }
        if self.suppressed_by is not None:
            payload["suppressed_by"] = self.suppressed_by
        return payload


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: allow[RPLxxx]`` directive found in a file.

    ``used`` is filled in by the runner: a directive that silenced at
    least one finding is *used*; the rest are *dead* and reported so they
    can be pruned once the code they covered is gone.
    """

    code: str
    path: str
    line: int
    #: The raw directive text (diagnostics; ``# repro: ordered`` sugar
    #: shows up here as written, not as the allow it expands to).
    directive: str = ""
    used: bool = False

    def describe(self) -> str:
        state = "used" if self.used else "dead"
        return f"{self.path}:{self.line}: {state} suppression of {self.code} ({self.directive})"

    def to_json(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "directive": self.directive,
            "used": self.used,
        }


__all__ = ["Finding", "Suppression"]
