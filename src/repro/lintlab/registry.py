"""Rule registry: named lint rules behind one tiny protocol.

Mirrors the engine/backend registries (:mod:`repro.api.engines`,
:mod:`repro.scp.registry`): a rule is registered by decorating its class,
and the runner, the CLI ``--list-rules`` table and the README rule table
are all driven from the same registry -- adding a rule is one decorated
class, no CLI surgery.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .findings import Finding


@dataclass
class LintContext:
    """Everything a rule sees for one file.

    ``module`` is the forward-slash form of the path; rules scope
    themselves by suffix/substring on it (e.g. RPL001's sanctioned
    allocation site is ``repro/data/shared.py``), so a file's *role* in
    the tree -- not its absolute location -- decides which invariants
    apply.  Tests lint fixture snippets under a ``virtual_path`` to plant
    violations inside any role.
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, path: str,
                    virtual_path: "str | None" = None) -> "LintContext":
        module = PurePosixPath((virtual_path or path).replace("\\", "/")).as_posix()
        return cls(path=path, module=module, source=source,
                   tree=ast.parse(source), lines=source.splitlines())

    def in_module(self, *suffixes: str) -> bool:
        """Whether this file plays one of the named module roles."""
        return any(self.module.endswith(suffix) for suffix in suffixes)

    def under_package(self, *prefixes: str) -> bool:
        """Whether this file lives under one of the named package dirs."""
        return any(f"{prefix.rstrip('/')}/" in f"/{self.module}"
                   for prefix in prefixes)


class Rule:
    """Base class of every lint rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`~repro.lintlab.findings.Finding` objects.  ``code``
    is the stable identifier suppressions name (``# repro:
    allow[RPL004]``); ``rationale`` is the one-line justification the
    README rule table renders, citing the PR that motivated the rule.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, ctx: LintContext) -> "Iterator[Finding]":
        raise NotImplementedError  # pragma: no cover - abstract

    def finding(self, ctx: LintContext, node: ast.AST,
                message: "str | None" = None) -> "Finding":
        from .findings import Finding

        return Finding(code=self.code, message=message or self.summary,
                       path=ctx.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0))


_RULES: Dict[str, type] = {}

R = TypeVar("R", bound=type)


def register_rule(cls: R) -> R:
    """Class decorator registering a :class:`Rule` under its ``code``."""
    code = getattr(cls, "code", "")
    if not code:
        raise ValueError(f"rule class {cls.__name__} defines no code")
    if code in _RULES:
        raise ValueError(f"lint rule {code!r} is already registered")
    _RULES[code] = cls
    return cls


def rule_codes() -> List[str]:
    """Sorted codes of every registered rule."""
    _ensure_builtin_rules()
    return sorted(_RULES)


def all_rules() -> List[Rule]:
    """One instance of every registered rule, sorted by code."""
    _ensure_builtin_rules()
    return [_RULES[code]() for code in sorted(_RULES)]


def get_rule(code: str) -> Rule:
    """Instantiate the rule registered under ``code``.

    Raises a :class:`ValueError` listing the registered codes when
    ``code`` is unknown, matching the engine/backend registry behaviour.
    """
    _ensure_builtin_rules()
    try:
        cls = _RULES[code]
    except KeyError:
        raise ValueError(f"unknown lint rule {code!r}; registered rules: "
                         f"{', '.join(sorted(_RULES))}") from None
    return cls()


def _ensure_builtin_rules() -> None:
    # Imported lazily so `from repro.lintlab.registry import register_rule`
    # works while rules.py itself is still initialising.
    from . import rules  # noqa: F401


RuleFactory = Callable[[], Rule]

__all__ = ["LintContext", "Rule", "register_rule", "rule_codes",
           "all_rules", "get_rule"]
