"""Built-in lint rules RPL001-RPL006.

Each rule codifies one invariant the fusion stack's process-parallel
debugging already paid for once (the ``rationale`` line names the PR).
Rules are AST-based and deliberately heuristic: they pattern-match the
idioms this repo actually uses, and every rule has a suppression escape
(``# repro: allow[RPLxxx]``) for the sanctioned exceptions, so a false
positive costs one annotated line, never a disabled rule.

Scoping is by module *role*, not location: ``repro/data/shared.py`` is
the only sanctioned shared-memory allocation site wherever the tree is
checked out, and fixture tests plant violations inside any role via the
runner's ``virtual_path``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import Finding
from .registry import LintContext, Rule, register_rule

# ---------------------------------------------------------------------------
# Module roles
# ---------------------------------------------------------------------------

#: The only module allowed to allocate shared-memory segments: every
#: segment created there is registered with the SegmentRegistry whose
#: atexit sweep guarantees zero /dev/shm residue (PR 4).
SHARED_MEMORY_SANCTUARY = ("repro/data/shared.py",)

#: Modules allowed to build multiprocessing queues/pipes: the SCP replica
#: mailboxes, whose feeder threads the backends own and drain, and the
#: worker-transport seam (task-frame inboxes written only by the parent
#: that owns the worker).  Stage results must use the atomic-rename spool
#: transport instead (PR 3, PR 9).
QUEUE_SANCTUARY = ("repro/scp/pool.py", "repro/scp/process_backend.py",
                   "repro/scp/transport.py")

#: The fork-safe primitives module RPL003 points at.
FORKSAFE_SANCTUARY = ("repro/forksafe.py",)

#: Parity-critical kernels: bit-identical composites across engines are
#: the paper's correctness claim, continuously fuzzed by repro.paritylab
#: (PR 6).  Reduction order must be deterministic here.
PARITY_CRITICAL_PACKAGES = ("repro/core/steps", "repro/core/kernels")
PARITY_CRITICAL_MODULES = ("repro/core/streaming.py",)


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """Best-effort dotted form of a callee, e.g. ``self._ctx.Queue``.

    Calls inside the chain are collapsed to their callee
    (``multiprocessing.get_context("spawn").Queue`` ->
    ``multiprocessing.get_context.Queue``), so context-factory idioms
    still resolve.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        else:
            return None


def imported_names(tree: ast.Module, module: str,
                   names: Tuple[str, ...]) -> Set[str]:
    """Local bindings of ``from <module> import <name> [as alias]``."""
    bound: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                if alias.name in names:
                    bound.add(alias.asname or alias.name)
    return bound


def _truthy_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


def _body_only_swallows(body: List[ast.stmt]) -> bool:
    """Whether a handler body does nothing but swallow (pass/.../continue)."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis
        return False
    return True


# ---------------------------------------------------------------------------
# RPL001 -- shared-memory allocation discipline
# ---------------------------------------------------------------------------

@register_rule
class SharedMemoryAllocationRule(Rule):
    code = "RPL001"
    name = "raw-shared-memory-allocation"
    summary = ("raw SharedMemory(create=True) outside repro/data/shared.py; "
               "allocate through SharedCube/SharedComposite so the "
               "SegmentRegistry sweep can reclaim the segment")
    rationale = ("PR 4: segments allocated outside the SegmentRegistry "
                 "leaked into /dev/shm whenever a run crashed or a stream "
                 "was abandoned")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_module(*SHARED_MEMORY_SANCTUARY):
            return
        aliases = imported_names(ctx.tree, "multiprocessing.shared_memory",
                                 ("SharedMemory",)) | {"SharedMemory"}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] not in aliases:
                continue
            creates = any(kw.arg == "create" and _truthy_constant(kw.value)
                          for kw in node.keywords)
            # SharedMemory(name, create, size): positional create.
            if not creates and len(node.args) >= 2:
                creates = _truthy_constant(node.args[1])
            if creates:
                yield self.finding(ctx, node)


# ---------------------------------------------------------------------------
# RPL002 -- no queues/pipes shared with killable workers
# ---------------------------------------------------------------------------

#: Constructors that build kill-fragile IPC transports.
_QUEUE_CTORS = ("Queue", "SimpleQueue", "JoinableQueue", "Pipe")
#: Chain parts identifying a multiprocessing context object.
_MP_BASES = ("multiprocessing", "mp", "ctx", "_ctx", "_mp", "get_context")


@register_rule
class KillableQueueTransportRule(Rule):
    code = "RPL002"
    name = "queue-shared-with-killable-worker"
    summary = ("multiprocessing Queue/Pipe outside the sanctioned SCP "
               "mailbox modules; stage results must use the atomic-rename "
               "spool transport (repro.scp.stages)")
    rationale = ("PR 3: a SIGKILLed worker can die holding a queue's "
                 "write-lock or mid-pickle, wedging every later reader; "
                 "the spool transport cannot be torn")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_module(*QUEUE_SANCTUARY):
            return
        direct = imported_names(ctx.tree, "multiprocessing", _QUEUE_CTORS)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if parts[-1] not in _QUEUE_CTORS:
                continue
            if len(parts) == 1:
                if parts[0] in direct:
                    yield self.finding(ctx, node)
                continue
            if any(part in _MP_BASES for part in parts[:-1]):
                yield self.finding(ctx, node)


# ---------------------------------------------------------------------------
# RPL003 -- fork-safety of module-level state
# ---------------------------------------------------------------------------

_LOCK_CTORS = ("Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
               "Event", "Barrier")
_RNG_CTORS = ("Random", "default_rng", "RandomState")


@register_rule
class ModuleLevelConcurrencyStateRule(Rule):
    code = "RPL003"
    name = "module-level-lock-or-rng"
    summary = ("module-level lock/RNG state is captured by fork() and "
               "importable by pool workers; use repro.forksafe.ForkSafeLock "
               "or move the state behind an instance")
    rationale = ("PR 4: a module lock held at fork time deadlocks every "
                 "fork-start pool child that imports the module; shared "
                 "RNG state silently decorrelates workers")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.in_module(*FORKSAFE_SANCTUARY):
            return
        for stmt in self._module_level(ctx.tree):
            values: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                values.append(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                values.append(stmt.value)
            elif isinstance(stmt, ast.Expr):
                values.append(stmt.value)
            for value in values:
                if not isinstance(value, ast.Call):
                    continue
                name = dotted_name(value.func)
                if name is None:
                    continue
                parts = name.split(".")
                leaf = parts[-1]
                if leaf in _LOCK_CTORS and "threading" in parts[:-1]:
                    yield self.finding(ctx, value)
                elif leaf in _RNG_CTORS and any(
                        p in ("random", "np", "numpy") for p in parts[:-1]):
                    yield self.finding(ctx, value)
                elif leaf == "seed" and any(
                        p in ("random", "np", "numpy") for p in parts[:-1]):
                    yield self.finding(ctx, value, message=(
                        "module-level RNG seeding mutates interpreter-wide "
                        "state every importing worker shares"))

    @staticmethod
    def _module_level(tree: ast.Module) -> Iterator[ast.stmt]:
        """Module-body statements, descending into top-level if/try arms."""
        stack: List[ast.stmt] = list(tree.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, ast.If):
                stack.extend(stmt.body)
                stack.extend(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                stack.extend(stmt.body)
                stack.extend(stmt.orelse)
                stack.extend(stmt.finalbody)
                for handler in stmt.handlers:
                    stack.extend(handler.body)
            else:
                yield stmt


# ---------------------------------------------------------------------------
# RPL004 -- monotonic clocks for deadline/timeout arithmetic
# ---------------------------------------------------------------------------

_DEADLINE_WORDS = ("deadline", "epoch", "expire", "expiry", "until",
                   "timeout", "cutoff", "grace")


@register_rule
class WallClockDeadlineRule(Rule):
    code = "RPL004"
    name = "wall-clock-deadline"
    summary = ("time.time() in deadline/timeout arithmetic; wall clock "
               "jumps under NTP steps -- use time.monotonic()")
    rationale = ("PR 3: the stage executor's liveness sweep misfired on a "
                 "wall-clock step, SIGKILL-retrying healthy slots; only "
                 "monotonic time may feed deadline math")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        aliases = imported_names(ctx.tree, "time", ("time",))
        seen: Set[Tuple[int, int]] = set()

        def is_wall_clock(node: ast.AST) -> bool:
            if not isinstance(node, ast.Call):
                return False
            name = dotted_name(node.func)
            return name == "time.time" or (name is not None and name in aliases)

        def wall_clock_calls(node: ast.AST) -> Iterator[ast.Call]:
            for sub in ast.walk(node):
                if is_wall_clock(sub):
                    yield sub  # type: ignore[misc]

        def emit(call: ast.Call) -> Iterator[Finding]:
            key = (call.lineno, call.col_offset)
            if key not in seen:
                seen.add(key)
                yield self.finding(ctx, call)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub)):
                for call in wall_clock_calls(node):
                    yield from emit(call)
            elif isinstance(node, ast.Compare):
                for call in wall_clock_calls(node):
                    yield from emit(call)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                if not any(self._deadline_target(t) for t in targets):
                    continue
                value = node.value
                if value is None:
                    continue
                for call in wall_clock_calls(value):
                    yield from emit(call)

    @staticmethod
    def _deadline_target(target: ast.expr) -> bool:
        name = dotted_name(target)
        if name is None:
            return False
        leaf = name.split(".")[-1].lower()
        return any(word in leaf for word in _DEADLINE_WORDS)


# ---------------------------------------------------------------------------
# RPL005 -- no swallowed exceptions in worker / liveness-sweep loops
# ---------------------------------------------------------------------------

@register_rule
class SwallowedExceptionRule(Rule):
    code = "RPL005"
    name = "swallowed-exception-in-loop"
    summary = ("broad exception swallow inside a loop; a worker or "
               "liveness-sweep loop that eats everything hides crashes "
               "the detector was built to catch -- narrow the type or "
               "justify with an allow")
    rationale = ("PR 1/PR 3: broad swallows in the sweep loops masked "
                 "real crash records until the run wedged with no "
                 "diagnostic at all")

    _BROAD = ("Exception", "BaseException")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        yield from self._visit(ctx, ctx.tree, in_loop=False)

    def _visit(self, ctx: LintContext, node: ast.AST,
               in_loop: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_in_loop = True
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda, ast.ClassDef)):
                # A nested def is its own execution context: whether *it*
                # runs in a loop is unknowable here, so reset the flag.
                child_in_loop = False
            if isinstance(child, ast.ExceptHandler):
                if child.type is None:
                    yield self.finding(ctx, child, message=(
                        "bare except: also swallows SystemExit and "
                        "KeyboardInterrupt, making the worker "
                        "uninterruptible; catch Exception at most"))
                elif in_loop and self._is_broad(child.type) \
                        and _body_only_swallows(child.body):
                    yield self.finding(ctx, child)
            yield from self._visit(ctx, child, child_in_loop)

    def _is_broad(self, type_node: ast.expr) -> bool:
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        for node in nodes:
            name = dotted_name(node)
            if name is not None and name.split(".")[-1] in self._BROAD:
                return True
        return False


# ---------------------------------------------------------------------------
# RPL006 -- deterministic reduction order in parity-critical kernels
# ---------------------------------------------------------------------------

_REDUCERS = ("sum", "fsum", "nansum", "prod", "nanprod", "min", "max",
             "mean", "nanmean", "std", "dot")
_VIEW_METHODS = ("values", "keys", "items")


@register_rule
class UnorderedReductionRule(Rule):
    code = "RPL006"
    name = "unordered-reduction-in-parity-kernel"
    summary = ("set/dict iteration order feeds a numeric reduction in a "
               "parity-critical kernel; float addition does not commute "
               "bit-for-bit -- sort the operands or annotate the line "
               "with `# repro: ordered: <why>`")
    rationale = ("PR 5/PR 6: the parity fuzzer's bit-identity claim dies "
                 "the moment a reduction's operand order depends on hash "
                 "order; partition summation order is pinned everywhere")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not (ctx.under_package(*PARITY_CRITICAL_PACKAGES)
                or ctx.in_module(*PARITY_CRITICAL_MODULES)):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (name is not None and name.split(".")[-1] in _REDUCERS
                        and node.args and self._unordered(node.args[0])):
                    yield self.finding(ctx, node)
            elif isinstance(node, ast.For) and self._unordered(node.iter):
                if any(isinstance(sub, ast.AugAssign)
                       and isinstance(sub.op, (ast.Add, ast.Sub, ast.Mult))
                       for stmt in node.body for sub in ast.walk(stmt)):
                    yield self.finding(ctx, node)

    def _unordered(self, node: ast.expr) -> bool:
        """Whether an expression iterates in hash (or otherwise
        unspecified) order."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.GeneratorExp):
            return any(self._unordered(comp.iter) for comp in node.generators)
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                return False
            leaf = name.split(".")[-1]
            if leaf in ("set", "frozenset"):
                return True
            # Dict views: iteration order is insertion order, which is
            # deterministic only when every insertion site is; in the
            # parity kernels that guarantee must be stated, not assumed.
            if leaf in _VIEW_METHODS and "." in name:
                return True
        return False


#: Documentation order of the built-in rules (the README/CLI table).
BUILTIN_RULES = ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006")

__all__ = ["SharedMemoryAllocationRule", "KillableQueueTransportRule",
           "ModuleLevelConcurrencyStateRule", "WallClockDeadlineRule",
           "SwallowedExceptionRule", "UnorderedReductionRule",
           "BUILTIN_RULES", "dotted_name", "imported_names"]
