"""Lint driver: walk files, run every rule, apply suppressions, render.

:func:`lint_paths` is what the ``repro-fusion lint`` subcommand calls;
:func:`lint_source` is the single-snippet form the fixture tests use
(with a ``virtual_path`` to plant a snippet into any module role).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .findings import Finding, Suppression
from .registry import LintContext, Rule, all_rules
from .suppressions import scan_suppressions

#: Pseudo-rule code of files the parser rejects; not suppressible.
PARSE_ERROR_CODE = "RPL000"

#: Directories never descended into when walking a tree.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "build", "dist",
              ".mypy_cache", ".ruff_cache", ".pytest_cache"}


@dataclass
class LintReport:
    """Outcome of one lint run.

    ``findings`` are the active violations (the exit-code drivers);
    ``suppressed`` the ones silenced by an ``allow`` directive (kept so
    the CLI can show what the suppressions are holding back); and
    ``suppressions`` every directive with its used/dead state, so dead
    suppressions can be pruned once the code they covered is gone.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def dead_suppressions(self) -> List[Suppression]:
        return [record for record in self.suppressions if not record.used]

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def suppressed_counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.suppressed:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    # ------------------------------------------------------------- rendering
    def render_text(self, *, show_suppressed: bool = False) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.describe())
        if show_suppressed:
            for finding in self.suppressed:
                lines.append(f"{finding.describe()} "
                             f"[suppressed at line {finding.suppressed_by}]")
        for record in self.dead_suppressions:
            lines.append(f"{record.path}:{record.line}: warning: dead "
                         f"suppression of {record.code} "
                         f"({record.directive}) -- nothing left to allow")
        lines.append(self.summary())
        return "\n".join(lines)

    def summary(self) -> str:
        parts = [f"{self.files_checked} file(s) checked",
                 f"{len(self.findings)} finding(s)"]
        if self.findings:
            by_code = ", ".join(f"{code}: {count}" for code, count
                                in sorted(self.counts_by_code().items()))
            parts[-1] += f" ({by_code})"
        if self.suppressed:
            by_code = ", ".join(f"{code}: {count}" for code, count in sorted(
                self.suppressed_counts_by_code().items()))
            parts.append(f"{len(self.suppressed)} suppressed ({by_code})")
        dead = self.dead_suppressions
        if dead:
            parts.append(f"{len(dead)} dead suppression(s)")
        return "; ".join(parts)

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": "repro-fusion/lint-report/v1",
            "files_checked": self.files_checked,
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": [finding.to_json() for finding in self.suppressed],
            "suppressions": [record.to_json() for record in self.suppressions],
            "ok": self.ok,
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def lint_source(source: str, path: str = "<string>", *,
                virtual_path: Optional[str] = None,
                rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint one source string as if it lived at ``virtual_path``."""
    report = LintReport(files_checked=1)
    _lint_one(source, path, virtual_path, rules or all_rules(), report)
    return report


def lint_paths(paths: Iterable["str | Path"], *,
               rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint every ``*.py`` file under ``paths`` (files or directories)."""
    active_rules = list(rules) if rules is not None else all_rules()
    report = LintReport()
    for file_path in _collect_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as err:
            report.findings.append(Finding(
                code=PARSE_ERROR_CODE, message=f"cannot read file: {err}",
                path=str(file_path), line=1))
            continue
        report.files_checked += 1
        _lint_one(source, str(file_path), None, active_rules, report)
    return report


def _collect_files(paths: Iterable["str | Path"]) -> List[Path]:
    files: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts))
        elif path.suffix == ".py" or path.is_file():
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                files.append(candidate)
    return files


def _lint_one(source: str, path: str, virtual_path: Optional[str],
              rules: Sequence[Rule], report: LintReport) -> None:
    try:
        ctx = LintContext.from_source(source, path, virtual_path)
    except SyntaxError as err:
        report.findings.append(Finding(
            code=PARSE_ERROR_CODE,
            message=f"file does not parse: {err.msg}",
            path=path, line=err.lineno or 1, col=(err.offset or 1) - 1))
        return
    sheet = scan_suppressions(source, path)
    for rule in rules:
        for finding in rule.check(ctx):
            if sheet.covers(finding.code, finding.line):
                directive_line = sheet.directive_line(finding.code, finding.line)
                report.suppressed.append(Finding(
                    code=finding.code, message=finding.message,
                    path=finding.path, line=finding.line, col=finding.col,
                    suppressed_by=directive_line))
            else:
                report.findings.append(finding)
    report.suppressions.extend(sheet.records())
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))


__all__ = ["LintReport", "lint_paths", "lint_source", "PARSE_ERROR_CODE"]
