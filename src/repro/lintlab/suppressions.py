"""``# repro: allow[RPLxxx]`` suppression comments.

A finding is silenced by a directive on the *flagged line* or on a
comment-only line *immediately above* it (for lines too long to carry a
trailing comment).  Directives name one or more rule codes::

    deadline = time.time() + 5.0   # repro: allow[RPL004] sim clock only
    # repro: allow[RPL005] sweep must never raise
    except Exception:
        pass

``# repro: ordered`` is the determinism annotation RPL006 asks for --
sugar for ``allow[RPL006]`` that reads as a statement about the code
("this iteration order is deterministic because ...") rather than as a
lint override::

    for key in selected:  # repro: ordered: insertion order, sorted above
        total += weights[key]

Every directive is accounted for: the runner marks the ones that silenced
a finding *used* and reports the rest as *dead*, so suppressions whose
code has been fixed (or whose rule has been retired) can be pruned
instead of rotting.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .findings import Suppression

#: A directive must open the comment (``allow[CODE]`` / ``allow[CODE,
#: CODE] why``); mentions of directives mid-comment are documentation.
_ALLOW_RE = re.compile(r"\A#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")
#: The determinism annotation of RPL006, optionally followed by a
#: ``: reason``; also anchored to the comment start.
_ORDERED_RE = re.compile(r"\A#\s*repro:\s*ordered\b")

#: The rule the ``ordered`` annotation expands to.
_ORDERED_CODE = "RPL006"


@dataclass
class SuppressionSheet:
    """Per-file map of suppression directives and their accounting."""

    path: str
    #: line number -> codes allowed on that line.
    _by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: (line, code) -> the directive record (for used/dead accounting).
    _directives: Dict[Tuple[int, str], Suppression] = field(default_factory=dict)
    _used: Set[Tuple[int, str]] = field(default_factory=set)

    def covers(self, code: str, line: int) -> bool:
        """Whether a finding of ``code`` on ``line`` is suppressed.

        Marks the matching directive used.  A directive covers its own
        line and, when it sits on a comment-only line, the directive also
        registered itself against the following line (see
        :func:`scan_suppressions`).
        """
        codes = self._by_line.get(line)
        if codes is None or code not in codes:
            return False
        # Mark the *closest* directive carrying this code as used: the
        # one on the finding's own line wins over one from the line above.
        for directive_line in (line, line - 1):
            if (directive_line, code) in self._directives:
                self._used.add((directive_line, code))
                return True
        return True  # pragma: no cover - map and directives stay in sync

    def directive_line(self, code: str, line: int) -> "int | None":
        """Line of the directive that covers ``code`` at ``line``."""
        for directive_line in (line, line - 1):
            if (directive_line, code) in self._directives:
                return directive_line
        return None

    def records(self) -> List[Suppression]:
        """Every directive with its final used/dead state."""
        out = []
        for (line, code), record in sorted(self._directives.items()):
            out.append(Suppression(code=record.code, path=record.path,
                                   line=record.line, directive=record.directive,
                                   used=(line, code) in self._used))
        return out


def _directive_codes(comment: str) -> List[Tuple[str, str]]:
    """Parse one comment into ``(code, directive-text)`` pairs."""
    found: List[Tuple[str, str]] = []
    for match in _ALLOW_RE.finditer(comment):
        for raw in match.group(1).split(","):
            code = raw.strip().upper()
            if code:
                found.append((code, match.group(0)))
    for match in _ORDERED_RE.finditer(comment):
        found.append((_ORDERED_CODE, match.group(0)))
    return found


def scan_suppressions(source: str, path: str) -> SuppressionSheet:
    """Collect every suppression directive in ``source``.

    Comments are found with :mod:`tokenize` (not a regex over lines), so
    directive-looking text inside string literals is never mistaken for a
    directive.  A directive on a comment-only line covers the next line;
    a trailing directive covers its own line.
    """
    sheet = SuppressionSheet(path=path)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return sheet  # unparseable files are reported by the runner instead
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        pairs = _directive_codes(token.string)
        if not pairs:
            continue
        line = token.start[0]
        comment_only = not token.line[:token.start[1]].strip()
        for code, directive in pairs:
            sheet._directives[(line, code)] = Suppression(
                code=code, path=path, line=line, directive=directive)
            sheet._by_line.setdefault(line, set()).add(code)
            if comment_only:
                sheet._by_line.setdefault(line + 1, set()).add(code)
    return sheet


__all__ = ["SuppressionSheet", "scan_suppressions"]
