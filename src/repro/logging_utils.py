"""Rank-aware structured logging helpers.

The distributed runtime spawns many logical threads (manager, workers, shadow
replicas, detectors).  During debugging it is essential that every log record
carries the logical identity of its emitter and -- in simulation -- the virtual
time at which it happened.  This module provides a tiny adapter that injects
those fields without forcing every call site to repeat them.
"""

from __future__ import annotations

import logging
from typing import Any, MutableMapping

_ROOT_NAME = "repro"


def get_logger(component: str) -> logging.Logger:
    """Return the library logger for ``component`` (e.g. ``"scp.runtime"``)."""
    return logging.getLogger(f"{_ROOT_NAME}.{component}")


class ThreadLogAdapter(logging.LoggerAdapter):
    """Logger adapter that prefixes records with thread identity and time.

    Parameters
    ----------
    logger:
        Base logger to wrap.
    identity:
        Logical thread name, e.g. ``"worker.3#1"`` for replica 1 of worker 3.
    clock:
        Optional zero-argument callable returning the current (virtual or
        wall-clock) time in seconds.
    """

    def __init__(self, logger: logging.Logger, identity: str, clock=None) -> None:
        super().__init__(logger, {"identity": identity})
        self._identity = identity
        self._clock = clock

    def process(self, msg: Any, kwargs: MutableMapping[str, Any]):
        if self._clock is not None:
            prefix = f"[t={self._clock():.6f}][{self._identity}]"
        else:
            prefix = f"[{self._identity}]"
        return f"{prefix} {msg}", kwargs


def configure_basic_logging(level: int = logging.INFO,
                            fmt: str = "%(levelname)s %(name)s: %(message)s") -> None:
    """Configure a simple stderr handler for the library's logger tree.

    This is only intended for examples and the CLI; library code never calls
    it so applications embedding the library keep control of logging.
    """
    logger = logging.getLogger(_ROOT_NAME)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(fmt))
        logger.addHandler(handler)
    logger.setLevel(level)


def silence() -> None:
    """Silence the library's logger tree (used by benchmarks)."""
    logging.getLogger(_ROOT_NAME).setLevel(logging.CRITICAL + 1)


__all__ = ["get_logger", "ThreadLogAdapter", "configure_basic_logging", "silence"]
