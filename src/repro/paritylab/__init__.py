"""Continuous correctness and performance instrumentation.

``paritylab`` is the repo's standing answer to two questions that every
optimization PR otherwise re-answers by hand:

* **Is the engine matrix still differentially correct?**  The paper's claim
  is that distribution changes *how* the fusion runs, never *what* it
  produces.  :mod:`repro.paritylab.harness` fuzzes that claim: it samples
  scenes and :class:`~repro.api.request.FusionRequest` shapes from a seeded
  generator, runs every applicable engine x backend combination through
  :func:`repro.fuse`, diffs the composites (bit-for-bit for float64,
  tolerance-tiered for float32), shrinks any failure to a minimal scene and
  serialises it as a JSON repro into the parity corpus.

* **Is the perf trajectory still monotone?**  :mod:`repro.paritylab.ledger`
  turns every benchmark's ``--json`` artifact into a schema-versioned record
  appended to a tracked ``benchmarks/history/*.jsonl`` ledger (keyed by host
  fingerprint and git SHA) and gates each new measurement against a
  rolling-median baseline with a configurable noise band.

Both surfaces are wired into the CLI (``repro-fusion fuzz`` and
``repro-fusion bench-ledger {record,check,report}``) and into CI (the
fuzz-smoke and bench-smoke jobs).
"""

from .harness import (CaseOutcome, ComboSpec, FuzzResult, ParityCase,
                      ParityViolation, ReplayEntry, fuzz, load_repro,
                      replay_corpus, run_case, sample_case, save_repro,
                      shrink_case)
from .ledger import (BenchLedger, LedgerError, Metric, MetricCheck, git_sha,
                     host_fingerprint, host_info, make_record,
                     render_markdown_table, render_text_table)

__all__ = [
    "CaseOutcome",
    "ComboSpec",
    "FuzzResult",
    "ParityCase",
    "ParityViolation",
    "ReplayEntry",
    "fuzz",
    "load_repro",
    "replay_corpus",
    "run_case",
    "sample_case",
    "save_repro",
    "shrink_case",
    "BenchLedger",
    "LedgerError",
    "Metric",
    "MetricCheck",
    "git_sha",
    "host_fingerprint",
    "host_info",
    "make_record",
    "render_markdown_table",
    "render_text_table",
]
