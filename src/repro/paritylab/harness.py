"""Randomized differential-parity fuzzing of the engine x backend matrix.

The hand-enumerated parity tests pin a handful of request shapes; this
harness samples the whole space.  One *case* is a synthetic scene plus a
fusion configuration plus a set of engine/backend *combos*; running a case
fuses the scene once with the sequential reference engine and once per
combo, then diffs every report against the reference:

* ``float64`` (the default compute dtype) composites, PCT bases and
  unique-set sizes must match **bit for bit** -- that is the paper's claim
  and the repo-wide invariant every optimization PR leans on.
* ``float32`` (the documented fast mode) composites are compared through a
  tolerance tier (:data:`FLOAT32_COMPOSITE_ATOL`); unique-set sizes must
  still match exactly because the screening decomposition is deterministic
  for a fixed dtype.
* Report metadata invariants (shape, value range, finiteness, engine
  labels, non-negative timings) are checked on every run, reference
  included.

A failing case is *shrunk* -- scene dimensions and band counts are halved,
combos and knobs dropped, while the failure keeps reproducing -- and the
minimal case is serialised as a schema-versioned JSON repro suitable for
committing into ``tests/parity_corpus/``.  The corpus doubles as a
regression suite: :func:`replay_corpus` re-runs every committed repro and
expects it to be green.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..api.facade import fuse
from ..api.request import FusionReport
from ..config import FusionConfig, PartitionConfig, ScreeningConfig
from ..core.kernels import NumbaBackend
from ..data.cube import HyperspectralCube
from ..data.hydice import HydiceConfig, HydiceGenerator
from ..data.scene import target_capacity
from ..scp.pool import default_start_method

#: Schema tags stamped into every serialised case / repro (bump on layout
#: changes so old corpus files are rejected loudly, not misread).
CASE_SCHEMA = "repro-fusion/parity-case/v1"
REPRO_SCHEMA = "repro-fusion/parity-repro/v1"

#: Tolerance tier of the float32 fast mode.  The repo's own dtype tests
#: accept |composite - float64 reference| <= 5e-3; engines sharing one
#: dtype sit far inside that, so the differential band can be tighter.
FLOAT32_COMPOSITE_ATOL = 1e-3

#: Shrinker floors: below these the scene stops being a fusion problem
#: (the screening pass needs a few distinct spectra to screen).
MIN_ROWS = 16
MIN_COLS = 16
MIN_BANDS = 8

#: Engines exercised by every sampled case (the sequential engine is the
#: reference and always runs).
FUZZ_ENGINES = ("distributed", "resilient", "pipeline")


# ---------------------------------------------------------------------------
# case model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ComboSpec:
    """One engine x backend point of a case, with its per-engine knobs."""

    engine: str
    backend: str
    #: Pipeline engine only: streaming tile size / scheduler / transport.
    tile_rows: Optional[int] = None
    adaptive_tiles: bool = False
    zero_copy: Optional[bool] = None
    #: Resilient engine only: replication level override.
    replication: Optional[int] = None

    def label(self) -> str:
        parts = [self.engine, self.backend]
        if self.tile_rows is not None:
            parts.append(f"tile={self.tile_rows}")
        if self.adaptive_tiles:
            parts.append("adaptive")
        if self.zero_copy is not None:
            parts.append("zero-copy" if self.zero_copy else "spool")
        if self.replication is not None:
            parts.append(f"repl={self.replication}")
        return "/".join(parts)

    def request_options(self) -> Dict[str, object]:
        """The FusionRequest keyword arguments this combo adds."""
        options: Dict[str, object] = {}
        if self.tile_rows is not None:
            options["tile_rows"] = self.tile_rows
        if self.adaptive_tiles:
            options["adaptive_tiles"] = True
        if self.zero_copy is not None:
            options["zero_copy"] = self.zero_copy
        if self.replication is not None:
            options["replication"] = self.replication
        return options

    def to_dict(self) -> Dict[str, object]:
        return {"engine": self.engine, "backend": self.backend,
                "tile_rows": self.tile_rows,
                "adaptive_tiles": self.adaptive_tiles,
                "zero_copy": self.zero_copy,
                "replication": self.replication}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ComboSpec":
        return cls(engine=str(data["engine"]), backend=str(data["backend"]),
                   tile_rows=data.get("tile_rows"),
                   adaptive_tiles=bool(data.get("adaptive_tiles", False)),
                   zero_copy=data.get("zero_copy"),
                   replication=data.get("replication"))


@dataclass(frozen=True)
class ParityCase:
    """A fully-specified differential run: scene + config + combos."""

    bands: int
    rows: int
    cols: int
    scene_seed: int
    vehicles: int = 1
    camouflaged: int = 1
    angle_threshold: float = 0.05
    max_unique: Optional[int] = 512
    workers: int = 2
    subcubes: int = 4
    compute_dtype: str = "float64"
    compute: str = "numpy"
    combos: Tuple[ComboSpec, ...] = ()

    # ------------------------------------------------------------- identity
    def case_id(self) -> str:
        """Stable short id derived from the canonical JSON form."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    # ------------------------------------------------------- materialisation
    def cube(self) -> HyperspectralCube:
        config = HydiceConfig(bands=self.bands, rows=self.rows, cols=self.cols,
                              seed=self.scene_seed, vehicles=self.vehicles,
                              camouflaged_vehicles=self.camouflaged)
        return HydiceGenerator(config).generate()

    def config(self) -> FusionConfig:
        return FusionConfig(
            screening=ScreeningConfig(angle_threshold=self.angle_threshold,
                                      max_unique=self.max_unique),
            partition=PartitionConfig(workers=self.workers,
                                      subcubes=self.subcubes),
            compute_dtype=self.compute_dtype,
            compute=self.compute)

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CASE_SCHEMA,
            "scene": {"bands": self.bands, "rows": self.rows,
                      "cols": self.cols, "seed": self.scene_seed,
                      "vehicles": self.vehicles,
                      "camouflaged": self.camouflaged},
            "screening": {"angle_threshold": self.angle_threshold,
                          "max_unique": self.max_unique},
            "partition": {"workers": self.workers, "subcubes": self.subcubes},
            "compute_dtype": self.compute_dtype,
            "compute": self.compute,
            "combos": [combo.to_dict() for combo in self.combos],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ParityCase":
        schema = data.get("schema")
        if schema != CASE_SCHEMA:
            raise ValueError(f"unsupported parity-case schema {schema!r} "
                             f"(this build reads {CASE_SCHEMA!r})")
        scene = data["scene"]
        screening = data["screening"]
        partition = data["partition"]
        return cls(bands=int(scene["bands"]), rows=int(scene["rows"]),
                   cols=int(scene["cols"]), scene_seed=int(scene["seed"]),
                   vehicles=int(scene.get("vehicles", 1)),
                   camouflaged=int(scene.get("camouflaged", 1)),
                   angle_threshold=float(screening["angle_threshold"]),
                   max_unique=screening.get("max_unique"),
                   workers=int(partition["workers"]),
                   subcubes=int(partition["subcubes"]),
                   compute_dtype=str(data.get("compute_dtype", "float64")),
                   compute=str(data.get("compute", "numpy")),
                   combos=tuple(ComboSpec.from_dict(c)
                                for c in data.get("combos", [])))


# ---------------------------------------------------------------------------
# sampling
# ---------------------------------------------------------------------------

def _sample_backend(rng: random.Random) -> str:
    """Weighted backend choice: threads dominate, real processes appear.

    The sim/local backends run a combo in milliseconds, so they carry the
    bulk of the sampling; the process backend is the expensive-but-real
    point and is sampled often enough that every fuzz run crosses it.
    """
    roll = rng.random()
    if roll < 0.40:
        return "sim"
    if roll < 0.85:
        return "local"
    return "process"


def sample_case(rng: random.Random) -> ParityCase:
    """Draw one case from the seeded generator.

    Every case covers all four engines: the sequential reference plus one
    sampled backend (and knob set) per non-sequential engine, so a fuzz
    session of N cases runs 4N engine executions.
    """
    workers = rng.choice([1, 2, 3])
    combos: List[ComboSpec] = []
    for engine in FUZZ_ENGINES:
        backend = _sample_backend(rng)
        tile_rows = None
        adaptive = False
        zero_copy: Optional[bool] = None
        replication: Optional[int] = None
        if engine == "pipeline":
            tile_rows = rng.choice([None, 1, 2, 5, 9, 16])
            adaptive = rng.random() < 0.3
            # Forcing the shared-memory result path is only meaningful on
            # process executors; threads return blocks in-process.
            choices: List[Optional[bool]] = [None, False]
            if backend == "process":
                choices.append(True)
            zero_copy = rng.choice(choices)
        elif engine == "resilient":
            replication = rng.choice([None, 2])
        combos.append(ComboSpec(engine=engine, backend=backend,
                                tile_rows=tile_rows, adaptive_tiles=adaptive,
                                zero_copy=zero_copy, replication=replication))
    rows = rng.choice([16, 24, 32, 40, 48])
    cols = rng.choice([16, 24, 32, 40, 48])
    # Any sampled size can host targets now -- the scene generator has a
    # deterministic placement fallback and a published capacity bound.
    capacity = target_capacity(rows, cols)
    vehicles = min(int(rng.choice([1, 2])), capacity)
    camouflaged = min(int(rng.choice([0, 1])), capacity - vehicles)
    return ParityCase(
        bands=rng.choice([8, 12, 16, 24, 32]),
        rows=rows,
        cols=cols,
        scene_seed=rng.randrange(1_000_000),
        vehicles=vehicles,
        camouflaged=camouflaged,
        angle_threshold=rng.choice([0.02, 0.05, 0.08, 0.12]),
        max_unique=rng.choice([128, 256, 512]),
        workers=workers,
        subcubes=workers * rng.choice([1, 2, 3]),
        compute_dtype="float64" if rng.random() < 0.7 else "float32",
        # The jit tier joins the sampled space only where numba can actually
        # compile; degraded-to-numpy runs would all be the numpy point.
        compute=("numba" if NumbaBackend.available() and rng.random() < 0.4
                 else "numpy"),
        combos=tuple(combos))


# ---------------------------------------------------------------------------
# differential execution
# ---------------------------------------------------------------------------

@dataclass
class ParityViolation:
    """One observed divergence between a combo and the reference."""

    engine: str
    backend: str
    kind: str
    detail: str
    max_abs_diff: Optional[float] = None

    def describe(self) -> str:
        diff = (f" (max |diff| {self.max_abs_diff:.3e})"
                if self.max_abs_diff is not None else "")
        return f"[{self.engine}/{self.backend}] {self.kind}: {self.detail}{diff}"

    def to_dict(self) -> Dict[str, object]:
        return {"engine": self.engine, "backend": self.backend,
                "kind": self.kind, "detail": self.detail,
                "max_abs_diff": self.max_abs_diff}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ParityViolation":
        return cls(engine=str(data["engine"]), backend=str(data["backend"]),
                   kind=str(data["kind"]), detail=str(data["detail"]),
                   max_abs_diff=data.get("max_abs_diff"))


@dataclass
class CaseOutcome:
    """Everything one differential run of a case produced."""

    case: ParityCase
    violations: List[ParityViolation] = field(default_factory=list)
    combos_run: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


def _backend_spec(backend: str) -> str:
    """Pin bare ``process`` to the platform's cheap start method."""
    if backend == "process":
        return f"process:{default_start_method()}"
    return backend


def _check_invariants(report: FusionReport, case: ParityCase,
                      combo_label: Tuple[str, str]) -> List[ParityViolation]:
    """Metadata invariants every FusionReport must satisfy."""
    engine, backend = combo_label
    violations: List[ParityViolation] = []

    def bad(kind: str, detail: str, diff: Optional[float] = None) -> None:
        violations.append(ParityViolation(engine=engine, backend=backend,
                                          kind=kind, detail=detail,
                                          max_abs_diff=diff))

    composite = report.composite
    expected_shape = (case.rows, case.cols, 3)
    if composite.shape != expected_shape:
        bad("shape", f"composite shape {composite.shape} != {expected_shape}")
        return violations
    if not np.all(np.isfinite(composite)):
        bad("finite", "composite contains non-finite values")
    elif composite.min() < 0.0 or composite.max() > 1.0:
        bad("range", f"composite outside [0, 1]: "
                     f"[{composite.min():.4f}, {composite.max():.4f}]")
    if report.unique_set_size < 1:
        bad("unique-set", f"unique_set_size {report.unique_set_size} < 1")
    if report.engine != engine:
        bad("label", f"report.engine {report.engine!r} != requested {engine!r}")
    if report.elapsed_seconds < 0:
        bad("timing", f"negative elapsed_seconds {report.elapsed_seconds}")
    if any(t.seconds < 0 for t in report.stage_timings.values()):
        bad("timing", "negative stage timing recorded")
    return violations


def _diff_reports(reference: FusionReport, report: FusionReport,
                  case: ParityCase, combo: ComboSpec) -> List[ParityViolation]:
    """Diff a combo's report against the sequential reference report."""
    violations: List[ParityViolation] = []

    def bad(kind: str, detail: str, diff: Optional[float] = None) -> None:
        violations.append(ParityViolation(engine=combo.engine,
                                          backend=combo.backend, kind=kind,
                                          detail=detail, max_abs_diff=diff))

    if report.unique_set_size != reference.unique_set_size:
        bad("unique-set", f"unique_set_size {report.unique_set_size} != "
                          f"reference {reference.unique_set_size}")
    if report.composite.shape != reference.composite.shape:
        bad("shape", f"composite shape {report.composite.shape} != "
                     f"reference {reference.composite.shape}")
        return violations

    diff = np.abs(np.asarray(report.composite, dtype=np.float64)
                  - np.asarray(reference.composite, dtype=np.float64))
    max_diff = float(diff.max()) if diff.size else 0.0
    if case.compute_dtype == "float64":
        if not np.array_equal(report.composite, reference.composite):
            bad("composite", "float64 composite not bit-identical to the "
                             "sequential reference", max_diff)
        if not np.array_equal(report.result.basis.components,
                              reference.result.basis.components):
            bad("basis", "float64 PCT basis not bit-identical to the "
                         "sequential reference")
    else:
        if max_diff > FLOAT32_COMPOSITE_ATOL:
            bad("composite", f"float32 composite outside the tolerance tier "
                             f"(atol {FLOAT32_COMPOSITE_ATOL})", max_diff)
    return violations


def run_case(case: ParityCase) -> CaseOutcome:
    """Run the full differential: reference + every combo, diff everything.

    A combo that *raises* is recorded as an ``error`` violation rather than
    aborting the fuzz session -- a crash on a sampled configuration is
    exactly the kind of finding the harness exists to surface.
    """
    start = time.perf_counter()
    outcome = CaseOutcome(case=case)
    cube = case.cube()
    config = case.config()

    reference = fuse(cube, engine="sequential", config=config)
    outcome.combos_run += 1
    outcome.violations.extend(
        _check_invariants(reference, case, ("sequential", "inline")))

    for combo in case.combos:
        try:
            report = fuse(cube, engine=combo.engine,
                          backend=_backend_spec(combo.backend), config=config,
                          **combo.request_options())
        except Exception as exc:  # noqa: BLE001 - fuzz findings, not bugs here
            outcome.violations.append(ParityViolation(
                engine=combo.engine, backend=combo.backend, kind="error",
                detail=f"{type(exc).__name__}: {exc}"))
            continue
        outcome.combos_run += 1
        outcome.violations.extend(
            _check_invariants(report, case, (combo.engine, combo.backend)))
        outcome.violations.extend(_diff_reports(reference, report, case, combo))

    outcome.seconds = time.perf_counter() - start
    return outcome


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

def _fit_targets(case: ParityCase) -> ParityCase:
    """Refit the target counts to a shrunken scene's placement capacity."""
    capacity = target_capacity(case.rows, case.cols)
    vehicles = min(case.vehicles, capacity)
    camouflaged = min(case.camouflaged, capacity - vehicles)
    if (vehicles, camouflaged) == (case.vehicles, case.camouflaged):
        return case
    return replace(case, vehicles=vehicles, camouflaged=camouflaged)


def _shrink_candidates(case: ParityCase) -> Iterator[ParityCase]:
    """Strictly-smaller variants of ``case``, most aggressive first."""
    if case.rows > MIN_ROWS:
        yield _fit_targets(
            replace(case, rows=max(MIN_ROWS, case.rows // 2)))
    if case.cols > MIN_COLS:
        yield _fit_targets(
            replace(case, cols=max(MIN_COLS, case.cols // 2)))
    if case.bands > MIN_BANDS:
        yield replace(case, bands=max(MIN_BANDS, case.bands // 2))
    if len(case.combos) > 1:
        for combo in case.combos:
            yield replace(case, combos=(combo,))
    if case.subcubes > case.workers:
        yield replace(case, subcubes=case.workers)
    if case.workers > 1:
        new_workers = max(1, case.workers // 2)
        yield replace(case, workers=new_workers,
                      subcubes=max(new_workers,
                                   min(case.subcubes, new_workers * 2)))
    if case.vehicles > 1 or case.camouflaged > 0:
        yield replace(case, vehicles=1, camouflaged=0)
    if case.vehicles > 0:
        yield replace(case, vehicles=0, camouflaged=0)
    if case.compute != "numpy":
        yield replace(case, compute="numpy")
    # Knob simplification: a repro that fires without the optional knobs is
    # a strictly better repro.
    simplified = tuple(replace(combo, tile_rows=None, adaptive_tiles=False,
                               zero_copy=None, replication=None)
                       for combo in case.combos)
    if simplified != case.combos:
        yield replace(case, combos=simplified)


def shrink_case(case: ParityCase,
                is_failing: Optional[Callable[[ParityCase], bool]] = None,
                *, max_attempts: int = 64) -> Tuple[ParityCase, int]:
    """Greedy shrink: keep any smaller variant that still fails.

    ``is_failing`` defaults to re-running the case through the full
    differential; tests inject cheaper predicates.  Returns the minimal
    failing case and the number of candidate evaluations spent.
    """
    if is_failing is None:
        is_failing = lambda candidate: not run_case(candidate).ok  # noqa: E731
    attempts = 0
    current = case
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in _shrink_candidates(current):
            if candidate == current:
                continue
            attempts += 1
            if is_failing(candidate):
                current = candidate
                progressed = True
                break
            if attempts >= max_attempts:
                break
    return current, attempts


# ---------------------------------------------------------------------------
# corpus
# ---------------------------------------------------------------------------

def save_repro(outcome: CaseOutcome, directory: Path, *,
               original: Optional[ParityCase] = None,
               note: str = "") -> Path:
    """Serialise a (shrunk) failing case as a corpus repro file."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": REPRO_SCHEMA,
        "case": outcome.case.to_dict(),
        "violations": [v.to_dict() for v in outcome.violations],
        "original_case": original.to_dict() if original is not None else None,
        "note": note,
    }
    path = directory / f"repro-{outcome.case.case_id()}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_repro(path: Path) -> Tuple[ParityCase, List[ParityViolation], str]:
    """Read one corpus repro: (case, recorded violations, note)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = data.get("schema")
    if schema != REPRO_SCHEMA:
        raise ValueError(f"unsupported parity-repro schema {schema!r} in "
                         f"{path} (this build reads {REPRO_SCHEMA!r})")
    case = ParityCase.from_dict(data["case"])
    violations = [ParityViolation.from_dict(v)
                  for v in data.get("violations", [])]
    return case, violations, str(data.get("note", ""))


@dataclass
class ReplayEntry:
    """One corpus file replayed through the current build."""

    path: Path
    outcome: CaseOutcome
    note: str = ""


def replay_corpus(directory: Path) -> List[ReplayEntry]:
    """Re-run every committed repro; all of them must be green now.

    The corpus holds *fixed* failures (and sentinel coverage cases), so a
    replay that reproduces a violation means a regression re-opened it.
    """
    entries: List[ReplayEntry] = []
    for path in sorted(Path(directory).glob("repro-*.json")):
        case, _, note = load_repro(path)
        entries.append(ReplayEntry(path=path, outcome=run_case(case),
                                   note=note))
    return entries


# ---------------------------------------------------------------------------
# the fuzz loop
# ---------------------------------------------------------------------------

@dataclass
class FuzzResult:
    """Aggregate of one fuzz session."""

    seed: int
    cases_run: int = 0
    combos_run: int = 0
    engine_runs: Dict[str, int] = field(default_factory=dict)
    failures: List[CaseOutcome] = field(default_factory=list)
    repro_paths: List[Path] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        engines = ", ".join(f"{name} x{count}" for name, count
                            in sorted(self.engine_runs.items()))
        lines = [
            f"fuzz seed {self.seed}: {self.cases_run} sampled configs, "
            f"{self.combos_run} engine runs in {self.seconds:.1f}s",
            f"  engine coverage : {engines or 'none'}",
            f"  parity failures : {len(self.failures)}",
        ]
        for outcome in self.failures:
            lines.append(f"    case {outcome.case.case_id()}:")
            for violation in outcome.violations:
                lines.append(f"      {violation.describe()}")
        for path in self.repro_paths:
            lines.append(f"  wrote repro {path}")
        return "\n".join(lines)


def fuzz(*, seconds: float = 30.0, seed: int = 0,
         corpus_dir: Optional[Path] = None,
         max_cases: Optional[int] = None,
         shrink: bool = True,
         sampler: Callable[[random.Random], ParityCase] = sample_case,
         runner: Callable[[ParityCase], CaseOutcome] = run_case) -> FuzzResult:
    """Time-boxed fuzz session: sample, run, shrink and record failures.

    The time budget bounds *starting* new cases; an in-flight case always
    completes, so the wall clock can slightly overshoot ``seconds``.
    Failures are shrunk (when ``shrink``) and serialised into
    ``corpus_dir`` in the committed repro format.
    """
    rng = random.Random(seed)
    result = FuzzResult(seed=seed)
    started = time.perf_counter()
    deadline = started + seconds
    while time.perf_counter() < deadline:
        if max_cases is not None and result.cases_run >= max_cases:
            break
        case = sampler(rng)
        outcome = runner(case)
        result.cases_run += 1
        result.combos_run += outcome.combos_run
        result.engine_runs["sequential"] = (
            result.engine_runs.get("sequential", 0) + 1)
        for combo in case.combos:
            result.engine_runs[combo.engine] = (
                result.engine_runs.get(combo.engine, 0) + 1)
        if outcome.ok:
            continue
        original = case
        if shrink:
            minimal, _ = shrink_case(
                case, lambda candidate: not runner(candidate).ok)
            outcome = runner(minimal)
            if outcome.ok:  # flaky failure: keep the original evidence
                outcome = runner(original)
                minimal = original
            if outcome.ok:
                continue
        result.failures.append(outcome)
        if corpus_dir is not None:
            result.repro_paths.append(save_repro(
                outcome, Path(corpus_dir), original=original,
                note="recorded by repro-fusion fuzz"))
    result.seconds = time.perf_counter() - started
    return result


__all__ = [
    "CASE_SCHEMA",
    "REPRO_SCHEMA",
    "FLOAT32_COMPOSITE_ATOL",
    "ComboSpec",
    "ParityCase",
    "ParityViolation",
    "CaseOutcome",
    "ReplayEntry",
    "FuzzResult",
    "sample_case",
    "run_case",
    "shrink_case",
    "save_repro",
    "load_repro",
    "replay_corpus",
    "fuzz",
]
