"""Benchmark-trend ledger: schema-versioned history with regression gates.

Every benchmark in ``benchmarks/`` emits one ``--json`` artifact per run.
Historically each had its own ad-hoc payload and the numbers evaporated
with the CI run; this module turns them into *records* of one shared
schema (:data:`RECORD_SCHEMA`) that are appended to a tracked
``benchmarks/history/<benchmark>.jsonl`` ledger and gated against a
rolling-median baseline.

A record carries:

* the benchmark name and a list of metrics -- ``(name, value, unit,
  direction)`` where direction says which way is better,
* the host fingerprint (platform/CPU/python digest) so baselines are only
  compared within one host class -- a laptop's wall clock never gates a CI
  runner's,
* the git SHA and a UTC timestamp for provenance,
* the benchmark's full original payload, so nothing the old artifacts
  carried is lost.

The gate (:meth:`BenchLedger.check_record`) takes the rolling median of
the last ``window`` baseline values for each metric (same benchmark, same
host class, same quick/full mode) and fails when the new value is worse
than the median by more than ``noise_band`` (a fraction; 0.25 means a 25%
band).  Fewer than ``min_samples`` baseline points means "no baseline yet"
and the metric passes with that status -- the gate arms itself as history
accumulates.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Schema tag of every ledger record (bump on layout changes).
RECORD_SCHEMA = "repro-fusion/bench-record/v1"

#: Default noise band of the regression gate: a metric may drift this
#: fraction past the rolling-median baseline before the gate fires.
DEFAULT_NOISE_BAND = 0.25

#: Default rolling window (records per metric) the baseline median uses.
DEFAULT_WINDOW = 20

#: Minimum same-host baseline samples before the gate arms.
DEFAULT_MIN_SAMPLES = 3

_DIRECTIONS = ("lower", "higher")


class LedgerError(ValueError):
    """Raised on malformed records, unknown schemas or unreadable files."""


# ---------------------------------------------------------------------------
# host / provenance
# ---------------------------------------------------------------------------

def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def host_info() -> Dict[str, object]:
    """The host-class description embedded in every record."""
    info: Dict[str, object] = {
        "system": platform.system(),
        "machine": platform.machine(),
        "python": ".".join(platform.python_version_tuple()[:2]),
        "cpus": _usable_cpus(),
    }
    info["fingerprint"] = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode()).hexdigest()[:12]
    return info


def host_fingerprint() -> str:
    """Digest of the host class (platform, arch, python line, CPU count)."""
    return str(host_info()["fingerprint"])


def git_sha(cwd: Optional[Path] = None) -> str:
    """HEAD commit of the enclosing checkout, or ``"unknown"``."""
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=10,
                              cwd=cwd)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Metric:
    """One gated measurement: name, value, unit and which way is better."""

    name: str
    value: float
    unit: str
    direction: str = "lower"

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise LedgerError(f"metric {self.name!r}: direction must be one "
                              f"of {_DIRECTIONS}, got {self.direction!r}")
        if not isinstance(self.value, (int, float)):
            raise LedgerError(f"metric {self.name!r}: value must be numeric, "
                              f"got {type(self.value).__name__}")

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "value": float(self.value),
                "unit": self.unit, "direction": self.direction}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Metric":
        return cls(name=str(data["name"]), value=float(data["value"]),
                   unit=str(data.get("unit", "")),
                   direction=str(data.get("direction", "lower")))


def make_record(benchmark: str, metrics: Sequence[Metric], *,
                verdict: Optional[str] = None,
                payload: Optional[Dict[str, object]] = None,
                quick: bool = False,
                created_unix: Optional[float] = None,
                cwd: Optional[Path] = None) -> Dict[str, object]:
    """Build one schema-versioned ledger record."""
    if not benchmark:
        raise LedgerError("benchmark name must be non-empty")
    if not metrics:
        raise LedgerError(f"benchmark {benchmark!r}: at least one metric "
                          f"is required")
    return {
        "schema": RECORD_SCHEMA,
        "benchmark": benchmark,
        "created_unix": (time.time() if created_unix is None
                         else float(created_unix)),
        "git_sha": git_sha(cwd),
        "host": host_info(),
        "quick": bool(quick),
        "metrics": [metric.to_dict() for metric in metrics],
        "verdict": verdict,
        "payload": payload or {},
    }


def validate_record(record: Dict[str, object], *,
                    source: str = "record") -> Dict[str, object]:
    """Check a record's schema tag and required fields; return it."""
    if not isinstance(record, dict):
        raise LedgerError(f"{source}: not a JSON object")
    schema = record.get("schema")
    if schema != RECORD_SCHEMA:
        raise LedgerError(
            f"{source}: schema {schema!r} is not {RECORD_SCHEMA!r} -- "
            f"regenerate it with the current benchmark harness")
    for key in ("benchmark", "host", "metrics"):
        if key not in record:
            raise LedgerError(f"{source}: missing required field {key!r}")
    for metric in record["metrics"]:
        Metric.from_dict(metric)  # validates names/directions
    return record


def load_record_file(path: Path) -> Dict[str, object]:
    """Read and validate one benchmark ``--json`` artifact."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise LedgerError(f"{path}: unreadable bench record ({exc})") from exc
    return validate_record(data, source=str(path))


# ---------------------------------------------------------------------------
# checks
# ---------------------------------------------------------------------------

@dataclass
class MetricCheck:
    """Gate verdict for one metric of one record."""

    benchmark: str
    metric: str
    unit: str
    direction: str
    current: float
    baseline: Optional[float]
    samples: int
    delta: Optional[float]
    status: str  # "ok" | "improved" | "regression" | "no-baseline"

    @property
    def regressed(self) -> bool:
        return self.status == "regression"

    def describe(self) -> str:
        if self.baseline is None:
            return (f"{self.benchmark}/{self.metric}: {self.current:.4g} "
                    f"{self.unit} ({self.status}: {self.samples} baseline "
                    f"sample(s))")
        return (f"{self.benchmark}/{self.metric}: {self.current:.4g} "
                f"{self.unit} vs baseline {self.baseline:.4g} "
                f"({self.delta:+.1%}, {self.status})")


class BenchLedger:
    """Append-only benchmark history under one directory.

    Each benchmark owns one ``<benchmark>.jsonl`` file; a line is one
    record.  Lines with foreign schemas are skipped (counted, not fatal)
    so a schema bump never bricks an old checkout's history.
    """

    def __init__(self, history_dir: Path) -> None:
        self.history_dir = Path(history_dir)
        self.skipped_lines = 0

    # ------------------------------------------------------------ file layout
    def path_for(self, benchmark: str) -> Path:
        return self.history_dir / f"{benchmark}.jsonl"

    def benchmarks(self) -> List[str]:
        if not self.history_dir.is_dir():
            return []
        return sorted(path.stem for path in self.history_dir.glob("*.jsonl"))

    # ------------------------------------------------------------------- I/O
    def append(self, record: Dict[str, object]) -> Path:
        validate_record(record)
        self.history_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(str(record["benchmark"]))
        with path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path

    def records(self, benchmark: str) -> List[Dict[str, object]]:
        path = self.path_for(benchmark)
        if not path.is_file():
            return []
        loaded: List[Dict[str, object]] = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.skipped_lines += 1
                continue
            if (isinstance(record, dict)
                    and record.get("schema") == RECORD_SCHEMA):
                loaded.append(record)
            else:
                self.skipped_lines += 1
        loaded.sort(key=lambda r: r.get("created_unix", 0.0))
        return loaded

    # --------------------------------------------------------------- baseline
    def baseline_values(self, benchmark: str, metric: str, *,
                        fingerprint: Optional[str] = None,
                        quick: Optional[bool] = None,
                        window: int = DEFAULT_WINDOW) -> List[float]:
        """The last ``window`` recorded values of one metric.

        ``fingerprint``/``quick`` restrict the baseline to the matching
        host class and benchmark mode; ``None`` disables that filter.
        """
        values: List[float] = []
        for record in self.records(benchmark):
            if fingerprint is not None:
                host = record.get("host") or {}
                if host.get("fingerprint") != fingerprint:
                    continue
            if quick is not None and bool(record.get("quick")) != quick:
                continue
            for entry in record.get("metrics", []):
                if entry.get("name") == metric:
                    values.append(float(entry["value"]))
        return values[-window:]

    # ------------------------------------------------------------------ gate
    def check_record(self, record: Dict[str, object], *,
                     noise_band: float = DEFAULT_NOISE_BAND,
                     window: int = DEFAULT_WINDOW,
                     min_samples: int = DEFAULT_MIN_SAMPLES,
                     ignore_host: bool = False) -> List[MetricCheck]:
        """Gate every metric of ``record`` against the rolling baseline."""
        validate_record(record)
        benchmark = str(record["benchmark"])
        fingerprint = (None if ignore_host
                       else (record.get("host") or {}).get("fingerprint"))
        quick = bool(record.get("quick"))
        checks: List[MetricCheck] = []
        for entry in record.get("metrics", []):
            metric = Metric.from_dict(entry)
            values = self.baseline_values(benchmark, metric.name,
                                          fingerprint=fingerprint,
                                          quick=quick, window=window)
            if len(values) < min_samples:
                checks.append(MetricCheck(
                    benchmark=benchmark, metric=metric.name, unit=metric.unit,
                    direction=metric.direction, current=metric.value,
                    baseline=None, samples=len(values), delta=None,
                    status="no-baseline"))
                continue
            baseline = statistics.median(values)
            if baseline == 0:
                delta = 0.0 if metric.value == 0 else float("inf")
            else:
                delta = (metric.value - baseline) / abs(baseline)
            if metric.direction == "lower":
                regressed = delta > noise_band
                improved = delta < -noise_band
            else:
                regressed = delta < -noise_band
                improved = delta > noise_band
            status = ("regression" if regressed
                      else "improved" if improved else "ok")
            checks.append(MetricCheck(
                benchmark=benchmark, metric=metric.name, unit=metric.unit,
                direction=metric.direction, current=metric.value,
                baseline=baseline, samples=len(values), delta=delta,
                status=status))
        return checks

    def check_files(self, paths: Iterable[Path],
                    **gate_options: Any) -> List[MetricCheck]:
        """Gate a batch of bench ``--json`` artifacts; order preserved."""
        checks: List[MetricCheck] = []
        for path in paths:
            checks.extend(self.check_record(load_record_file(path),
                                            **gate_options))
        return checks

    def record_files(self, paths: Iterable[Path]) -> List[Path]:
        """Validate and append a batch of artifacts; returns ledger paths."""
        return [self.append(load_record_file(path)) for path in paths]

    def latest_records(self) -> List[Dict[str, object]]:
        """The newest record of every benchmark in the ledger."""
        latest = []
        for benchmark in self.benchmarks():
            records = self.records(benchmark)
            if records:
                latest.append(records[-1])
        return latest


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _check_rows(checks: Sequence[MetricCheck]) -> List[List[str]]:
    rows = []
    for check in checks:
        baseline = ("-" if check.baseline is None
                    else f"{check.baseline:.4g}")
        delta = "-" if check.delta is None else f"{check.delta:+.1%}"
        rows.append([check.benchmark, check.metric, check.unit,
                     baseline, f"{check.current:.4g}", delta, check.status])
    return rows


def render_text_table(checks: Sequence[MetricCheck],
                      title: str = "benchmark-trend ledger") -> str:
    """Fixed-width gate table for terminals."""
    headers = ["benchmark", "metric", "unit", "baseline", "current",
               "delta", "status"]
    rows = _check_rows(checks)
    widths = [max(len(headers[i]), *(len(row[i]) for row in rows))
              if rows else len(headers[i]) for i in range(len(headers))]
    lines = [title,
             "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
             "  ".join("-" * widths[i] for i in range(len(headers)))]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    if not rows:
        lines.append("(no metrics)")
    return "\n".join(lines)


def render_markdown_table(checks: Sequence[MetricCheck],
                          title: str = "Benchmark-trend ledger") -> str:
    """GitHub-flavoured markdown table for ``$GITHUB_STEP_SUMMARY``."""
    lines = [f"### {title}", "",
             "| benchmark | metric | unit | baseline | current | delta "
             "| status |",
             "| --- | --- | --- | --- | --- | --- | --- |"]
    for row in _check_rows(checks):
        status = row[6]
        badge = {"ok": "✅ ok", "improved": "🟢 improved",
                 "regression": "🔴 regression",
                 "no-baseline": "⚪ no baseline"}.get(status, status)
        lines.append("| " + " | ".join(row[:6] + [badge]) + " |")
    if not checks:
        lines.append("| _(no metrics)_ |  |  |  |  |  |  |")
    return "\n".join(lines)


__all__ = [
    "RECORD_SCHEMA",
    "DEFAULT_NOISE_BAND",
    "DEFAULT_WINDOW",
    "DEFAULT_MIN_SAMPLES",
    "LedgerError",
    "Metric",
    "MetricCheck",
    "BenchLedger",
    "make_record",
    "validate_record",
    "load_record_file",
    "host_info",
    "host_fingerprint",
    "git_sha",
    "render_text_table",
    "render_markdown_table",
]
