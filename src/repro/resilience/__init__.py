"""Computational resiliency library.

Implements Section 2 of the paper as an application-independent layer over
the SCP runtime: replication policies (:mod:`.policy`), replica-group
bookkeeping (:mod:`.replication`), heartbeat failure detection
(:mod:`.detector`), dynamic regeneration with state restoration
(:mod:`.recovery`), race-free communication reconfiguration
(:mod:`.reconfigure`), resource-aware placement (:mod:`.resource`),
scripted attack campaigns (:mod:`.attack`), camouflage through migration
(:mod:`.camouflage`) and the coordinator that wires it all onto a run
(:mod:`.coordinator`).
"""

from .attack import (FAIL_NODE, KILL_REPLICA, KILL_THREAD, AttackEvent,
                     AttackScenario, ScriptedAdversary)
from .camouflage import CamouflagePolicy, MigrationRecord
from .coordinator import ResilienceCoordinator, protocol_config_for
from .detector import HeartbeatFailureDetector, SuspicionRecord
from .policy import ReplicationPolicy
from .reconfigure import ReconfigurationProtocol, ReconfigurationRecord
from .recovery import RecoveryEvent, RecoveryService
from .replication import ReplicaGroup, ReplicationManager
from .resource import ResourceManager

__all__ = [
    "FAIL_NODE",
    "KILL_REPLICA",
    "KILL_THREAD",
    "AttackEvent",
    "AttackScenario",
    "ScriptedAdversary",
    "CamouflagePolicy",
    "MigrationRecord",
    "ResilienceCoordinator",
    "protocol_config_for",
    "HeartbeatFailureDetector",
    "SuspicionRecord",
    "ReplicationPolicy",
    "ReconfigurationProtocol",
    "ReconfigurationRecord",
    "RecoveryEvent",
    "RecoveryService",
    "ReplicaGroup",
    "ReplicationManager",
    "ResourceManager",
]
