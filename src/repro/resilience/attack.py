"""Information-warfare attack / fault-injection campaigns.

The paper evaluates resiliency against "information warfare attacks" on a
battlefield network.  For the reproduction, attacks are scripted campaigns of
fault events injected into the execution backend at chosen (virtual) times:
killing a single replica, taking down a whole node, or repeatedly targeting
whichever replicas of a logical thread are currently alive (the "persistent
adversary" that regeneration is designed to outlast).

Campaigns are data (a list of :class:`AttackEvent`), so they can be stored in
benchmark configurations, shown in reports and generated randomly from a
seed.  The :class:`ScriptedAdversary` is what arms them on a backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..logging_utils import get_logger

_LOG = get_logger("resilience.attack")

#: Supported attack kinds.
KILL_THREAD = "kill_thread"
KILL_REPLICA = "kill_replica"
FAIL_NODE = "fail_node"


@dataclass(frozen=True)
class AttackEvent:
    """One scheduled fault.

    Attributes
    ----------
    time:
        Virtual (or wall-clock) seconds after the start of the run.
    kind:
        One of :data:`KILL_THREAD` (kill every live replica of a logical
        thread), :data:`KILL_REPLICA` (kill one specific physical replica or
        the first live replica of a logical thread), :data:`FAIL_NODE`
        (crash a whole workstation).
    target:
        Logical thread name, physical id, or node name depending on ``kind``.
    """

    time: float
    kind: str
    target: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("attack time must be non-negative")
        if self.kind not in (KILL_THREAD, KILL_REPLICA, FAIL_NODE):
            raise ValueError(f"unknown attack kind {self.kind!r}")
        if not self.target:
            raise ValueError("attack target must be non-empty")


@dataclass
class AttackScenario:
    """A named campaign of attack events."""

    name: str
    events: List[AttackEvent] = field(default_factory=list)

    def add(self, time: float, kind: str, target: str) -> "AttackScenario":
        self.events.append(AttackEvent(time=time, kind=kind, target=target))
        return self

    def sorted_events(self) -> List[AttackEvent]:
        return sorted(self.events, key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.events)

    # -------------------------------------------------------------- factories
    @classmethod
    def single_worker_kill(cls, worker: str, *, at: float) -> "AttackScenario":
        """Kill one replica of one worker (the paper's basic shadow-thread case)."""
        return cls(name=f"kill-{worker}", events=[AttackEvent(at, KILL_REPLICA, worker)])

    @classmethod
    def node_outage(cls, node: str, *, at: float) -> "AttackScenario":
        """Take a whole workstation down."""
        return cls(name=f"node-outage-{node}", events=[AttackEvent(at, FAIL_NODE, node)])

    @classmethod
    def sustained_assault(cls, workers: Sequence[str], *, start: float, interval: float,
                          rounds: int, seed: int = 0) -> "AttackScenario":
        """Repeatedly kill a randomly chosen worker replica every ``interval`` seconds."""
        if rounds < 1 or interval <= 0:
            raise ValueError("rounds must be >= 1 and interval positive")
        rng = np.random.default_rng(seed)
        events = [AttackEvent(start + i * interval, KILL_REPLICA,
                              str(rng.choice(list(workers)))) for i in range(rounds)]
        return cls(name="sustained-assault", events=events)

    @classmethod
    def group_wipeout(cls, worker: str, *, at: float, replicas: int) -> "AttackScenario":
        """Kill every replica of one worker near-simultaneously.

        This is the scenario static replication cannot survive but resilient
        regeneration can, and is the core of the recovery ablation benchmark.
        """
        events = [AttackEvent(at + 1e-3 * i, KILL_REPLICA, worker) for i in range(replicas)]
        return cls(name=f"wipeout-{worker}", events=events)


class ScriptedAdversary:
    """Arms an :class:`AttackScenario` on an execution backend."""

    def __init__(self, backend, scenario: AttackScenario) -> None:
        self.backend = backend
        self.scenario = scenario
        self.executed: List[AttackEvent] = []
        self.skipped: List[AttackEvent] = []

    # ------------------------------------------------------------------- arm
    def arm(self) -> None:
        """Schedule every event of the scenario on the backend's clock.

        Requires the backend to expose ``schedule`` (the simulated backend
        does).  For the local backend use :meth:`execute_now` from a separate
        controller thread instead.
        """
        schedule = getattr(self.backend, "schedule", None)
        if schedule is None:
            raise TypeError("backend does not support scheduling; use execute_now()")
        for event in self.scenario.sorted_events():
            schedule(event.time, lambda e=event: self._execute(e),
                     label=f"attack:{event.kind}:{event.target}")

    def execute_now(self, event: AttackEvent) -> bool:
        """Execute one event immediately (local-backend campaigns)."""
        return self._execute(event)

    # --------------------------------------------------------------- execute
    def _execute(self, event: AttackEvent) -> bool:
        outcome = False
        if event.kind == FAIL_NODE:
            victims = self.backend.fail_node(event.target)
            outcome = bool(victims)
        elif event.kind == KILL_REPLICA:
            outcome = self._kill_one(event.target)
        elif event.kind == KILL_THREAD:
            outcome = self._kill_all(event.target)
        record = self.executed if outcome else self.skipped
        record.append(event)
        _LOG.info("attack %s on %s at t=%.3f -> %s", event.kind, event.target,
                  event.time, "hit" if outcome else "no effect")
        return outcome

    def _kill_one(self, target: str) -> bool:
        # Physical id given directly?
        if "#" in target:
            return bool(self.backend.kill_thread(target))
        live = self.backend.live_replicas(target)
        if not live:
            return False
        return bool(self.backend.kill_thread(live[0]))

    def _kill_all(self, logical: str) -> bool:
        live = list(self.backend.live_replicas(logical))
        hit = False
        for physical_id in live:
            hit = bool(self.backend.kill_thread(physical_id)) or hit
        return hit


__all__ = [
    "AttackEvent",
    "AttackScenario",
    "ScriptedAdversary",
    "KILL_THREAD",
    "KILL_REPLICA",
    "FAIL_NODE",
]
