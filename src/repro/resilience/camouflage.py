"""Camouflage: placement obfuscation through periodic migration.

Section 2's analogy ends with roaches that "adopt techniques for camouflage
as a form of protection and disinformation" -- in system terms, mission
critical threads should not sit still long enough for an adversary to map
the computation onto the network.  The paper leaves camouflage as a concept;
this module provides a concrete, testable realisation on top of the same
machinery regeneration uses:

* every ``period`` seconds the :class:`CamouflagePolicy` picks one replica of
  a randomly chosen critical thread,
* spawns a fresh replica of that thread on a different node (via the
  recovery service, so checkpoints, routing and the audit trail are handled
  identically to failure recovery), and
* retires the old replica once the new one is live.

Because migration reuses the regeneration path, enabling camouflage does not
change application code at all -- reinforcing the paper's claim that the
resiliency concepts are "incorporated through library technology that is
application independent".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..logging_utils import get_logger
from .recovery import RecoveryService
from .replication import ReplicationManager

_LOG = get_logger("resilience.camouflage")


@dataclass
class MigrationRecord:
    """One completed (or attempted) migration."""

    time: float
    logical: str
    from_physical: str
    to_physical: Optional[str]
    succeeded: bool


class CamouflagePolicy:
    """Periodic migration of critical replicas between nodes."""

    def __init__(self, *, backend, replication: ReplicationManager,
                 recovery: RecoveryService, period: float,
                 logical_threads: Sequence[str], seed: int = 0,
                 max_migrations: Optional[int] = None) -> None:
        """Create a camouflage policy.

        Parameters
        ----------
        backend:
            Execution backend exposing ``schedule``/``kill_thread``/
            ``live_replicas`` (the simulated backend).
        replication / recovery:
            The same services used for failure recovery.
        period:
            Seconds between migrations.
        logical_threads:
            Names of the threads eligible for migration.
        seed:
            Seed of the migration-target selection.
        max_migrations:
            Optional cap on the number of migrations performed.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        self.backend = backend
        self.replication = replication
        self.recovery = recovery
        self.period = period
        self.logical_threads = list(logical_threads)
        self.rng = np.random.default_rng(seed)
        self.max_migrations = max_migrations
        self.records: List[MigrationRecord] = []
        self._armed = False

    # ------------------------------------------------------------------- arm
    def arm(self) -> None:
        """Schedule the first migration tick on the backend's clock."""
        if self._armed:
            return
        self._armed = True
        self.backend.schedule(self.period, self._tick, label="camouflage:tick")

    def _tick(self) -> None:
        if self.max_migrations is not None and len(self.records) >= self.max_migrations:
            return
        self.migrate_one()
        # Keep going as long as the run is alive; the backend stops stepping
        # once the application threads finish, so this never prolongs a run.
        self.backend.schedule(self.period, self._tick, label="camouflage:tick")

    # --------------------------------------------------------------- migrate
    def migrate_one(self, logical: Optional[str] = None) -> MigrationRecord:
        """Migrate one replica of ``logical`` (or of a random eligible thread)."""
        now = getattr(self.backend, "now", 0.0)
        candidates = [name for name in self.logical_threads
                      if self.backend.live_replicas(name)]
        if logical is None:
            if not candidates:
                record = MigrationRecord(now, "<none>", "<none>", None, False)
                self.records.append(record)
                return record
            logical = str(self.rng.choice(candidates))
        live = self.backend.live_replicas(logical)
        if not live:
            record = MigrationRecord(now, logical, "<none>", None, False)
            self.records.append(record)
            return record
        victim = str(self.rng.choice(live))

        # Spawn-first, retire-after ordering: the group never drops below its
        # pre-migration replication level, so an attack landing mid-migration
        # finds at least as many replicas as before.
        event = self.recovery._regenerate(logical, victim, reason="camouflage")  # noqa: SLF001
        if not event.succeeded:
            record = MigrationRecord(now, logical, victim, None, False)
            self.records.append(record)
            return record
        self.backend.kill_thread(victim)
        self.replication.record_death(victim)
        record = MigrationRecord(now, logical, victim, event.replacement_physical, True)
        self.records.append(record)
        _LOG.info("camouflage migration of %s: %s -> %s", logical, victim,
                  event.replacement_physical)
        return record

    # --------------------------------------------------------------- reports
    def migrations(self) -> List[MigrationRecord]:
        return list(self.records)

    def successful_migrations(self) -> int:
        return sum(1 for r in self.records if r.succeeded)


__all__ = ["CamouflagePolicy", "MigrationRecord"]
