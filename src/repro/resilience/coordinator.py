"""Resilience coordinator: wiring the library onto an application run.

The coordinator is the single object an application (or the
:class:`~repro.core.resilient.ResilientPCT` wrapper) has to create in order
to obtain computational resiliency.  Given an execution backend, a cluster
model and a :class:`~repro.config.ResilienceConfig`, it

* derives the replication policy and the replica placement,
* registers every critical thread's replica group,
* arms failure detection (heartbeats + periodic sweeps in virtual time on
  the simulated backend, immediate death notifications on the local backend),
* connects detection to the recovery service so lost replicas are
  regenerated and communication reconfigured, and
* optionally arms an attack scenario and/or a camouflage policy.

The application's thread programs are never modified -- the paper's
"application independent library" property.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cluster.machine import Cluster
from ..config import ResilienceConfig
from ..logging_utils import get_logger
from ..scp.runtime import Application
from ..scp.sim_backend import ProtocolConfig, SimBackend
from .attack import AttackScenario, ScriptedAdversary
from .camouflage import CamouflagePolicy
from .detector import HeartbeatFailureDetector, SuspicionRecord
from .policy import ReplicationPolicy
from .reconfigure import ReconfigurationProtocol
from .recovery import RecoveryService
from .replication import ReplicationManager
from .resource import ResourceManager

_LOG = get_logger("resilience.coordinator")


def protocol_config_for(config: ResilienceConfig,
                        *, base_message_cost_s: float = 1.5e-3) -> ProtocolConfig:
    """Derive the simulated protocol-cost model from a resilience config.

    The per-message CPU overhead is ``protocol_overhead`` of a typical
    message's software cost, and acknowledgements are enabled; together with
    heartbeat traffic this reproduces the paper's observation of roughly 10%
    overhead on top of the cost of replication itself.
    """
    return ProtocolConfig(per_message_cpu_s=config.protocol_overhead * base_message_cost_s,
                          ack_enabled=True)


class ResilienceCoordinator:
    """Applies computational resiliency to one backend run."""

    def __init__(self, backend, cluster: Optional[Cluster], config: ResilienceConfig, *,
                 policy: Optional[ReplicationPolicy] = None,
                 monitor_node: Optional[str] = None,
                 pinned: Optional[Dict[str, str]] = None) -> None:
        self.backend = backend
        self.cluster = cluster if cluster is not None else getattr(backend, "cluster", None)
        self.config = config
        self.policy = policy or ReplicationPolicy.from_config(config)
        self.monitor_node = monitor_node
        self.pinned = dict(pinned or {})

        self.replication = ReplicationManager()
        self.reconfiguration = ReconfigurationProtocol()
        if self.cluster is not None:
            self.resources = ResourceManager(self.cluster)
        else:
            self.resources = None  # local backend: placement is a no-op
        self.recovery: Optional[RecoveryService] = None
        self.detector: Optional[HeartbeatFailureDetector] = None
        self.adversary: Optional[ScriptedAdversary] = None
        self.camouflage: Optional[CamouflagePolicy] = None
        self._attached = False

    # ---------------------------------------------------------------- attach
    def attach(self, app: Application) -> Optional[Dict[str, str]]:
        """Wire resiliency onto ``app`` before the backend run starts.

        Returns the replica placement map for the simulated backend (to be
        passed to ``backend.run(app, placement=...)``) or ``None`` for
        backends that do not place threads on modelled nodes.
        """
        if self._attached:
            raise RuntimeError("coordinator already attached to an application")
        self._attached = True

        # Replica groups for every thread, critical or not (non-critical ones
        # simply have a target level of 1 and are not regenerated unless the
        # policy says so).
        for spec in app.specs:
            self.replication.register_group(spec, self.policy.replicas_for(spec))

        self.recovery = RecoveryService(
            backend=self.backend,
            replication=self.replication,
            resources=self.resources if self.resources is not None
            else _NullResourceManager(),
            reconfiguration=self.reconfiguration,
            regenerate=self.config.regenerate,
        )

        self._arm_detection(app)

        if self.resources is not None:
            placement = self.policy.plan_placement(
                app.specs,
                worker_nodes=[n for n in self.cluster.node_names if n != "manager"],
                pinned=self.pinned)
            return placement
        return None

    # -------------------------------------------------------------- detection
    def _arm_detection(self, app: Application) -> None:
        clock = (lambda: self.backend.now) if hasattr(self.backend, "now") else (lambda: 0.0)
        self.detector = HeartbeatFailureDetector.from_config(
            self.config, clock=clock, on_suspect=self._on_suspect)

        if isinstance(self.backend, SimBackend):
            monitor = self.monitor_node
            if monitor is None and self.cluster is not None:
                monitor = ("manager" if "manager" in self.cluster.node_names
                           else self.cluster.node_names[0])
            self.backend.enable_heartbeats(self.config.heartbeat_period,
                                           self.detector.on_heartbeat,
                                           monitor_node=monitor)
            for spec in app.specs:
                if self.policy.critical(spec):
                    for pid in spec.physical_ids():
                        self.detector.watch(pid)
            self._schedule_sweep()
        else:
            # Local backend: rely on immediate death notifications (thread
            # kills are observable in-process); heartbeat plumbing would add
            # wall-clock latency without adding information.
            self.backend.subscribe_thread_death(self._on_death_notification)

    def _schedule_sweep(self) -> None:
        period = self.config.heartbeat_period

        def sweep() -> None:
            self.detector.sweep()
            self.backend.schedule(period, sweep, label="resilience:sweep")

        self.backend.schedule(period, sweep, label="resilience:sweep")

    # -------------------------------------------------------------- callbacks
    def _on_suspect(self, physical_id: str, record: SuspicionRecord) -> None:
        if self.recovery is None:
            return
        if self.detector is not None:
            self.detector.forget(physical_id)
        event = self.recovery.on_replica_lost(physical_id, reason="suspected")
        if event is not None and event.succeeded and self.detector is not None:
            self.detector.watch(event.replacement_physical)

    def _on_death_notification(self, physical_id: str, logical: str, reason: str) -> None:
        if self.recovery is None or reason == "shutdown":
            return
        if not self.replication.has_group(logical):
            return
        group = self.replication.group(logical)
        if not self.policy.critical(group.spec):
            # Non-critical threads (the manager / the sensor) are not part of
            # the resiliency contract; their loss is reported, not repaired.
            _LOG.warning("non-critical thread %s died (%s); not regenerating",
                         physical_id, reason)
            return
        event = self.recovery.on_replica_lost(physical_id, reason=reason)
        if event is not None and self.detector is not None and event.succeeded:
            self.detector.watch(event.replacement_physical)

    # ------------------------------------------------------- optional layers
    def arm_attack(self, scenario: AttackScenario) -> ScriptedAdversary:
        """Schedule a fault-injection campaign on the backend."""
        self.adversary = ScriptedAdversary(self.backend, scenario)
        self.adversary.arm()
        return self.adversary

    def enable_camouflage(self, *, period: float, logical_threads: Sequence[str],
                          seed: int = 0, max_migrations: Optional[int] = None
                          ) -> CamouflagePolicy:
        """Enable periodic migration of the given threads."""
        if self.recovery is None:
            raise RuntimeError("attach() must be called before enabling camouflage")
        self.camouflage = CamouflagePolicy(
            backend=self.backend, replication=self.replication, recovery=self.recovery,
            period=period, logical_threads=list(logical_threads), seed=seed,
            max_migrations=max_migrations, )
        self.camouflage.arm()
        return self.camouflage

    # ---------------------------------------------------------------- report
    def report(self) -> Dict[str, object]:
        """Consolidated resiliency activity report for a finished run."""
        return {
            "replication": self.replication.summary(),
            "reconfigurations": self.reconfiguration.summary(),
            "recoveries": len(self.recovery.successful_recoveries()) if self.recovery else 0,
            "failed_recoveries": len(self.recovery.failed_recoveries()) if self.recovery else 0,
            "suspicions": [r.physical_id for r in self.detector.suspicion_history()]
            if self.detector else [],
            "attacks_executed": len(self.adversary.executed) if self.adversary else 0,
            "migrations": self.camouflage.successful_migrations() if self.camouflage else 0,
        }


class _NullResourceManager:
    """Placement stand-in for backends without a cluster model (local threads)."""

    cluster = None

    def select_node(self, **_kwargs) -> Optional[str]:
        return None

    def nodes_hosting_group(self, _members) -> List[str]:
        return []


__all__ = ["ResilienceCoordinator", "protocol_config_for"]
