"""Replication policies.

"In any realistic system, there will never be sufficient resources to
replicate all resources, therefore some policy-based methods for controlling
replication are required" (Section 2).  A :class:`ReplicationPolicy` captures
those decisions declaratively: which logical threads are mission critical,
what replication level they receive, and how replicas are spread over nodes.

The default policy reproduces the paper's experiment: every worker thread is
replicated to level 2, the manager (the sensor) is not replicated, and the
replicas of a logical thread are placed on distinct nodes shifted round-robin
so that each workstation ends up hosting replicas of two different workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config import ResilienceConfig
from ..scp.thread import ThreadSpec, physical_name


@dataclass(frozen=True)
class ReplicationPolicy:
    """Declarative description of what gets replicated and where.

    Attributes
    ----------
    level:
        Replication level applied to critical threads (1 = no shadows).
    is_critical:
        Predicate selecting the mission-critical threads; defaults to the
        :attr:`~repro.scp.thread.ThreadSpec.critical` flag on the spec.
    spread_replicas:
        When True, replicas of the same logical thread are placed on distinct
        nodes (a shadow on the same node would share the fate of its primary,
        defeating the purpose of replication).
    """

    level: int = 2
    is_critical: Optional[Callable[[ThreadSpec], bool]] = None
    spread_replicas: bool = True

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ValueError("replication level must be >= 1")

    # ------------------------------------------------------------ selection
    def critical(self, spec: ThreadSpec) -> bool:
        if self.is_critical is not None:
            return bool(self.is_critical(spec))
        return spec.critical

    def replicas_for(self, spec: ThreadSpec) -> int:
        """Replication level applied to ``spec``."""
        return self.level if self.critical(spec) else 1

    def apply(self, specs: Sequence[ThreadSpec]) -> List[ThreadSpec]:
        """Return copies of ``specs`` with the policy's replication levels."""
        return [spec.with_replicas(self.replicas_for(spec)) for spec in specs]

    # ------------------------------------------------------------- placement
    def plan_placement(self, specs: Sequence[ThreadSpec], worker_nodes: Sequence[str],
                       *, pinned: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        """Place every replica of every spec on a node.

        Replica ``r`` of the i-th critical thread lands on node
        ``(i + r) mod N`` so that, at level 2 on N nodes with N workers, each
        node hosts exactly two replicas belonging to different logical
        threads -- the configuration whose cost the paper analyses ("the
        replicated processes require both memory and processor resources").
        """
        worker_nodes = list(worker_nodes)
        if not worker_nodes:
            raise ValueError("no worker nodes available")
        pinned = dict(pinned or {})
        placement: Dict[str, str] = {}
        critical_index = 0
        for spec in specs:
            replicas = self.replicas_for(spec)
            for replica in range(replicas):
                pid = physical_name(spec.name, replica)
                if spec.name in pinned:
                    placement[pid] = pinned[spec.name]
                    continue
                if self.spread_replicas:
                    node_index = (critical_index + replica) % len(worker_nodes)
                else:
                    node_index = critical_index % len(worker_nodes)
                placement[pid] = worker_nodes[node_index]
            if spec.name not in pinned:
                critical_index += 1
        return placement

    # -------------------------------------------------------------- factory
    @classmethod
    def from_config(cls, config: ResilienceConfig) -> "ReplicationPolicy":
        """Build the policy corresponding to a :class:`ResilienceConfig`."""
        return cls(level=config.replication_level)


__all__ = ["ReplicationPolicy"]
