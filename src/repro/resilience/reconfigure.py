"""Communication reconfiguration protocol.

When a replica is regenerated on a new node the application's communication
structure must be rebound to the new physical location, and this must happen
without losing messages, without delivering duplicates to the application and
without racing against in-flight traffic (Section 2: "The protocols deal with
race conditions inherent in reconfiguration, ensure that no communication is
lost, that the integrity of the state is maintained, and that where possible
locality of communication is preserved").

In this reproduction the mechanics of delivery are owned by the SCP backends
(router fan-out, mailbox duplicate suppression, dead-letter retention and
in-flight retargeting).  The :class:`ReconfigurationProtocol` is the layer
that drives them in the right order and records an auditable log of every
reconfiguration, which the tests use to assert the "no message loss"
guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..logging_utils import get_logger
from ..scp.topology import CommunicationStructure

_LOG = get_logger("resilience.reconfigure")


@dataclass
class ReconfigurationRecord:
    """Audit record of one reconfiguration event."""

    time: float
    logical: str
    failed_physical: str
    replacement_physical: Optional[str]
    node: Optional[str]
    structure_generation: int
    reason: str = "regeneration"


class ReconfigurationProtocol:
    """Orders the steps of a reconfiguration and keeps an audit trail."""

    def __init__(self, structure: Optional[CommunicationStructure] = None) -> None:
        self.structure = structure
        self._records: List[ReconfigurationRecord] = []

    # ----------------------------------------------------------------- steps
    def begin(self, *, time: float, logical: str, failed_physical: str,
              reason: str = "regeneration") -> ReconfigurationRecord:
        """Open a reconfiguration transaction for a failed replica.

        The communication structure's generation counter is bumped so that
        any component caching routing decisions can detect staleness -- this
        is the explicit-representation property the paper requires of SCPlib
        applications.
        """
        generation = 0
        if self.structure is not None:
            # Touching the structure bumps its generation; the logical thread
            # itself remains declared because the replacement keeps its name.
            if self.structure.has_thread(logical):
                self.structure.add_thread(logical)
            generation = self.structure.generation
        record = ReconfigurationRecord(time=time, logical=logical,
                                       failed_physical=failed_physical,
                                       replacement_physical=None, node=None,
                                       structure_generation=generation, reason=reason)
        self._records.append(record)
        return record

    def complete(self, record: ReconfigurationRecord, *, replacement_physical: str,
                 node: str) -> ReconfigurationRecord:
        """Close the transaction once the replacement replica is live."""
        record.replacement_physical = replacement_physical
        record.node = node
        if self.structure is not None:
            record.structure_generation = self.structure.generation
        _LOG.info("reconfigured %s: %s -> %s on %s", record.logical,
                  record.failed_physical, replacement_physical, node)
        return record

    def abort(self, record: ReconfigurationRecord, reason: str) -> None:
        """Record that a reconfiguration could not be completed."""
        record.reason = f"aborted: {reason}"
        _LOG.warning("reconfiguration of %s aborted: %s", record.logical, reason)

    # --------------------------------------------------------------- reports
    @property
    def records(self) -> List[ReconfigurationRecord]:
        return list(self._records)

    def completed(self) -> List[ReconfigurationRecord]:
        return [r for r in self._records if r.replacement_physical is not None]

    def aborted(self) -> List[ReconfigurationRecord]:
        return [r for r in self._records if r.reason.startswith("aborted")]

    def count(self) -> int:
        return len(self._records)

    def summary(self) -> Dict[str, Any]:
        return {
            "total": len(self._records),
            "completed": len(self.completed()),
            "aborted": len(self.aborted()),
            "by_logical": {
                logical: sum(1 for r in self._records if r.logical == logical)
                for logical in sorted({r.logical for r in self._records})
            },
        }


__all__ = ["ReconfigurationProtocol", "ReconfigurationRecord"]
