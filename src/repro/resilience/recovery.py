"""Dynamic regeneration of failed replicas.

This module implements the heart of computational resiliency as the paper
defines it: rather than merely degrading gracefully when replicas are lost,
"dynamically recreate the level of replication in the face of attack ... so
as to assure that operational readiness is eventually restored, subject only
to the constraints imposed by the total available resources".

The :class:`RecoveryService` reacts to suspicions raised by the failure
detector (or to direct death notifications):

1. record the loss in the replica group,
2. choose a new node via the :class:`~repro.resilience.resource.ResourceManager`,
3. spawn a fresh replica through the backend's control interface, restoring
   the group's most recent checkpointed state and bumping the incarnation
   number so the application can recognise the rejoin,
4. drive the :class:`~repro.resilience.reconfigure.ReconfigurationProtocol`
   so routing, dead-letter replay and the audit trail stay consistent.

Regeneration cost is modelled explicitly: the virtual delay before the new
replica starts includes both process start-up and the transfer of the
restored state from a surviving replica's node (size / link bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..logging_utils import get_logger
from ..scp.errors import PlacementError
from ..scp.serialization import payload_nbytes
from .reconfigure import ReconfigurationProtocol
from .replication import ReplicationManager
from .resource import ResourceManager

_LOG = get_logger("resilience.recovery")


@dataclass
class RecoveryEvent:
    """Outcome of one recovery attempt."""

    time: float
    logical: str
    failed_physical: str
    replacement_physical: Optional[str]
    node: Optional[str]
    succeeded: bool
    reason: str = ""


class RecoveryService:
    """Regenerates replicas of degraded groups."""

    def __init__(self, *, backend, replication: ReplicationManager,
                 resources: ResourceManager,
                 reconfiguration: Optional[ReconfigurationProtocol] = None,
                 regenerate: bool = True,
                 max_regenerations_per_group: int = 64,
                 state_transfer: bool = True) -> None:
        """Create a recovery service.

        Parameters
        ----------
        backend:
            Execution backend exposing ``spawn_thread`` / ``checkpoint_of``
            (both SCP backends do).
        replication:
            Replica-group bookkeeping.
        resources:
            Placement decisions.
        reconfiguration:
            Audit/ordering protocol; a fresh one is created if omitted.
        regenerate:
            When False the service only records losses -- this is the static
            replication (fault-tolerance-only) baseline of the paper's
            argument, used by :mod:`repro.baselines.static_replication`.
        max_regenerations_per_group:
            Safety valve against regeneration storms under sustained attack.
        state_transfer:
            Whether to charge the transfer of the restored state to the new
            replica's start-up delay (simulated backend only).
        """
        self.backend = backend
        self.replication = replication
        self.resources = resources
        self.reconfiguration = reconfiguration or ReconfigurationProtocol()
        self.regenerate = regenerate
        self.max_regenerations_per_group = max_regenerations_per_group
        self.state_transfer = state_transfer
        self._events: List[RecoveryEvent] = []

    # ------------------------------------------------------------------ hook
    def on_replica_lost(self, physical_id: str, reason: str = "failure") -> Optional[RecoveryEvent]:
        """Handle the loss of a physical replica (detector or death callback)."""
        group = self.replication.record_death(physical_id)
        now = getattr(self.backend, "now", 0.0)
        if group is None:
            _LOG.debug("loss of untracked thread %s ignored", physical_id)
            return None
        if not self.regenerate:
            event = RecoveryEvent(time=now, logical=group.logical,
                                  failed_physical=physical_id, replacement_physical=None,
                                  node=None, succeeded=False,
                                  reason="regeneration disabled (static replication)")
            self._events.append(event)
            return event
        if group.regenerated >= self.max_regenerations_per_group:
            event = RecoveryEvent(time=now, logical=group.logical,
                                  failed_physical=physical_id, replacement_physical=None,
                                  node=None, succeeded=False,
                                  reason="regeneration budget exhausted")
            self._events.append(event)
            return event
        return self._regenerate(group.logical, physical_id, reason)

    # ------------------------------------------------------------ regenerate
    def _regenerate(self, logical: str, failed_physical: str, reason: str) -> RecoveryEvent:
        group = self.replication.group(logical)
        now = getattr(self.backend, "now", 0.0)
        record = self.reconfiguration.begin(time=now, logical=logical,
                                            failed_physical=failed_physical, reason=reason)
        try:
            node = self.resources.select_node(memory_bytes=group.spec.memory_bytes,
                                              group_members=group.members)
        except PlacementError as err:
            self.reconfiguration.abort(record, str(err))
            event = RecoveryEvent(time=now, logical=logical, failed_physical=failed_physical,
                                  replacement_physical=None, node=None, succeeded=False,
                                  reason=str(err))
            self._events.append(event)
            return event

        restored = None
        checkpoint_getter = getattr(self.backend, "checkpoint_of", None)
        if callable(checkpoint_getter):
            restored = checkpoint_getter(logical)
        extra_delay = 0.0
        if self.state_transfer and restored is not None:
            extra_delay = self._state_transfer_delay(restored)

        replica_index = group.allocate_replica_index()
        incarnation = group.incarnation + 1
        spawn_kwargs: Dict[str, Any] = dict(replica=replica_index, node=node,
                                            restored=restored, incarnation=incarnation)
        if extra_delay > 0 and hasattr(self.backend, "spawn_cost_s"):
            spawn_kwargs["extra_delay"] = extra_delay
        new_physical = self.backend.spawn_thread(group.spec, **spawn_kwargs)

        self.replication.record_regeneration(logical, new_physical)
        self.reconfiguration.complete(record, replacement_physical=new_physical, node=node)
        event = RecoveryEvent(time=now, logical=logical, failed_physical=failed_physical,
                              replacement_physical=new_physical, node=node, succeeded=True,
                              reason=reason)
        self._events.append(event)
        _LOG.info("regenerated %s as %s on %s (reason: %s)", logical, new_physical, node, reason)
        return event

    def _state_transfer_delay(self, restored: Any) -> float:
        """Virtual seconds needed to ship the restored state to the new node."""
        cluster = getattr(self.resources, "cluster", None)
        if cluster is None:
            return 0.0
        nbytes = payload_nbytes(restored)
        link = cluster.interconnect.link
        return link.message_cost(nbytes)

    # --------------------------------------------------------------- reports
    @property
    def events(self) -> List[RecoveryEvent]:
        return list(self._events)

    def successful_recoveries(self) -> List[RecoveryEvent]:
        return [e for e in self._events if e.succeeded]

    def failed_recoveries(self) -> List[RecoveryEvent]:
        return [e for e in self._events if not e.succeeded]

    def recovery_count(self) -> int:
        return len(self.successful_recoveries())


__all__ = ["RecoveryService", "RecoveryEvent"]
