"""Replica-group bookkeeping.

The resiliency layer needs to know, for every logical thread, which physical
replicas currently exist, which replica indices and incarnation numbers have
been used, and what the most recent recoverable state is.  That bookkeeping
lives here, separate from the policy (what *should* be replicated) and from
the recovery service (what to *do* when a replica dies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..scp.thread import ThreadSpec, parse_physical, physical_name


@dataclass
class ReplicaGroup:
    """Live-replica view of one logical thread.

    Attributes
    ----------
    spec:
        The thread specification replicas are created from.
    target_level:
        Desired number of live replicas (the policy's replication level).
    members:
        Physical ids of currently live replicas.
    next_replica_index:
        Monotonic counter so regenerated replicas never reuse an id.
    incarnation:
        Incremented every time a replica is regenerated; carried in the new
        replica's context so the application can distinguish rejoin
        announcements from initial ones.
    lost / regenerated:
        Cumulative counters for reporting.
    """

    spec: ThreadSpec
    target_level: int
    members: Set[str] = field(default_factory=set)
    next_replica_index: int = 0
    incarnation: int = 0
    lost: int = 0
    regenerated: int = 0

    @property
    def logical(self) -> str:
        return self.spec.name

    @property
    def live_count(self) -> int:
        return len(self.members)

    @property
    def deficit(self) -> int:
        """How many replicas are missing relative to the target level."""
        return max(0, self.target_level - self.live_count)

    def allocate_replica_index(self) -> int:
        index = self.next_replica_index
        self.next_replica_index += 1
        return index

    def add_member(self, physical_id: str) -> None:
        self.members.add(physical_id)

    def remove_member(self, physical_id: str) -> bool:
        if physical_id in self.members:
            self.members.remove(physical_id)
            self.lost += 1
            return True
        return False


class ReplicationManager:
    """Tracks every replica group of an application."""

    def __init__(self) -> None:
        self._groups: Dict[str, ReplicaGroup] = {}

    # ---------------------------------------------------------- registration
    def register_group(self, spec: ThreadSpec, target_level: int) -> ReplicaGroup:
        """Create the group record for ``spec`` (idempotent)."""
        if spec.name in self._groups:
            return self._groups[spec.name]
        group = ReplicaGroup(spec=spec, target_level=max(1, target_level))
        for replica in range(spec.replicas):
            group.add_member(physical_name(spec.name, replica))
            group.next_replica_index = max(group.next_replica_index, replica + 1)
        self._groups[spec.name] = group
        return group

    def group(self, logical: str) -> ReplicaGroup:
        try:
            return self._groups[logical]
        except KeyError:
            raise KeyError(f"no replica group registered for {logical!r}") from None

    def has_group(self, logical: str) -> bool:
        return logical in self._groups

    def groups(self) -> List[ReplicaGroup]:
        return list(self._groups.values())

    # ------------------------------------------------------------ membership
    def record_death(self, physical_id: str) -> Optional[ReplicaGroup]:
        """Mark a physical replica as dead.

        Returns the group only when ``physical_id`` was one of its *current*
        members; stale or duplicate notifications (a suspicion arriving after
        the replica has already been replaced) return ``None`` so callers do
        not trigger spurious regenerations.
        """
        logical, _ = parse_physical(physical_id)
        group = self._groups.get(logical)
        if group is None:
            return None
        if not group.remove_member(physical_id):
            return None
        return group

    def record_regeneration(self, logical: str, physical_id: str) -> ReplicaGroup:
        group = self.group(logical)
        group.add_member(physical_id)
        group.incarnation += 1
        group.regenerated += 1
        return group

    # --------------------------------------------------------------- reports
    def degraded_groups(self) -> List[ReplicaGroup]:
        """Groups currently running below their target replication level."""
        return [g for g in self._groups.values() if g.deficit > 0]

    def total_regenerated(self) -> int:
        return sum(g.regenerated for g in self._groups.values())

    def total_lost(self) -> int:
        return sum(g.lost for g in self._groups.values())

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-group counters for reports and tests."""
        return {
            g.logical: {
                "live": g.live_count,
                "target": g.target_level,
                "lost": g.lost,
                "regenerated": g.regenerated,
                "incarnation": g.incarnation,
            }
            for g in self._groups.values()
        }


__all__ = ["ReplicaGroup", "ReplicationManager"]
