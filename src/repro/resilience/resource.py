"""Resource management: where to place regenerated replicas.

The paper notes that "to dynamically recover, replication requires the
ability to recreate a thread with the appropriate communication structure at
some other location in the network", and that placement must respect memory
disparities and granularity.  The :class:`ResourceManager` encapsulates that
decision for the simulated cluster: it prefers live nodes that

1. do not already host a replica of the same logical thread (a shadow
   sharing a node with its sibling would not improve fault independence),
2. have enough free memory for the thread's state, and
3. carry the least load (fewest hosted threads), breaking ties by node
   declaration order for determinism.

It also exposes the granularity advice used by the manager/benchmarks
(Watts & Taylor 1998 style merge/split suggestions) so decomposition
decisions and placement decisions live behind one interface.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..cluster.machine import Cluster
from ..logging_utils import get_logger
from ..scp.errors import PlacementError

_LOG = get_logger("resilience.resource")


class ResourceManager:
    """Placement and granularity decisions over a cluster model."""

    def __init__(self, cluster: Cluster, *, exclude_nodes: Sequence[str] = ()) -> None:
        self.cluster = cluster
        self.exclude_nodes = set(exclude_nodes)

    # -------------------------------------------------------------- placement
    def nodes_hosting_group(self, group_members: Iterable[str]) -> List[str]:
        """Nodes currently hosting any of the given physical replicas."""
        nodes = []
        for physical_id in group_members:
            location = self.cluster.location_of(physical_id)
            if location is not None:
                nodes.append(location)
        return nodes

    def select_node(self, *, memory_bytes: int = 0,
                    avoid_nodes: Sequence[str] = (),
                    group_members: Iterable[str] = ()) -> str:
        """Choose the node on which to regenerate a replica.

        Raises
        ------
        PlacementError
            If no live node satisfies the constraints (the paper's "subject
            only to the constraints imposed by the total available
            resources" boundary).
        """
        avoid = set(avoid_nodes) | set(self.nodes_hosting_group(group_members)) \
            | self.exclude_nodes
        # First pass: respect all constraints.
        candidates = self._candidates(memory_bytes, avoid)
        if candidates:
            return candidates[0]
        # Second pass: relax co-location avoidance (better a co-located
        # replica than none at all), keep memory and liveness constraints.
        candidates = self._candidates(memory_bytes, self.exclude_nodes)
        if candidates:
            _LOG.info("placement relaxed co-location constraint; using %s", candidates[0])
            return candidates[0]
        raise PlacementError(
            "no live node with sufficient memory is available for regeneration")

    def _candidates(self, memory_bytes: int, avoid: Iterable[str]) -> List[str]:
        avoid = set(avoid)
        names = self.cluster.least_loaded_nodes(exclude=avoid, alive_only=True)
        return [name for name in names
                if self.cluster.node(name).memory_free >= memory_bytes]

    # ------------------------------------------------------------ granularity
    @staticmethod
    def suggest_subcubes(workers: int, *, multiplier: int = 2, cap: int = 32) -> int:
        """Granularity advice matching the paper's Figure 5 conclusion:
        decompose into 2-3x more sub-cubes than workers, but not beyond the
        point (~32 for the studied problem size) where per-message overhead
        dominates."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        return min(workers * multiplier, max(cap, workers))

    def utilisation_imbalance(self, elapsed: float) -> float:
        """Max/mean busy-time ratio across live nodes (1.0 = perfectly even)."""
        busy = [node.busy_time for node in self.cluster.alive_nodes()]
        if not busy or max(busy) == 0:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0


__all__ = ["ResourceManager"]
