"""Scenario library and traffic/chaos simulator.

A *scenario* names a reproducible workload: a scene specification (what
is fused), an arrival process (when requests arrive) and an optional
chaos profile (what goes wrong while they run).  The built-in library
(:mod:`repro.scenarios.library`) registers twelve of them -- from 16px
thumbnails to 512-band stacks, steady through heavy-tail traffic, SIGKILL
storms through memory pressure -- and :func:`run_simulation` replays a
seeded trace of any of them against any engine x backend pair, emitting a
ledger-compatible throughput/latency/recovery record.

``repro-fusion simulate <scenario>`` is the CLI front door.
"""

from .arrivals import (TRACE_SCHEMA, ArrivalProcess, BurstyArrivals,
                       HeavyTailArrivals, SteadyArrivals, Trace, record_trace)
from .chaos import (PIPELINE_STAGES, ChaosProfile, KillStorm, MemoryPressure,
                    Straggler)
from .registry import (Scenario, describe_scenarios, get_scenario,
                       register_scenario, scenario_names)
from .scenes import SceneSpec
from .simulate import (QUICK_REQUEST_CAP, SIMULATE_SCHEMA, SimulationResult,
                       run_simulation)

from . import library  # noqa: F401  (registers the built-in scenarios)

__all__ = [
    "TRACE_SCHEMA", "ArrivalProcess", "SteadyArrivals", "BurstyArrivals",
    "HeavyTailArrivals", "Trace", "record_trace",
    "PIPELINE_STAGES", "ChaosProfile", "KillStorm", "Straggler",
    "MemoryPressure",
    "Scenario", "register_scenario", "get_scenario", "scenario_names",
    "describe_scenarios",
    "SceneSpec",
    "QUICK_REQUEST_CAP", "SIMULATE_SCHEMA", "SimulationResult",
    "run_simulation",
]
