"""Arrival processes and seeded traffic traces.

The second half of a scenario is *when* requests arrive.  An
:class:`ArrivalProcess` turns a seeded RNG into a monotone list of arrival
offsets (seconds from trace start); the library ships the three classic
shapes -- steady, bursty and heavy-tail -- and a schema-versioned
:class:`Trace` recorder/replayer so a specific arrival sequence can be
saved, committed and replayed bit-for-bit against any engine x backend.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

#: Schema tag of serialised traces (bump on layout changes so stale files
#: are rejected loudly, not misread).
TRACE_SCHEMA = "repro-fusion/sim-trace/v1"


class ArrivalProcess:
    """Base arrival process: seeded RNG -> monotone arrival offsets."""

    kind = "arrivals"

    def offsets(self, rng: random.Random, count: int) -> List[float]:
        """Arrival offsets in seconds from trace start (length ``count``)."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SteadyArrivals(ArrivalProcess):
    """Constant-rate traffic: one request every ``interval`` seconds."""

    interval: float = 0.05

    kind = "steady"

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError("interval must be >= 0")

    def offsets(self, rng: random.Random, count: int) -> List[float]:
        return [index * self.interval for index in range(count)]

    def describe(self) -> str:
        return f"steady, {self.interval * 1000:.0f}ms apart"


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """Bursts of ``burst`` near-simultaneous requests, ``gap`` seconds apart.

    The shape that stresses admission and backpressure: a burst lands
    faster than the pipeline drains, then the queue empties during the gap.
    """

    burst: int = 4
    gap: float = 0.25
    within: float = 0.002

    kind = "bursty"

    def __post_init__(self) -> None:
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.gap < 0 or self.within < 0:
            raise ValueError("gap and within must be >= 0")

    def offsets(self, rng: random.Random, count: int) -> List[float]:
        out: List[float] = []
        for index in range(count):
            burst_index, position = divmod(index, self.burst)
            out.append(burst_index * self.gap + position * self.within)
        return out

    def describe(self) -> str:
        return (f"bursts of {self.burst}, {self.gap * 1000:.0f}ms apart")


@dataclass(frozen=True)
class HeavyTailArrivals(ArrivalProcess):
    """Pareto inter-arrival gaps: many quick arrivals, rare long lulls.

    ``scale`` is the minimum gap, ``alpha`` the tail index (smaller =
    heavier tail), ``cap`` bounds a single gap so a replay cannot stall
    for minutes on an unlucky draw.
    """

    scale: float = 0.01
    alpha: float = 1.2
    cap: float = 1.0

    kind = "heavy-tail"

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.alpha <= 0 or self.cap <= 0:
            raise ValueError("scale, alpha and cap must be positive")

    def offsets(self, rng: random.Random, count: int) -> List[float]:
        out: List[float] = []
        clock = 0.0
        for index in range(count):
            if index:
                draw = self.scale * (1.0 - rng.random()) ** (-1.0 / self.alpha)
                clock += min(draw, self.cap)
            out.append(clock)
        return out

    def describe(self) -> str:
        return (f"heavy-tail (Pareto alpha={self.alpha}, "
                f"min gap {self.scale * 1000:.0f}ms)")


@dataclass(frozen=True)
class Trace:
    """One recorded arrival sequence, replayable bit-for-bit.

    ``offsets`` are seconds from trace start, monotone non-decreasing.
    The scenario name and seed are provenance: a replayed trace fires the
    recorded offsets regardless of the scenario's current arrival process.
    """

    scenario: str
    seed: int
    offsets: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.offsets:
            raise ValueError("a trace needs at least one arrival")
        if any(b < a for a, b in zip(self.offsets, self.offsets[1:])):
            raise ValueError("trace offsets must be monotone non-decreasing")
        if self.offsets[0] < 0:
            raise ValueError("trace offsets must be >= 0")

    @property
    def requests(self) -> int:
        return len(self.offsets)

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, object]:
        return {"schema": TRACE_SCHEMA, "scenario": self.scenario,
                "seed": self.seed, "offsets": list(self.offsets)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Trace":
        schema = data.get("schema")
        if schema != TRACE_SCHEMA:
            raise ValueError(f"unsupported trace schema {schema!r} "
                             f"(this build reads {TRACE_SCHEMA!r})")
        offsets = tuple(float(value) for value in data["offsets"])  # type: ignore[union-attr]
        return cls(scenario=str(data.get("scenario", "")),
                   seed=int(data.get("seed", 0)), offsets=offsets)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n",
                        encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def record_trace(process: ArrivalProcess, scenario: str, *, seed: int,
                 requests: int) -> Trace:
    """Draw one seeded trace from ``process`` (deterministic per seed)."""
    if requests < 1:
        raise ValueError("requests must be >= 1")
    rng = random.Random(seed)
    return Trace(scenario=scenario, seed=seed,
                 offsets=tuple(process.offsets(rng, requests)))


__all__ = ["TRACE_SCHEMA", "ArrivalProcess", "SteadyArrivals",
           "BurstyArrivals", "HeavyTailArrivals", "Trace", "record_trace"]
