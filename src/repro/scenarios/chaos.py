"""Chaos profiles: fault injection layered on the stage executor.

The third, optional, half of a scenario.  Every profile drives the same
session-wide stage executor the pipeline engine runs on (reached through
:meth:`repro.api.session.FusionSession.stage_executor`):

* :class:`KillStorm` queues SIGKILLs through the executor's
  :meth:`~repro.scp.stages.PoolStageExecutor.inject_kill` chaos hook --
  worker processes die mid-stage exactly as an OOM kill or node loss
  would, and crash recovery re-dispatches their tasks;
* :class:`Straggler` occupies worker slots with long sleep tasks, so real
  fusions contend with a slow worker the way they would on a loaded
  workstation;
* :class:`MemoryPressure` occupies slots with tasks that allocate and
  hold large buffers, driving allocator churn alongside the fusions.

Kill injection needs real processes (a host thread cannot be SIGKILLed);
the storm raises an actionable error on thread-backed executors.  The
slot-occupying profiles work on any executor.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..scp.stages import TransportStageExecutor

StageExecutor = TransportStageExecutor

#: Pipeline stage names a kill storm targets (see repro.core.streaming).
PIPELINE_STAGES: Tuple[str, ...] = ("screen", "covariance", "project")


def straggler_sleep(seconds: float) -> float:
    """Slot-occupying stage task: hold a worker for ``seconds``."""
    time.sleep(seconds)
    return seconds


def occupy_memory(megabytes: float, dwell_seconds: float) -> int:
    """Slot-occupying stage task: allocate and hold ``megabytes`` briefly."""
    block = np.ones(max(1, int(megabytes * 1024 * 1024 // 8)),
                    dtype=np.float64)
    time.sleep(dwell_seconds)
    return int(block.nbytes)


class ChaosProfile:
    """Base profile: hooks the simulator calls around a trace replay."""

    kind = "none"

    def start(self, executor: StageExecutor, requests: int) -> None:
        """Called once before the first request is submitted."""

    def on_request(self, executor: StageExecutor,
                   index: int) -> List["Future[object]"]:
        """Called right before request ``index`` is submitted; returns any
        chaos-task futures the simulator must drain before closing."""
        return []

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class KillStorm(ChaosProfile):
    """SIGKILL the next task of each targeted stage, ``rounds`` times.

    Kills are spread across the replay (one round per request until the
    budget is spent) rather than queued all at once, so recovery is
    exercised repeatedly and no request index escapes the storm window.
    """

    stages: Tuple[str, ...] = PIPELINE_STAGES
    rounds: int = 2

    kind = "kill-storm"

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a kill storm needs at least one target stage")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")

    def _require_killable(self, executor: StageExecutor) -> StageExecutor:
        # Capability check on the executor's transport, not an isinstance
        # ladder: any transport whose workers can die to SIGKILL (forked
        # pool slots, socket node-agent workers, future cluster hosts)
        # supports the storm.
        if not getattr(executor, "supports_kill", False):
            raise ValueError(
                "the 'kill-storm' chaos profile SIGKILLs worker processes, "
                "which thread-backed executors do not have; run the scenario "
                "on a process backend (e.g. --backend process:2 or socket:2)")
        return executor

    def start(self, executor: StageExecutor, requests: int) -> None:
        self._require_killable(executor)

    def on_request(self, executor: StageExecutor,
                   index: int) -> List["Future[object]"]:
        if index < self.rounds:
            killable = self._require_killable(executor)
            for stage in self.stages:
                killable.inject_kill(stage)
        return []

    def describe(self) -> str:
        return (f"SIGKILL storm: {self.rounds} round(s) over stages "
                f"{'/'.join(self.stages)}")


@dataclass(frozen=True)
class Straggler(ChaosProfile):
    """Occupy a worker slot with a ``seconds``-long task every ``every``
    requests: the slow-worker condition the paper's cluster story assumes."""

    seconds: float = 0.3
    every: int = 2

    kind = "straggler"

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("seconds must be positive")
        if self.every < 1:
            raise ValueError("every must be >= 1")

    def on_request(self, executor: StageExecutor,
                   index: int) -> List["Future[object]"]:
        if index % self.every:
            return []
        return [executor.submit("chaos-straggler", straggler_sleep,
                                self.seconds)]

    def describe(self) -> str:
        return (f"straggler: a {self.seconds * 1000:.0f}ms slot hog every "
                f"{self.every} request(s)")


@dataclass(frozen=True)
class MemoryPressure(ChaosProfile):
    """Occupy a worker slot with a large held allocation every ``every``
    requests, so fusions run against allocator and cache pressure."""

    megabytes: float = 48.0
    dwell_seconds: float = 0.15
    every: int = 2

    kind = "memory-pressure"

    def __post_init__(self) -> None:
        if self.megabytes <= 0:
            raise ValueError("megabytes must be positive")
        if self.dwell_seconds <= 0:
            raise ValueError("dwell_seconds must be positive")
        if self.every < 1:
            raise ValueError("every must be >= 1")

    def on_request(self, executor: StageExecutor,
                   index: int) -> List["Future[object]"]:
        if index % self.every:
            return []
        return [executor.submit("chaos-memory", occupy_memory,
                                self.megabytes, self.dwell_seconds)]

    def describe(self) -> str:
        return (f"memory pressure: {self.megabytes:.0f}MB held "
                f"{self.dwell_seconds * 1000:.0f}ms every "
                f"{self.every} request(s)")


__all__ = ["PIPELINE_STAGES", "ChaosProfile", "KillStorm", "Straggler",
           "MemoryPressure", "occupy_memory", "straggler_sleep"]
