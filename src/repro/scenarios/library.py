"""The built-in scenario library.

Twelve named workloads spanning the three axes the ROADMAP asks for --
scene diversity (thumbnails through deep band stacks, low-contrast /
high-noise / camouflage variants, threshold sweeps), arrival diversity
(steady, bursty, heavy-tail) and chaos (SIGKILL storms, stragglers,
memory pressure).  Each is sized to run end-to-end in seconds on a
developer machine; ``--quick`` shrinks them further for CI smoke jobs.
Importing this module registers everything (the package ``__init__``
does so), mirroring how the built-in backends register on import.
"""

from __future__ import annotations

from .arrivals import BurstyArrivals, HeavyTailArrivals, SteadyArrivals
from .chaos import KillStorm, MemoryPressure, Straggler
from .registry import Scenario, register_scenario
from .scenes import SceneSpec

# ------------------------------------------------------------- scene shapes

register_scenario(Scenario(
    name="thumbnail",
    description="16px thumbnails at the 8-band floor: the smallest legal "
                "cubes, one camouflaged target each",
    scene=SceneSpec(bands=8, rows=16, cols=16, vehicles=0, camouflaged=1,
                    distinct=3),
    arrivals=SteadyArrivals(interval=0.02),
    requests=8))

register_scenario(Scenario(
    name="deep-bands",
    description="512-band stacks over a small footprint: spectral depth "
                "instead of spatial extent",
    scene=SceneSpec(bands=512, rows=20, cols=20, vehicles=1, camouflaged=1,
                    distinct=2),
    arrivals=SteadyArrivals(interval=0.05),
    requests=4))

register_scenario(Scenario(
    name="low-contrast",
    description="low spectral variability + strong sub-pixel mixing: "
                "screening resolves few unique spectra",
    scene=SceneSpec(bands=32, rows=32, cols=32, vehicles=2, camouflaged=1,
                    spectral_variability=0.03, mixing_strength=0.7,
                    distinct=2),
    arrivals=SteadyArrivals(interval=0.05),
    requests=6))

register_scenario(Scenario(
    name="high-noise",
    description="sensor SNR divided by six: noise-dominated scenes the "
                "screening threshold must not be inflated by",
    scene=SceneSpec(bands=48, rows=32, cols=32, vehicles=2, camouflaged=1,
                    noise_scale=6.0, distinct=2),
    arrivals=SteadyArrivals(interval=0.05),
    requests=6))

register_scenario(Scenario(
    name="camouflage",
    description="camouflage-heavy scenes (Figure 3's hard case): most "
                "targets hidden under netting",
    scene=SceneSpec(bands=64, rows=40, cols=40, vehicles=1, camouflaged=4,
                    distinct=2),
    arrivals=SteadyArrivals(interval=0.05),
    requests=6))

register_scenario(Scenario(
    name="threshold-sweep",
    description="one scene fused under a cycling screening-threshold "
                "sweep (unique-set size from tens to hundreds)",
    scene=SceneSpec(bands=32, rows=32, cols=32, vehicles=2, camouflaged=1,
                    distinct=1),
    arrivals=SteadyArrivals(interval=0.02),
    requests=8,
    thresholds=(0.02, 0.05, 0.08, 0.12)))

# ---------------------------------------------------------- arrival shapes

register_scenario(Scenario(
    name="steady",
    description="nominal steady traffic over midsize scenes: the baseline "
                "every other scenario is compared against",
    scene=SceneSpec(bands=32, rows=32, cols=32, vehicles=2, camouflaged=1,
                    distinct=2),
    arrivals=SteadyArrivals(interval=0.05),
    requests=8))

register_scenario(Scenario(
    name="bursty",
    description="bursts of four near-simultaneous requests: admission and "
                "backpressure under load spikes",
    scene=SceneSpec(bands=32, rows=32, cols=32, vehicles=2, camouflaged=1,
                    distinct=2),
    arrivals=BurstyArrivals(burst=4, gap=0.25, within=0.002),
    requests=8))

register_scenario(Scenario(
    name="heavy-tail",
    description="Pareto inter-arrival gaps: many quick arrivals, rare "
                "long lulls",
    scene=SceneSpec(bands=32, rows=32, cols=32, vehicles=2, camouflaged=1,
                    distinct=2),
    arrivals=HeavyTailArrivals(scale=0.01, alpha=1.2, cap=0.5),
    requests=10))

# ------------------------------------------------------------ chaos shapes

register_scenario(Scenario(
    name="kill-storm",
    description="bursty traffic while workers are SIGKILLed mid-stage "
                "every round: crash recovery under load (process backend)",
    scene=SceneSpec(bands=24, rows=32, cols=32, vehicles=2, camouflaged=1,
                    distinct=2),
    arrivals=BurstyArrivals(burst=3, gap=0.2, within=0.002),
    chaos=KillStorm(rounds=2),
    requests=6))

register_scenario(Scenario(
    name="straggler",
    description="steady traffic while slot-hogging sleep tasks emulate a "
                "slow worker",
    scene=SceneSpec(bands=24, rows=32, cols=32, vehicles=2, camouflaged=1,
                    distinct=2),
    arrivals=SteadyArrivals(interval=0.05),
    chaos=Straggler(seconds=0.3, every=2),
    requests=6))

register_scenario(Scenario(
    name="memory-pressure",
    description="steady traffic while workers allocate and hold large "
                "buffers between fusions",
    scene=SceneSpec(bands=24, rows=32, cols=32, vehicles=2, camouflaged=1,
                    distinct=2),
    arrivals=SteadyArrivals(interval=0.05),
    chaos=MemoryPressure(megabytes=48.0, dwell_seconds=0.15, every=2),
    requests=6))

__all__: list = []
