"""Named-scenario registry.

Mirrors the engine/backend/lint-rule registries: scenarios are registered
under a one-word name, lookups of unknown names raise a ValueError that
lists what *is* registered, and downstream code can register its own
scenarios without touching this module.

A :class:`Scenario` bundles the three halves of a workload:

* a scene specification (:class:`~repro.scenarios.scenes.SceneSpec`) --
  what is fused,
* an arrival process (:class:`~repro.scenarios.arrivals.ArrivalProcess`)
  -- when requests arrive, and
* an optional chaos profile (:class:`~repro.scenarios.chaos.ChaosProfile`)
  -- what goes wrong while they run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .arrivals import ArrivalProcess
from .chaos import ChaosProfile
from .scenes import SceneSpec


@dataclass(frozen=True)
class Scenario:
    """One named workload: scene x arrivals x (optional) chaos.

    Attributes
    ----------
    name / description:
        Registry identity and the one-liner shown by ``simulate --list``.
    scene:
        Scene specification the trace's cubes are generated from.
    arrivals:
        Arrival process a seeded trace is drawn from.
    chaos:
        Optional chaos profile layered on the stage executor.
    requests:
        Default trace length (overridable per run).
    thresholds:
        Optional per-request screening-threshold cycle; non-empty makes
        the scenario a threshold sweep (request ``i`` uses
        ``thresholds[i % len]``).
    """

    name: str
    description: str
    scene: SceneSpec
    arrivals: ArrivalProcess
    chaos: Optional[ChaosProfile] = None
    requests: int = 8
    thresholds: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        for threshold in self.thresholds:
            if threshold <= 0:
                raise ValueError("sweep thresholds must be positive")


_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Register ``scenario`` under its name; returns it for chaining."""
    if scenario.name in _SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_SCENARIOS)


def describe_scenarios() -> Dict[str, str]:
    """``name -> one-line description`` for help text and docs."""
    return {name: _SCENARIOS[name].description for name in scenario_names()}


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario; unknown names raise actionably."""
    scenario = _SCENARIOS.get(name)
    if scenario is None:
        raise ValueError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(scenario_names())} "
            f"(repro-fusion simulate --list shows details)")
    return scenario


__all__ = ["Scenario", "register_scenario", "scenario_names",
           "describe_scenarios", "get_scenario"]
