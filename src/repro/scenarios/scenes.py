"""Scene specifications of the scenario library.

A :class:`SceneSpec` is the declarative half of a scenario's workload: how
big the cubes are (tiny thumbnails through deep 512-band stacks), how many
targets the scene carries, and which knobs of the synthetic HYDICE
generator (noise, spectral variability, sub-pixel mixing) are pushed off
their defaults to make the scene low-contrast, high-noise or
camouflage-heavy.  The spec is pure data; :meth:`SceneSpec.build_cubes`
materialises the deterministic cube cycle a trace replay fuses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from ..data.cube import HyperspectralCube
from ..data.hydice import HydiceConfig, HydiceGenerator
from ..data.noise import NoiseModel
from ..data.scene import target_capacity


@dataclass(frozen=True)
class SceneSpec:
    """Declarative scene shape of one scenario.

    Attributes
    ----------
    bands, rows, cols:
        Cube dimensions; the library spans 8 through 512 bands and
        16px thumbnails through the paper's full spatial extent.
    vehicles / camouflaged:
        Targets embedded per scene.  Validated against
        :func:`repro.data.scene.target_capacity` so a spec can never ask
        for a scene the generator would refuse.
    distinct:
        Distinct cubes generated (seed offsets) and cycled through the
        trace; 1 re-fuses one cube (placement-cache friendly), larger
        values defeat the cache the way fresh traffic would.
    spectral_variability / mixing_strength:
        Generator knobs; low variability + strong mixing yields the
        low-contrast variant where screening resolves few unique spectra.
    noise_scale:
        Divides the sensor SNR; > 1 is the high-noise variant.
    clutter_fraction:
        Pixel-scale background clutter fraction.
    """

    bands: int = 32
    rows: int = 32
    cols: int = 32
    vehicles: int = 2
    camouflaged: int = 1
    distinct: int = 2
    spectral_variability: float = 0.12
    mixing_strength: float = 0.4
    noise_scale: float = 1.0
    clutter_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.bands < 3:
            raise ValueError("scene spec needs at least 3 spectral bands")
        if self.rows < 16 or self.cols < 16:
            raise ValueError("scene spec must be at least 16x16 pixels")
        if self.vehicles < 0 or self.camouflaged < 0:
            raise ValueError("target counts must be >= 0")
        if self.distinct < 1:
            raise ValueError("distinct must be >= 1")
        if self.noise_scale <= 0:
            raise ValueError("noise_scale must be positive")
        capacity = target_capacity(self.rows, self.cols)
        if self.vehicles + self.camouflaged > capacity:
            raise ValueError(
                f"a {self.rows}x{self.cols} scene reliably hosts at most "
                f"{capacity} vehicle target(s); asked for "
                f"{self.vehicles + self.camouflaged}")

    # ------------------------------------------------------------ generation
    def hydice_config(self, seed: int) -> HydiceConfig:
        """The generator configuration of the ``seed``-th cube."""
        noise = NoiseModel(base_snr=100.0 / self.noise_scale,
                           absorption_snr=25.0 / self.noise_scale)
        return HydiceConfig(bands=self.bands, rows=self.rows, cols=self.cols,
                            seed=seed, vehicles=self.vehicles,
                            camouflaged_vehicles=self.camouflaged,
                            noise=noise,
                            spectral_variability=self.spectral_variability,
                            mixing_strength=self.mixing_strength,
                            clutter_fraction=self.clutter_fraction)

    def build_cubes(self, seed: int, count: int) -> List[HyperspectralCube]:
        """Materialise the cube cycle: ``min(count, distinct)`` cubes.

        Replays index into the returned list modulo its length, so a
        trace of N requests over ``distinct`` cubes re-fuses each cube
        roughly ``N / distinct`` times.
        """
        unique = max(1, min(count, self.distinct))
        return [HydiceGenerator(self.hydice_config(seed + offset)).generate()
                for offset in range(unique)]

    def quick(self) -> "SceneSpec":
        """A CI-sized variant: capped bands/extent, targets re-fit."""
        rows = min(self.rows, 32)
        cols = min(self.cols, 32)
        capacity = target_capacity(rows, cols)
        camouflaged = min(self.camouflaged, capacity)
        vehicles = min(self.vehicles, capacity - camouflaged)
        return replace(self, bands=min(self.bands, 64), rows=rows, cols=cols,
                       vehicles=vehicles, camouflaged=camouflaged)

    def label(self) -> str:
        return f"{self.bands}x{self.rows}x{self.cols}"


__all__ = ["SceneSpec"]
