"""Trace replay: drive a scenario against an engine x backend pair.

``repro-fusion simulate <scenario>`` lands here.  One simulation:

1. resolves the named scenario and draws (or loads) its seeded arrival
   trace,
2. materialises the scenario's cube cycle,
3. opens a :class:`~repro.api.session.FusionSession` on the requested
   engine x backend, arms the chaos profile on the session's stage
   executor, and replays the trace through :meth:`FusionSession.submit`
   at the recorded offsets,
4. measures per-request latency (submission to completion, queueing
   included) and end-to-end throughput, collects the executor's recovery
   counters, optionally verifies every composite bit-for-bit against the
   sequential reference, and
5. emits one schema-versioned record the benchmark-trend ledger
   (``repro-fusion bench-ledger``) ingests unchanged.

Outstanding chaos kill requests are *cancelled and reported* at the end
of every replay -- the reused session executor must never leak a kill
into a later run (the accounting bug this PR fixes in
:mod:`repro.scp.stages`).
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..api.facade import fuse
from ..api.request import FusionReport, FusionRequest
from ..api.session import FusionSession
from ..config import FusionConfig, ScreeningConfig
from ..paritylab.ledger import Metric, make_record
from .arrivals import Trace, record_trace
from .registry import Scenario, get_scenario

#: Schema tag of the simulate payload embedded in every ledger record.
SIMULATE_SCHEMA = "repro-fusion/simulate-report/v1"

#: Requests a ``--quick`` run is capped at (CI smoke sizing).
QUICK_REQUEST_CAP = 4


@dataclass
class SimulationResult:
    """Everything one trace replay produced.

    ``reports`` holds the live :class:`FusionReport` objects (composites
    included) for callers that verify or post-process; :meth:`record`
    serialises the measured half into the ledger-compatible form.
    """

    scenario: str
    engine: str
    backend: str
    seed: int
    quick: bool
    trace: Trace
    scene_label: str
    arrivals_label: str
    chaos_label: Optional[str]
    latencies_ms: List[float]
    makespan_seconds: float
    recovery: Dict[str, Any]
    parity: Dict[str, Any]
    reports: List[FusionReport] = field(default_factory=list)

    @property
    def requests(self) -> int:
        return self.trace.requests

    @property
    def throughput_rps(self) -> float:
        return self.requests / max(self.makespan_seconds, 1e-9)

    def latency_percentile(self, q: float) -> float:
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def metrics(self) -> List[Metric]:
        """The direction-tagged measurements the trend ledger gates."""
        return [
            Metric("throughput_rps", self.throughput_rps,
                   "requests/s", direction="higher"),
            Metric("latency_p50_ms", self.latency_percentile(50.0),
                   "ms", direction="lower"),
            Metric("latency_p95_ms", self.latency_percentile(95.0),
                   "ms", direction="lower"),
        ]

    def record(self) -> Dict[str, Any]:
        """One ledger record (``repro-fusion/bench-record/v1``) whose
        payload carries the full simulate report."""
        payload: Dict[str, Any] = {
            "schema": SIMULATE_SCHEMA,
            "scenario": self.scenario,
            "engine": self.engine,
            "backend": self.backend,
            "seed": self.seed,
            "requests": self.requests,
            "scene": self.scene_label,
            "arrivals": self.arrivals_label,
            "chaos": self.chaos_label,
            "trace": self.trace.to_dict(),
            "latencies_ms": [round(value, 3) for value in self.latencies_ms],
            "makespan_seconds": self.makespan_seconds,
            "recovery": self.recovery,
            "parity": self.parity,
        }
        return make_record(f"simulate-{self.scenario}", self.metrics(),
                           payload=payload, quick=self.quick)

    def summary(self) -> str:
        from ..analysis.report import dict_table

        rows: Dict[str, object] = {
            "scenario": self.scenario,
            "engine x backend": f"{self.engine} x {self.backend}",
            "scene": self.scene_label,
            "arrivals": self.arrivals_label,
            "requests": self.requests,
            "throughput": f"{self.throughput_rps:.2f} req/s",
            "latency p50/p95": (f"{self.latency_percentile(50.0):.0f} / "
                                f"{self.latency_percentile(95.0):.0f} ms"),
        }
        if self.chaos_label:
            rows["chaos"] = self.chaos_label
            rows["recovery"] = (
                f"{self.recovery.get('kills_delivered', 0)} kill(s) "
                f"delivered, {self.recovery.get('retries', 0)} retri(es), "
                f"{self.recovery.get('kills_cancelled', 0)} cancelled")
        if self.parity.get("verified"):
            rows["parity"] = ("bit-identical to sequential"
                              if self.parity.get("ok")
                              else "PARITY VIOLATION (see payload)")
        return dict_table(f"simulate {self.scenario}", rows)


def _threshold_config(threshold: float) -> FusionConfig:
    return FusionConfig(screening=ScreeningConfig(angle_threshold=threshold))


def run_simulation(scenario: Union[str, Scenario], *,
                   engine: str = "pipeline",
                   backend: Optional[str] = None,
                   requests: Optional[int] = None,
                   seed: int = 0,
                   quick: bool = False,
                   trace: Optional[Trace] = None,
                   verify: bool = True,
                   workers: Optional[int] = None,
                   max_inflight: Optional[int] = None) -> SimulationResult:
    """Replay one scenario trace against ``engine`` x ``backend``.

    ``trace`` replays a recorded arrival sequence verbatim (its length
    wins over ``requests``); otherwise a fresh trace is drawn from the
    scenario's arrival process, deterministically per ``seed``.
    ``verify`` fuses each distinct cube/threshold pair once with the
    sequential reference engine and diffs every composite bit-for-bit.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    chaos = scenario.chaos
    if chaos is not None and engine != "pipeline":
        raise ValueError(
            f"scenario {scenario.name!r} carries the {chaos.kind!r} chaos "
            f"profile, which drives the streaming stage executor; run it "
            f"with engine='pipeline' (got engine={engine!r})")
    if backend is None:
        if engine == "sequential":
            backend = None
        elif chaos is not None and chaos.kind == "kill-storm":
            backend = "process:2"
        else:
            backend = "local"

    scene = scenario.scene.quick() if quick else scenario.scene
    if trace is None:
        count = requests if requests is not None else scenario.requests
        if quick:
            count = min(count, QUICK_REQUEST_CAP)
        trace = record_trace(scenario.arrivals, scenario.name, seed=seed,
                             requests=count)
    count = trace.requests

    cubes = scene.build_cubes(seed, count)
    overrides: List[Dict[str, Any]] = []
    for index in range(count):
        if scenario.thresholds:
            threshold = scenario.thresholds[index % len(scenario.thresholds)]
            overrides.append({"config": _threshold_config(threshold)})
        else:
            overrides.append({})

    session_options: Dict[str, Any] = {"engine": engine, "backend": backend,
                                       "workers": workers}
    if engine == "pipeline" and max_inflight is not None:
        session_options["max_inflight"] = max_inflight

    reports: List[FusionReport] = []
    latencies_ms: List[Optional[float]] = [None] * count
    completions: List[Optional[float]] = [None] * count
    chaos_futures: List["Future[object]"] = []

    with FusionSession(**session_options) as session:
        executor = session.stage_executor() if engine == "pipeline" else None
        retries_before = executor.retries if executor is not None else 0
        kills_before = (sum(executor.kills_delivered.values())
                        if executor is not None else 0)
        if chaos is not None:
            assert executor is not None  # guaranteed by the engine check
            chaos.start(executor, count)

        futures: List["Future[FusionReport]"] = []
        clock_start = time.perf_counter()
        for index, offset in enumerate(trace.offsets):
            now = time.perf_counter() - clock_start
            if offset > now:
                time.sleep(offset - now)
            if chaos is not None and executor is not None:
                chaos_futures.extend(chaos.on_request(executor, index))
            submitted = time.perf_counter()

            def _complete(done: "Future[FusionReport]", *, slot: int = index,
                          t0: float = submitted) -> None:
                finished = time.perf_counter()
                latencies_ms[slot] = (finished - t0) * 1000.0
                completions[slot] = finished - clock_start

            future = session.submit(cubes[index % len(cubes)],
                                    **overrides[index])
            future.add_done_callback(_complete)
            futures.append(future)

        for future in futures:
            reports.append(future.result())
        for pending in chaos_futures:
            pending.result(timeout=120.0)

        # The reused session executor must never carry a kill request into
        # the next run: drain leftovers and surface them in the report.
        cancelled: Dict[str, int] = (executor.cancel_kills()
                                     if executor is not None else {})
        recovery: Dict[str, Any] = {
            "profile": chaos.kind if chaos is not None else "none",
            "retries": ((executor.retries - retries_before)
                        if executor is not None else 0),
            "kills_delivered": ((sum(executor.kills_delivered.values())
                                 - kills_before)
                                if executor is not None else 0),
            "kills_cancelled": int(sum(cancelled.values())),
            "chaos_tasks": len(chaos_futures),
        }

        parity: Dict[str, Any] = {"verified": 0, "ok": True, "mismatches": []}
        if verify:
            reference_reports: Dict[Tuple[int, Optional[float]],
                                    FusionReport] = {}
            for index, report in enumerate(reports):
                cube_index = index % len(cubes)
                threshold = (scenario.thresholds[index
                                                 % len(scenario.thresholds)]
                             if scenario.thresholds else None)
                key = (cube_index, threshold)
                if key not in reference_reports:
                    # The unique-set union depends on the partition, and
                    # backend specs like "process:2" hint the worker count;
                    # the sequential reference must resolve the exact same
                    # effective config or the comparison is meaningless.
                    resolved = FusionRequest(
                        cube=cubes[cube_index], engine=engine,
                        backend=backend, workers=workers,
                        config=overrides[index].get("config"),
                    ).resolved_config()
                    reference_reports[key] = fuse(cubes[cube_index],
                                                  engine="sequential",
                                                  config=resolved)
                reference = reference_reports[key]
                parity["verified"] += 1
                if not np.array_equal(report.composite, reference.composite):
                    parity["ok"] = False
                    parity["mismatches"].append(index)

    resolved = [value for value in latencies_ms if value is not None]
    done_offsets = [value for value in completions if value is not None]
    makespan = max(done_offsets) if done_offsets else 0.0

    return SimulationResult(
        scenario=scenario.name,
        engine=engine,
        backend=session_options["backend"] or "inline",
        seed=seed,
        quick=quick,
        trace=trace,
        scene_label=scene.label(),
        arrivals_label=scenario.arrivals.describe(),
        chaos_label=chaos.describe() if chaos is not None else None,
        latencies_ms=resolved,
        makespan_seconds=makespan,
        recovery=recovery,
        parity=parity,
        reports=reports)


__all__ = ["QUICK_REQUEST_CAP", "SIMULATE_SCHEMA", "SimulationResult",
           "run_simulation"]
