"""SCPlib-like concurrent programming library.

This subpackage provides the message-passing substrate the paper's
application and resiliency layers are written against: thread programs as
effect-yielding generators (:mod:`.effects`), explicit communication
structures (:mod:`.topology`), logical-to-physical routing with duplicate
suppression (:mod:`.group`, :mod:`.channel`) and three interchangeable
execution backends -- real threads (:mod:`.local_backend`), real processes
with shared-memory data placement (:mod:`.process_backend`) and a
deterministic discrete-event simulation of a workstation cluster
(:mod:`.sim_backend`).

Backends are addressable by name through the registry (:mod:`.registry`,
spec strings such as ``"process:fork"`` or ``"sim:switched"``), and the
persistent worker pool (:mod:`.pool`) lets repeated runs reuse live worker
processes instead of spawning per run.

The streaming pipeline engine executes *stage tasks* rather than SCP
programs; its worker substrates live behind the transport seam
(:mod:`.transport` -- in-process threads, forked pool slots, or a socket
node agent), driven by the unified stage executor (:mod:`.stages`).
"""

from .channel import Mailbox
from .effects import (Checkpoint, Compute, Effect, GetTime, Probe, Recv, Send,
                      Sleep)
from .errors import (DeadlockError, PlacementError, ReceiveTimeout,
                     RuntimeStateError, SCPError, ThreadCrashedError,
                     UnknownDestinationError)
from .group import Router
from .local_backend import LocalBackend
from .pool import PooledProcessBackend, ProcessPool, default_start_method
from .process_backend import ProcessBackend
from .registry import (SIM_PRESETS, BackendContext, BackendSpec, backend_names,
                       create_backend, describe_backends, register_backend)
from .runtime import (Application, Backend, Context, RunResult, ThreadOutcome,
                      plan_placement)
from .serialization import ENVELOPE_OVERHEAD_BYTES, Envelope, payload_nbytes
from .stages import (PoolStageExecutor, StageCrashError, StageError,
                     ThreadStageExecutor, TransportStageExecutor)
from .transport import (CommittedResult, ForkedProcessTransport,
                        InProcessTransport, SocketTransport, TaskFrame,
                        WorkerTransport, create_transport, describe_transports,
                        register_transport, transport_names)
from .sim_backend import (CONTROL_MESSAGE_BYTES, ProtocolConfig, SimBackend,
                          TaskStatus)
from .thread import ThreadProgram, ThreadSpec, parse_physical, physical_name
from .topology import ChannelDecl, CommunicationStructure
from .tracing import (ComputeInterval, LifecycleEvent, MessageRecord,
                      TraceRecorder)

__all__ = [
    "Mailbox",
    "Checkpoint",
    "Compute",
    "Effect",
    "GetTime",
    "Probe",
    "Recv",
    "Send",
    "Sleep",
    "DeadlockError",
    "PlacementError",
    "ReceiveTimeout",
    "RuntimeStateError",
    "SCPError",
    "ThreadCrashedError",
    "UnknownDestinationError",
    "Router",
    "LocalBackend",
    "PooledProcessBackend",
    "ProcessPool",
    "default_start_method",
    "ProcessBackend",
    "SIM_PRESETS",
    "BackendContext",
    "BackendSpec",
    "backend_names",
    "create_backend",
    "describe_backends",
    "register_backend",
    "Application",
    "Backend",
    "Context",
    "RunResult",
    "ThreadOutcome",
    "plan_placement",
    "ENVELOPE_OVERHEAD_BYTES",
    "Envelope",
    "payload_nbytes",
    "PoolStageExecutor",
    "StageCrashError",
    "StageError",
    "ThreadStageExecutor",
    "TransportStageExecutor",
    "CommittedResult",
    "ForkedProcessTransport",
    "InProcessTransport",
    "SocketTransport",
    "TaskFrame",
    "WorkerTransport",
    "create_transport",
    "describe_transports",
    "register_transport",
    "transport_names",
    "CONTROL_MESSAGE_BYTES",
    "ProtocolConfig",
    "SimBackend",
    "TaskStatus",
    "ThreadProgram",
    "ThreadSpec",
    "parse_physical",
    "physical_name",
    "ChannelDecl",
    "CommunicationStructure",
    "ComputeInterval",
    "LifecycleEvent",
    "MessageRecord",
    "TraceRecorder",
]
