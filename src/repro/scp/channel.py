"""Per-thread mailboxes with port filtering and duplicate suppression.

Every physical thread owns one :class:`Mailbox`.  Senders (via the router)
deposit :class:`~repro.scp.serialization.Envelope` objects; the owning thread
consumes them with optional port filtering.  The mailbox is also where the
resiliency layer's *duplicate suppression* lives: when a logical sender is
replicated, each replica emits an identical copy of every message and the
receiving mailbox keeps only the first copy for a given dedup key.

The same class is used by both backends.  The simulated backend drives it
from a single-threaded event loop and never blocks; the local backend wraps
consumption in a condition variable so real threads can block on
:meth:`wait_matching`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional, Set, Tuple

from .serialization import Envelope


class Mailbox:
    """FIFO of envelopes addressed to one physical thread."""

    def __init__(self, owner: str, *, dedup: bool = True, thread_safe: bool = False) -> None:
        self.owner = owner
        self._queue: Deque[Envelope] = deque()
        self._seen_keys: Set[Tuple] = set()
        self._dedup = dedup
        self._lock = threading.Lock() if thread_safe else None
        self._condition = threading.Condition(self._lock) if thread_safe else None
        self._deposited = 0
        self._suppressed = 0
        self._closed = False

    # ------------------------------------------------------------ properties
    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def deposited(self) -> int:
        """Total number of envelopes ever accepted."""
        return self._deposited

    @property
    def suppressed_duplicates(self) -> int:
        return self._suppressed

    @property
    def closed(self) -> bool:
        return self._closed

    # --------------------------------------------------------------- deposit
    def deposit(self, envelope: Envelope) -> bool:
        """Add an envelope.  Returns False if it was suppressed as a duplicate
        or the mailbox is closed (owner died)."""
        if self._condition is not None:
            with self._condition:
                accepted = self._deposit_unlocked(envelope)
                if accepted:
                    self._condition.notify_all()
                return accepted
        return self._deposit_unlocked(envelope)

    def _deposit_unlocked(self, envelope: Envelope) -> bool:
        if self._closed:
            return False
        if self._dedup and not envelope.urgent:
            key = envelope.dedup_key
            if key in self._seen_keys:
                self._suppressed += 1
                return False
            self._seen_keys.add(key)
        self._queue.append(envelope)
        self._deposited += 1
        return True

    # --------------------------------------------------------------- consume
    def _find_index(self, port: Optional[str]) -> Optional[int]:
        for index, envelope in enumerate(self._queue):
            if port is None or envelope.port == port:
                return index
        return None

    def try_consume(self, port: Optional[str] = None) -> Optional[Envelope]:
        """Pop the first envelope matching ``port`` without blocking."""
        if self._condition is not None:
            with self._condition:
                return self._try_consume_unlocked(port)
        return self._try_consume_unlocked(port)

    def _try_consume_unlocked(self, port: Optional[str]) -> Optional[Envelope]:
        index = self._find_index(port)
        if index is None:
            return None
        envelope = self._queue[index]
        del self._queue[index]
        return envelope

    def has_matching(self, port: Optional[str] = None) -> bool:
        if self._condition is not None:
            with self._condition:
                return self._find_index(port) is not None
        return self._find_index(port) is not None

    def wait_matching(self, port: Optional[str] = None,
                      timeout: Optional[float] = None) -> Optional[Envelope]:
        """Blocking consume for the local backend.

        Returns None on timeout or when the mailbox is closed while waiting.
        Requires the mailbox to have been created with ``thread_safe=True``.
        """
        if self._condition is None:
            raise RuntimeError("wait_matching requires a thread_safe Mailbox")
        with self._condition:
            result = self._condition.wait_for(
                lambda: self._closed or self._find_index(port) is not None,
                timeout=timeout,
            )
            if not result or self._closed and self._find_index(port) is None:
                return None
            return self._try_consume_unlocked(port)

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        """Mark the owner as dead; pending messages are dropped, waiters wake."""
        if self._condition is not None:
            with self._condition:
                self._closed = True
                self._queue.clear()
                self._condition.notify_all()
        else:
            self._closed = True
            self._queue.clear()

    def drain(self) -> List[Envelope]:
        """Remove and return all pending envelopes (used by reconfiguration
        to forward in-flight messages to a regenerated replica)."""
        if self._condition is not None:
            with self._condition:
                pending = list(self._queue)
                self._queue.clear()
                return pending
        pending = list(self._queue)
        self._queue.clear()
        return pending

    def import_seen_keys(self, keys: Set[Tuple]) -> None:
        """Seed the duplicate-suppression set (state handed to a regenerated
        replica so it does not reprocess messages its predecessor consumed)."""
        self._seen_keys |= set(keys)

    def seen_keys(self) -> Set[Tuple]:
        return set(self._seen_keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Mailbox {self.owner} pending={self.pending} closed={self._closed}>"


__all__ = ["Mailbox"]
