"""Effect objects yielded by SCP thread programs.

A *thread program* is a Python generator function taking a single ``ctx``
argument (a backend-provided :class:`~repro.scp.runtime.Context`) and yielding
effect objects.  The backend interprets each effect -- blocking queues and
wall-clock time in the local backend, discrete events and virtual time in the
simulated backend -- and resumes the generator with the effect's result.

Writing programs this way gives exactly the property the paper requires of
SCPlib applications: the *same* algorithm source runs unchanged on different
execution substrates, because the communication structure and the computation
are expressed declaratively rather than via a concrete threading API.

Example
-------
A minimal echo worker::

    def echo(ctx):
        while True:
            msg = yield Recv(port="request")
            if msg.payload is None:
                break
            yield Send(dst="manager", port="reply", payload=msg.payload)

The effects are deliberately small, frozen dataclasses: they are pure data
and never perform work themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple


class Effect:
    """Marker base class for everything a thread program may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Send(Effect):
    """Send ``payload`` to the logical thread ``dst`` on ``port``.

    Attributes
    ----------
    dst:
        Logical destination name (e.g. ``"manager"`` or ``"worker.3"``).  The
        runtime's router expands it to one or more physical replicas.
    port:
        Named port on the destination; receivers can selectively wait on it.
    payload:
        Arbitrary Python object; NumPy arrays are accounted at their true
        byte size when computing transfer costs.
    key:
        Optional duplicate-suppression key.  When a logical sender is
        replicated, every replica emits the same message; receivers keep only
        the first copy carrying a given ``(logical_sender, key)``.  When
        ``None`` the per-thread send sequence number is used, which is correct
        as long as replicas remain in lock step.
    urgent:
        Urgent messages (heartbeats, control traffic) bypass payload-size
        accounting in the local backend and are never deduplicated.
    """

    dst: str
    port: str
    payload: Any = None
    key: Optional[Tuple[Any, ...]] = None
    urgent: bool = False


@dataclass(frozen=True)
class Recv(Effect):
    """Receive the next message, optionally restricted to ``port``.

    The effect's result is a :class:`~repro.scp.serialization.Envelope`.

    Attributes
    ----------
    port:
        Only messages sent to this port are returned; ``None`` accepts any.
    timeout:
        Seconds (virtual or wall-clock) after which
        :class:`~repro.scp.errors.ReceiveTimeout` is raised inside the
        program.  ``None`` waits forever.
    """

    port: Optional[str] = None
    timeout: Optional[float] = None


@dataclass(frozen=True)
class Compute(Effect):
    """Execute ``fn(*args, **kwargs)`` and charge its cost.

    The function is executed for real in both backends (results are needed to
    produce the fused image); the backends differ only in how elapsed time is
    obtained -- measured in the local backend, derived from ``flops`` and the
    hosting node's speed in the simulated backend.

    Attributes
    ----------
    fn / args / kwargs:
        The work to perform.
    flops:
        Estimated floating-point operations of the call; drives virtual time.
    phase:
        Label under which the cost is aggregated in run metrics
        (e.g. ``"screening"`` or ``"transform"``).
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    flops: float = 0.0
    phase: str = "compute"


@dataclass(frozen=True)
class Sleep(Effect):
    """Suspend the thread for ``seconds`` of (virtual or wall-clock) time."""

    seconds: float = 0.0


@dataclass(frozen=True)
class Checkpoint(Effect):
    """Publish a recoverable state snapshot to the resiliency layer.

    If the thread's replica group later regenerates a replica, the new
    replica's context exposes the most recent checkpoint as ``ctx.restored``.
    Programs that are idempotent at the message level (such as the fusion
    workers) may never need to checkpoint; the manager checkpoints its
    partial accumulations so a replicated manager could be recovered.
    """

    state: Any = None


@dataclass(frozen=True)
class GetTime(Effect):
    """Return the current time (virtual in simulation, wall-clock locally)."""


@dataclass(frozen=True)
class Probe(Effect):
    """Non-blocking check for a pending message on ``port``.

    The effect's result is ``True`` when a matching message is waiting.  The
    fusion workers use this to overlap the request for the next sub-problem
    with the computation of the current one, as described in Section 3.
    """

    port: Optional[str] = None


__all__ = [
    "Effect",
    "Send",
    "Recv",
    "Compute",
    "Sleep",
    "Checkpoint",
    "GetTime",
    "Probe",
]
