"""Error taxonomy of the SCP runtime.

Keeping a dedicated exception hierarchy makes it possible for tests (and for
the resiliency layer) to distinguish programming errors in thread programs
from infrastructure conditions such as delivery to a failed thread.
"""

from __future__ import annotations


class SCPError(RuntimeError):
    """Base class of all SCP runtime errors."""


class UnknownDestinationError(SCPError):
    """A message was addressed to a logical name with no live binding."""


class ThreadCrashedError(SCPError):
    """A thread program raised an unhandled exception.

    The original exception is available as ``__cause__`` and the logical
    identity of the offending thread as :attr:`thread_id`.
    """

    def __init__(self, thread_id: str, message: str) -> None:
        super().__init__(f"thread {thread_id!r} crashed: {message}")
        self.thread_id = thread_id


class ReceiveTimeout(SCPError):
    """A blocking receive exceeded its timeout.

    Programs may catch this to implement their own retry/failover logic; the
    resilient manager uses it to survive the loss of an entire worker group.
    """

    def __init__(self, thread_id: str, port: str | None, timeout: float) -> None:
        super().__init__(
            f"thread {thread_id!r} timed out after {timeout}s waiting on port {port!r}")
        self.thread_id = thread_id
        self.port = port
        self.timeout = timeout


class RuntimeStateError(SCPError):
    """The runtime was driven through an invalid state transition."""


class PlacementError(SCPError):
    """A thread could not be placed on the requested or any suitable node."""


class DeadlockError(SCPError):
    """Every live thread is blocked and no message or event can unblock them."""


__all__ = [
    "SCPError",
    "UnknownDestinationError",
    "ThreadCrashedError",
    "ReceiveTimeout",
    "RuntimeStateError",
    "PlacementError",
    "DeadlockError",
]
