"""Logical-to-physical routing.

The :class:`Router` maintains the mapping from logical thread names to the
set of live physical replicas.  Every send is expanded through it: a message
addressed to ``"worker.3"`` is delivered to each live replica of worker 3,
and duplicate suppression at the receiving mailbox collapses replicated
*senders* back down to one copy.  The resiliency layer mutates the router
when replicas die or are regenerated; the application never sees physical
identifiers at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .errors import UnknownDestinationError
from .thread import parse_physical


class Router:
    """Mapping between logical thread names and live physical replicas."""

    def __init__(self) -> None:
        self._logical_to_physical: Dict[str, List[str]] = {}
        self._physical_to_logical: Dict[str, str] = {}

    # ---------------------------------------------------------- registration
    def register(self, logical: str, physical_id: str) -> None:
        """Register a live physical replica of ``logical``."""
        if physical_id in self._physical_to_logical:
            raise ValueError(f"physical thread {physical_id!r} is already registered")
        self._logical_to_physical.setdefault(logical, [])
        self._logical_to_physical[logical].append(physical_id)
        self._physical_to_logical[physical_id] = logical

    def unregister(self, physical_id: str) -> Optional[str]:
        """Remove a physical replica (it finished or died).

        Returns the logical name it belonged to, or None if it was unknown.
        """
        logical = self._physical_to_logical.pop(physical_id, None)
        if logical is not None:
            replicas = self._logical_to_physical.get(logical, [])
            if physical_id in replicas:
                replicas.remove(physical_id)
        return logical

    # --------------------------------------------------------------- queries
    def knows_logical(self, logical: str) -> bool:
        return logical in self._logical_to_physical

    def physical_targets(self, logical: str) -> List[str]:
        """Live physical replicas of ``logical`` (possibly empty)."""
        return list(self._logical_to_physical.get(logical, []))

    def logical_of(self, physical_id: str) -> str:
        try:
            return self._physical_to_logical[physical_id]
        except KeyError:
            # Fall back to parsing; useful for threads that died already.
            return parse_physical(physical_id)[0]

    def replica_count(self, logical: str) -> int:
        return len(self._logical_to_physical.get(logical, []))

    def all_logical(self) -> List[str]:
        return sorted(self._logical_to_physical)

    def all_physical(self) -> List[str]:
        return sorted(self._physical_to_logical)

    def require_targets(self, logical: str) -> List[str]:
        """Like :meth:`physical_targets` but raising when the logical name was
        never registered (a genuine addressing bug rather than a failure)."""
        if logical not in self._logical_to_physical:
            raise UnknownDestinationError(
                f"no thread named {logical!r} is known to the router; "
                f"known: {self.all_logical()}")
        return self.physical_targets(logical)

    def snapshot(self) -> Dict[str, List[str]]:
        """Copy of the logical -> physical map (for tests and reports)."""
        return {k: list(v) for k, v in self._logical_to_physical.items()}


__all__ = ["Router"]
