"""Local execution backend: real Python threads, wall-clock time.

The local backend runs the *same* thread programs as the simulated backend,
but on genuine :class:`threading.Thread` objects with blocking mailboxes.  It
serves two purposes:

* it demonstrates that the algorithm and resiliency code are truly
  backend-independent (the paper's claim about SCPlib applications), and
* it provides end-to-end concurrency tests in which real interleavings,
  real blocking receives and real fault injection (thread kills followed by
  regeneration) exercise the protocols.

Because CPython threads share one interpreter, the local backend is *not*
meant to demonstrate speed-up; wall-clock performance claims are made only by
the simulated backend.  Timing is still recorded so the pipeline phases can
be profiled.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..cluster.metrics import MetricsCollector
from ..logging_utils import get_logger
from .channel import Mailbox
from .effects import (Checkpoint, Compute, GetTime, Probe, Recv, Send, Sleep)
from .errors import (ReceiveTimeout, RuntimeStateError, SCPError,
                     ThreadCrashedError)
from .group import Router
from .runtime import (Application, Backend, Context, RunResult, ThreadOutcome)
from .serialization import Envelope
from .thread import ThreadSpec, physical_name

_LOG = get_logger("scp.local")


class _KilledSignal(Exception):
    """Internal control-flow exception unwinding a killed thread program."""


class _LocalTask:
    def __init__(self, spec: ThreadSpec, replica: int, physical_id: str,
                 ctx: Context) -> None:
        self.spec = spec
        self.logical = spec.name
        self.replica = replica
        self.physical_id = physical_id
        self.ctx = ctx
        self.mailbox = Mailbox(physical_id, dedup=True, thread_safe=True)
        self.gen = None
        self.thread: Optional[threading.Thread] = None
        self.status = "ready"
        self.result: Any = None
        self.error: Optional[str] = None
        self.send_seq = 0
        self.killed = threading.Event()
        self.daemon = spec.daemon
        self.incarnation = ctx.incarnation

    @property
    def alive(self) -> bool:
        return self.status in ("ready", "running")


class LocalBackend(Backend):
    """Shared-memory, real-thread execution backend."""

    kind = "local"

    def __init__(self, *, crash_policy: str = "raise",
                 default_timeout: Optional[float] = 120.0) -> None:
        """Create a local backend.

        Parameters
        ----------
        crash_policy:
            ``"raise"`` re-raises the first program exception after the run;
            ``"record"`` only records it in the outcomes.
        default_timeout:
            Wall-clock safety limit (seconds) applied to :meth:`run` unless
            overridden; prevents wedged tests from hanging forever.
        """
        if crash_policy not in ("raise", "record"):
            raise ValueError("crash_policy must be 'raise' or 'record'")
        self.crash_policy = crash_policy
        self.default_timeout = default_timeout
        self.router = Router()
        self.collector = MetricsCollector()
        self._tasks: Dict[str, _LocalTask] = {}
        self._lock = threading.RLock()
        self._dead_letters: Dict[str, List[Envelope]] = {}
        self._death_callbacks: List[Callable[[str, str, str], None]] = []
        self._checkpoints: Dict[str, Any] = {}
        self._messages = 0
        self._bytes = 0
        self._start_time = 0.0
        self._app: Optional[Application] = None
        self._ran = False

    # --------------------------------------------------------------- queries
    @property
    def now(self) -> float:
        """Seconds since the run started (wall clock)."""
        return time.perf_counter() - self._start_time if self._start_time else 0.0

    def live_replicas(self, logical: str) -> List[str]:
        with self._lock:
            return [pid for pid in self.router.physical_targets(logical)
                    if pid in self._tasks and self._tasks[pid].alive]

    def checkpoint_of(self, logical: str) -> Any:
        with self._lock:
            return self._checkpoints.get(logical)

    def subscribe_thread_death(self, callback: Callable[[str, str, str], None]) -> None:
        self._death_callbacks.append(callback)

    # ------------------------------------------------------------------- run
    def run(self, app: Application, *, timeout: Optional[float] = None,
            until_thread: Optional[str] = None) -> RunResult:
        """Run ``app`` on real threads.

        ``until_thread`` names a logical thread whose completion ends the run
        (remaining threads are shut down by closing their mailboxes), which is
        how the fusion application terminates its workers deterministically
        even when a fault-injection campaign interfered with the stop
        messages.
        """
        if self._ran:
            raise RuntimeStateError("LocalBackend instances are single use; create a new one")
        self._ran = True
        app.validate()
        self._app = app
        timeout = timeout if timeout is not None else self.default_timeout
        self._start_time = time.perf_counter()

        with self._lock:
            for spec in app.specs:
                for replica in range(spec.replicas):
                    self._create_task(spec, replica, restored=None, incarnation=0)
            tasks = list(self._tasks.values())
        for task in tasks:
            self._start_task(task)

        deadline = (time.perf_counter() + timeout) if timeout is not None else None
        self._join(until_thread, deadline)
        elapsed = time.perf_counter() - self._start_time
        return self._build_result(elapsed)

    def _join(self, until_thread: Optional[str], deadline: Optional[float]) -> None:
        if until_thread is not None:
            self._wait_for_logical(until_thread, deadline)
            # Shut down everything else so joins below terminate quickly.
            with self._lock:
                leftovers = [t for t in self._tasks.values()
                             if t.alive and t.logical != until_thread]
            for task in leftovers:
                self.kill_thread(task.physical_id, reason="shutdown")
        while True:
            with self._lock:
                pending = [t for t in self._tasks.values()
                           if not t.daemon and t.thread is not None and t.thread.is_alive()]
            if not pending:
                break
            if deadline is not None and time.perf_counter() > deadline:
                names = [t.physical_id for t in pending]
                for task in pending:
                    self.kill_thread(task.physical_id, reason="timeout")
                raise SCPError(f"local run timed out; still alive: {names}")
            pending[0].thread.join(timeout=0.05)
        # Daemon threads are shut down unconditionally at the end of the run.
        with self._lock:
            daemons = [t for t in self._tasks.values() if t.daemon and t.alive]
        for task in daemons:
            self.kill_thread(task.physical_id, reason="shutdown")

    def _wait_for_logical(self, logical: str, deadline: Optional[float]) -> None:
        while True:
            with self._lock:
                done = any(t.status == "finished" for t in self._tasks.values()
                           if t.logical == logical)
                all_dead = all(not t.alive for t in self._tasks.values()
                               if t.logical == logical)
            if done:
                return
            if all_dead:
                return
            if deadline is not None and time.perf_counter() > deadline:
                return
            time.sleep(0.002)

    # --------------------------------------------------------- task plumbing
    def _create_task(self, spec: ThreadSpec, replica: int, *, restored: Any,
                     incarnation: int) -> _LocalTask:
        pid = physical_name(spec.name, replica)
        if pid in self._tasks and self._tasks[pid].alive:
            raise RuntimeStateError(f"physical thread {pid!r} already exists and is alive")
        ctx = Context(name=spec.name, replica=replica, physical_id=pid, node="local",
                      params=dict(spec.params), restored=restored, incarnation=incarnation)
        task = _LocalTask(spec, replica, pid, ctx)
        task.gen = spec.program(ctx, **spec.params)
        self._tasks[pid] = task
        self.router.register(spec.name, pid)
        parked = self._dead_letters.pop(spec.name, [])
        for envelope in parked:
            task.mailbox.deposit(envelope)
        return task

    def _start_task(self, task: _LocalTask) -> None:
        thread = threading.Thread(target=self._interpret, args=(task,),
                                  name=task.physical_id, daemon=True)
        task.thread = thread
        task.status = "running"
        thread.start()

    # ------------------------------------------------------------ interpreter
    def _interpret(self, task: _LocalTask) -> None:
        value: Any = None
        throw: Optional[BaseException] = None
        try:
            while True:
                if task.killed.is_set():
                    raise _KilledSignal()
                try:
                    if throw is not None:
                        exc, throw = throw, None
                        effect = task.gen.throw(exc)
                    else:
                        effect = task.gen.send(value)
                except StopIteration as stop:
                    self._finish(task, stop.value)
                    return
                value, throw = self._execute_effect(task, effect)
        except _KilledSignal:
            self._mark_killed(task)
        except ReceiveTimeout as err:
            self._crash(task, f"uncaught ReceiveTimeout: {err}")
        except Exception as err:  # noqa: BLE001 - program errors are reported
            self._crash(task, repr(err))

    def _execute_effect(self, task: _LocalTask, effect):
        if isinstance(effect, Compute):
            start = time.perf_counter()
            result = effect.fn(*effect.args, **effect.kwargs)
            elapsed = time.perf_counter() - start
            with self._lock:
                self.collector.add_phase(effect.phase, elapsed)
                self.collector.add_node_busy("local", elapsed)
            return result, None
        if isinstance(effect, Send):
            self._send(task, effect)
            return None, None
        if isinstance(effect, Recv):
            envelope = task.mailbox.wait_matching(effect.port, effect.timeout)
            if envelope is None:
                if task.killed.is_set() or task.mailbox.closed:
                    raise _KilledSignal()
                return None, ReceiveTimeout(task.physical_id, effect.port,
                                            effect.timeout or 0.0)
            return envelope, None
        if isinstance(effect, Probe):
            return task.mailbox.has_matching(effect.port), None
        if isinstance(effect, Sleep):
            time.sleep(max(0.0, effect.seconds))
            return None, None
        if isinstance(effect, Checkpoint):
            with self._lock:
                self._checkpoints[task.logical] = effect.state
            return None, None
        if isinstance(effect, GetTime):
            return self.now, None
        raise SCPError(f"program yielded a non-effect object: {effect!r}")

    def _send(self, task: _LocalTask, effect: Send) -> None:
        task.send_seq += 1
        envelope = Envelope(src=task.logical, dst=effect.dst, port=effect.port,
                            payload=effect.payload, seq=task.send_seq, key=effect.key,
                            src_physical=task.physical_id, urgent=effect.urgent,
                            send_time=self.now)
        with self._lock:
            targets = [pid for pid in self.router.physical_targets(effect.dst)
                       if pid in self._tasks and self._tasks[pid].alive]
            if not targets:
                self._dead_letters.setdefault(effect.dst, []).append(envelope)
                self.collector.increment("dead_lettered")
                return
            self._messages += len(targets)
            self._bytes += envelope.nbytes * len(targets)
            mailboxes = [self._tasks[pid].mailbox for pid in targets]
        for mailbox in mailboxes:
            accepted = mailbox.deposit(envelope)
            if not accepted:
                with self._lock:
                    self.collector.increment("duplicates_suppressed")

    # ----------------------------------------------------------- termination
    def _finish(self, task: _LocalTask, result: Any) -> None:
        with self._lock:
            task.status = "finished"
            task.result = result
            self.router.unregister(task.physical_id)

    def _mark_killed(self, task: _LocalTask) -> None:
        with self._lock:
            task.status = "killed"
            self.router.unregister(task.physical_id)

    def _crash(self, task: _LocalTask, message: str) -> None:
        with self._lock:
            task.status = "crashed"
            task.error = message
            task.mailbox.close()
            self.router.unregister(task.physical_id)
            self.collector.increment("crashes")
        _LOG.warning("thread %s crashed: %s", task.physical_id, message)
        for callback in self._death_callbacks:
            callback(task.physical_id, task.logical, "crashed")

    # --------------------------------------------------- resiliency controls
    def kill_thread(self, physical_id: str, reason: str = "killed") -> bool:
        with self._lock:
            task = self._tasks.get(physical_id)
            if task is None or not task.alive:
                return False
            task.killed.set()
            task.status = "killed"
            task.mailbox.close()
            self.router.unregister(physical_id)
            if reason == "killed":
                self.collector.increment("failures_injected")
        if reason == "killed":
            for callback in self._death_callbacks:
                callback(physical_id, task.logical, reason)
        return True

    def spawn_thread(self, spec: ThreadSpec, *, replica: int, node: Optional[str] = None,
                     restored: Any = None, incarnation: int = 1) -> str:
        with self._lock:
            task = self._create_task(spec, replica, restored=restored,
                                     incarnation=incarnation)
            self.collector.increment("replicas_regenerated")
        self._start_task(task)
        return task.physical_id

    # ---------------------------------------------------------------- result
    def _build_result(self, elapsed: float) -> RunResult:
        returns: Dict[str, Any] = {}
        outcomes: Dict[str, ThreadOutcome] = {}
        first_crash: Optional[str] = None
        with self._lock:
            for pid, task in self._tasks.items():
                outcomes[pid] = ThreadOutcome(physical_id=pid, logical=task.logical,
                                              replica=task.replica, status=task.status,
                                              result=task.result, error=task.error)
                if task.status == "finished" and task.logical not in returns:
                    returns[task.logical] = task.result
                if task.status == "crashed" and first_crash is None:
                    first_crash = f"{pid}: {task.error}"
            workers = sum(1 for s in (self._app.specs if self._app else [])
                          if s.name.startswith("worker"))
            replication = max((s.replicas for s in (self._app.specs if self._app else [])),
                              default=1)
            metrics = self.collector.finalise(
                elapsed_seconds=elapsed, backend=self.kind,
                workers=max(workers, 1), subcubes=0, replication_level=replication,
                messages=self._messages, bytes_sent=self._bytes)
        if first_crash is not None and self.crash_policy == "raise":
            raise ThreadCrashedError(first_crash.split(":")[0], first_crash)
        return RunResult(returns=returns, outcomes=outcomes, metrics=metrics,
                         elapsed_seconds=elapsed)


__all__ = ["LocalBackend"]
