"""Persistent worker-process pool: amortised spawning for repeated runs.

:class:`~repro.scp.process_backend.ProcessBackend` spawns one operating-system
process per physical replica *per run* and tears everything down afterwards.
For a single fusion that is the right lifecycle, but a service fusing many
cubes pays the interpreter start-up (hundreds of milliseconds per process
under the portable ``spawn`` start method) on every request.

This module keeps the processes alive instead:

* :class:`ProcessPool` owns long-lived *slots* -- worker processes running
  :func:`_pool_child_main`, which sits on its inbox waiting for a program
  assignment, interprets it with the exact same effect interpreter the
  one-shot backend uses (:func:`~repro.scp.process_backend._interpret_program`),
  reports through the pool's shared outbox, and returns to idle.
* :class:`PooledProcessBackend` is a drop-in :class:`Backend` that borrows
  slots from a pool instead of spawning processes.  Parent-side routing,
  metrics, crash detection and regeneration are inherited unchanged from
  :class:`ProcessBackend`; only the provisioning of execution vehicles
  differs.

The pool grows on demand (a run needing more replicas than there are idle
slots spawns the difference) and never shrinks on its own; slots whose
process died, was fault-injected, or may still be executing an abandoned
program are discarded rather than reused, so a recycled slot is always
genuinely idle.  One pool serves one run at a time -- interleaving two
concurrent runs over the same outbox would cross their reports -- which is
exactly the serial reuse pattern :class:`repro.api.session.FusionSession`
needs.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import threading
from typing import Any, List, Optional

from ..logging_utils import get_logger
from .errors import RuntimeStateError
from .process_backend import (_SHUTDOWN, ProcessBackend, _interpret_program,
                              _ProcessTask)

_LOG = get_logger("scp.pool")

#: First element of a program-assignment tuple deposited on a slot's inbox.
_ASSIGN = "__scp_pool_assign__"

#: Sentinel asking a pool child to exit its idle loop and terminate.
_POOL_EXIT = "__scp_pool_exit__"


def default_start_method() -> str:
    """Cheapest safe ``multiprocessing`` start method on this platform.

    ``fork`` avoids re-importing the interpreter per slot and is an order of
    magnitude faster to start than ``spawn``; it is preferred wherever the
    OS offers it.  For a pool the start cost only matters when the pool
    grows, but fast growth keeps the first request of a session cheap too.
    """
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _pool_child_main(slot_name: str, inbox, outbox) -> None:
    """Idle loop of a pool slot: wait for assignments, interpret, repeat.

    A slot accepts two kinds of work: full SCP *program* assignments
    (interpreted with the shared effect interpreter, exactly as the one-shot
    process backend does) and short *stage tasks* from the streaming
    pipeline engine (:mod:`repro.scp.stages`).  Anything else on the inbox
    -- a stale envelope or shutdown marker from a program that already ended
    -- is dropped, so leftovers of a previous run can never leak into the
    next.
    """
    from ..data.shared import release_attachments
    from .stages import try_run_stage
    while True:
        item = inbox.get()
        if isinstance(item, str) and item == _POOL_EXIT:
            # Drop any cached output-placement mappings deterministically
            # rather than relying on process teardown to release the pages.
            release_attachments()
            return
        if try_run_stage(item, outbox):
            continue
        if not (isinstance(item, tuple) and len(item) == 10 and item[0] == _ASSIGN):
            continue
        (_, logical, replica, physical_id, node, program, params,
         restored, incarnation, epoch) = item
        _interpret_program(logical, replica, physical_id, node, program,
                           params, restored, incarnation, inbox, outbox, epoch)


class _PoolSlot:
    """Parent-side record of one long-lived worker process."""

    def __init__(self, name: str, process, inbox) -> None:
        self.name = name
        self.process = process
        self.inbox = inbox
        self.busy = False
        self.assignments = 0

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ProcessPool:
    """A growable set of long-lived worker processes.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method for slot processes; defaults to
        :func:`default_start_method` (``fork`` where available -- safe here
        because slots are spawned from the single-threaded control path).
    warm:
        Number of slots to spawn immediately; the pool also grows on demand.
    """

    def __init__(self, *, start_method: Optional[str] = None, warm: int = 0) -> None:
        self.start_method = start_method or default_start_method()
        self._ctx = multiprocessing.get_context(self.start_method)
        self.outbox = self._ctx.Queue()
        self._slots: List[_PoolSlot] = []
        self._lock = threading.Lock()
        self._names = itertools.count()
        self._closed = False
        #: Total slot processes ever spawned (observable setup cost; a warmed
        #: session keeps this flat across repeated runs).
        self.spawned_processes = 0
        if warm:
            self.ensure(warm)

    # --------------------------------------------------------------- queries
    @property
    def size(self) -> int:
        """Live slots, busy or idle."""
        with self._lock:
            return sum(1 for slot in self._slots if slot.alive)

    @property
    def idle(self) -> int:
        with self._lock:
            return sum(1 for slot in self._slots if slot.alive and not slot.busy)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------ allocation
    def ensure(self, count: int) -> None:
        """Grow the pool until at least ``count`` live slots exist."""
        with self._lock:
            self._check_open()
            self._prune_dead()
            while sum(1 for slot in self._slots if slot.alive) < count:
                self._spawn_slot()

    def acquire(self, *, allow_spawn: bool = True) -> Optional[_PoolSlot]:
        """Borrow an idle slot, spawning a fresh one when none is free.

        ``allow_spawn=False`` returns ``None`` instead of spawning -- used
        by callers on threads where forking a new slot process would race
        other threads' queue feeders (the stage executor's crash-retry
        path defers until a warm slot frees up instead).
        """
        with self._lock:
            self._check_open()
            self._prune_dead()
            for slot in self._slots:
                if slot.alive and not slot.busy:
                    slot.busy = True
                    slot.assignments += 1
                    return slot
            if not allow_spawn:
                return None
            slot = self._spawn_slot()
            slot.busy = True
            slot.assignments += 1
            return slot

    def release(self, slot: _PoolSlot) -> None:
        """Return a borrowed slot; unknown (discarded) slots are ignored."""
        with self._lock:
            if slot in self._slots:
                slot.busy = False

    def discard(self, slot: _PoolSlot) -> None:
        """Remove a slot from the pool and terminate its process.

        Used for fault injection, timeouts, and any slot that may still be
        executing an abandoned program -- reusing such a slot could leak a
        stale report into a later run.  The slot's inbox is released here
        too: its feeder thread would otherwise block interpreter shutdown
        on data buffered for the killed process.
        """
        with self._lock:
            if slot in self._slots:
                self._slots.remove(slot)
        if slot.process.is_alive():
            slot.process.kill()
            slot.process.join(timeout=1.0)
        slot.inbox.cancel_join_thread()
        slot.inbox.close()

    def _spawn_slot(self) -> _PoolSlot:
        name = f"scp-pool-{next(self._names)}"
        inbox = self._ctx.Queue()
        process = self._ctx.Process(target=_pool_child_main,
                                    args=(name, inbox, self.outbox),
                                    name=name, daemon=True)
        process.start()
        self.spawned_processes += 1
        slot = _PoolSlot(name, process, inbox)
        self._slots.append(slot)
        return slot

    def _prune_dead(self) -> None:
        self._slots = [slot for slot in self._slots if slot.alive]

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeStateError("process pool is closed")

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Terminate every slot and release the pool's queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            slots = list(self._slots)
            self._slots.clear()
        for slot in slots:
            try:
                slot.inbox.put(_POOL_EXIT)
            # Narrowed (RPL005): only the "queue already broken" failures
            # are survivable here -- ValueError (closed queue), OSError
            # (dead feeder pipe), AssertionError (pre-3.12 closed-queue
            # signalling).  Anything else is a real bug and must surface.
            except (ValueError, OSError, AssertionError):  # pragma: no cover
                pass
        for slot in slots:
            slot.process.join(timeout=1.0)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=1.0)
        for slot in slots:
            slot.inbox.cancel_join_thread()
            slot.inbox.close()
        self.outbox.cancel_join_thread()
        self.outbox.close()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PooledProcessBackend(ProcessBackend):
    """Process backend that borrows replicas from a :class:`ProcessPool`.

    A backend instance is still single use -- parent-side routing state is
    per run -- but the expensive part, the worker processes, persists in the
    pool across instances.  Create one per run::

        pool = ProcessPool()
        result = PooledProcessBackend(pool).run(app, until_thread="manager")
        result = PooledProcessBackend(pool).run(app2, until_thread="manager")
        pool.close()
    """

    kind = "pooled-process"

    def __init__(self, pool: ProcessPool, *, crash_policy: str = "raise",
                 default_timeout: Optional[float] = 300.0,
                 shutdown_grace: float = 5.0) -> None:
        super().__init__(crash_policy=crash_policy, default_timeout=default_timeout,
                         start_method=pool.start_method, shutdown_grace=shutdown_grace)
        self._pool = pool

    # --------------------------------------------------------- task plumbing
    def _make_outbox(self):
        # Reuse the pool's long-lived report queue; drop anything a previous
        # run may have left behind so its records cannot bleed into this one.
        while True:
            try:
                self._pool.outbox.get_nowait()
            except queue_module.Empty:
                break
        return self._pool.outbox

    def _provision_task(self, task: _ProcessTask, restored: Any) -> None:
        task.restored = restored
        slot = self._pool.acquire()
        task.slot = slot
        task.inbox = slot.inbox
        task.process = slot.process

    def _start_task(self, task: _ProcessTask) -> None:
        task.status = "running"
        task.inbox.put((_ASSIGN, task.logical, task.replica, task.physical_id,
                        task.physical_id, task.spec.program,
                        self._shared_params[task.logical], task.restored,
                        task.incarnation, self._epoch))
        # Only after the assignment: the idle loop drops anything earlier.
        self._flush_dead_letters(task)

    # ----------------------------------------------------------- termination
    def kill_thread(self, physical_id: str, reason: str = "killed") -> bool:
        with self._lock:
            task = self._tasks.get(physical_id)
            if task is None or not task.alive:
                return False
            task.status = "killed"
            self.router.unregister(physical_id)
            if reason == "killed":
                self.collector.increment("failures_injected")
            slot = getattr(task, "slot", None)
            logical = task.logical
        if slot is not None:
            if reason == "shutdown":
                # Ask the child to abandon the program and return to idle;
                # the slot itself is discarded at cleanup (it may comply
                # arbitrarily late, so it must not be reused).
                try:
                    slot.inbox.put(_SHUTDOWN)
                except Exception:  # pragma: no cover - queue already closed
                    pass
            else:
                # Fault injection / timeout: SIGKILL the slot for real.
                self._pool.discard(slot)
        if reason == "killed":
            for callback in self._death_callbacks:
                callback(physical_id, logical, reason)
        return True

    # --------------------------------------------------------------- cleanup
    def _cleanup(self) -> None:
        """Return slots to the pool instead of tearing processes down.

        Only slots whose program provably ended -- a ``finished`` report, or
        a ``crashed`` report from a program error the child caught (the
        child is back in its idle loop either way) -- are recycled.  A slot
        whose process died, or that was shut down mid-program and may still
        be executing, is discarded so the pool never hands out a slot with
        an old program attached.
        """
        with self._lock:
            tasks = list(self._tasks.values())
        for task in tasks:
            slot = getattr(task, "slot", None)
            if slot is None:
                continue
            if task.status in ("finished", "crashed") and slot.alive:
                self._pool.release(slot)
            else:
                self._pool.discard(slot)
        for cube in self._shared_cubes:
            cube.close()
        self._shared_cubes.clear()


__all__ = ["ProcessPool", "PooledProcessBackend", "default_start_method"]
