"""Process-parallel execution backend: real OS processes, wall-clock time.

This backend runs the *same* thread programs as the simulated and local
backends, but on genuine :class:`multiprocessing.Process` workers, one per
physical replica.  Unlike the thread-based :class:`~repro.scp.local_backend.
LocalBackend` -- which shares a single CPython interpreter and therefore a
single GIL -- every replica here owns an interpreter of its own, so compute
phases genuinely overlap on multi-core hosts and the measured wall-clock
speed-up is real rather than simulated.

Architecture
------------
The parent process is the *post office*: it owns the logical-to-physical
:class:`~repro.scp.group.Router` and a single ``outbox`` queue that every
child writes to.  A child never talks to another child directly; a
:class:`~repro.scp.effects.Send` becomes a pickled
:class:`~repro.scp.serialization.Envelope` on the outbox, the parent expands
the logical destination to the live replicas and deposits the envelope on
each replica's private ``inbox`` queue.  Inside the child the inbox feeds the
ordinary :class:`~repro.scp.channel.Mailbox`, so port filtering and duplicate
suppression behave exactly as on the other backends.

Bulk problem data is *not* pickled: thread parameters holding a
:class:`~repro.data.cube.HyperspectralCube` are transparently converted to
:class:`~repro.data.shared.SharedCube`, whose samples live in a shared-memory
segment that every process maps zero-copy.

Crash handling mirrors the local backend: a program exception is reported and
recorded as a ``"crashed"`` outcome (raised as
:class:`~repro.scp.errors.ThreadCrashedError` after the run under the default
crash policy), and a process that dies without reporting -- a hard kill, an
out-of-memory kill, a segfault -- is detected by the parent's liveness sweep.
Death notifications feed the same ``subscribe_thread_death`` /
``spawn_thread`` control interface the resiliency layer drives on the other
backends, so failed workers can be regenerated as fresh processes mid-run.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..cluster.metrics import MetricsCollector
from ..data.shared import share_cube_params
from ..logging_utils import get_logger
from .channel import Mailbox
from .effects import Checkpoint, Compute, GetTime, Probe, Recv, Send, Sleep
from .errors import (ReceiveTimeout, RuntimeStateError, SCPError,
                     ThreadCrashedError)
from .group import Router
from .runtime import Application, Backend, Context, RunResult, ThreadOutcome
from .serialization import Envelope
from .thread import ThreadSpec, physical_name

_LOG = get_logger("scp.process")

#: Sentinel deposited on a child's inbox to request an orderly exit.
_SHUTDOWN = "__scp_shutdown__"

#: Seconds a process may be dead without a terminal record before the parent
#: declares it crashed (gives the queue feeder time to flush a late report).
_DEATH_CONFIRM_SECONDS = 0.25

#: Spacing of the duplicate-suppression sequence ranges of successive
#: incarnations, so a regenerated replica's un-keyed messages are never
#: mistaken for its predecessor's.
_INCARNATION_SEQ_STRIDE = 1_000_000


class _ShutdownSignal(Exception):
    """Internal control flow: the parent asked this child to exit."""


# ---------------------------------------------------------------------------
# Child-process side
# ---------------------------------------------------------------------------

def _interpret_program(logical: str, replica: int, physical_id: str, node: str,
                       program: Callable, params: Dict[str, Any], restored: Any,
                       incarnation: int, inbox, outbox, epoch: float) -> None:
    """Interpret one thread program inside a worker process.

    Everything observable leaves through ``outbox`` as small tagged tuples:
    ``("send", pid, envelope)``, ``("phase", pid, node, name, seconds)``,
    ``("checkpoint", logical, state)``, ``("finished", pid, result, dups)``
    and ``("crashed", pid, message)``.

    Returns normally both when the program runs to completion and when the
    parent requests a shutdown mid-program, so a long-lived pool worker
    (:mod:`repro.scp.pool`) can call this in a loop, one program per run.
    """
    ctx = Context(name=logical, replica=replica, physical_id=physical_id,
                  node=node, params=dict(params), restored=restored,
                  incarnation=incarnation)
    mailbox = Mailbox(physical_id, dedup=True, thread_safe=False)
    send_seq = incarnation * _INCARNATION_SEQ_STRIDE

    def now() -> float:
        # Monotonic (RPL004): envelope timestamps are run-relative
        # *elapsed* time shared with the parent's epoch; the wall clock
        # would skew them under an NTP step mid-run.  CLOCK_MONOTONIC is
        # system-wide, so parent/child differences stay meaningful.
        return time.monotonic() - epoch

    def absorb(item: Any) -> None:
        if isinstance(item, str) and item == _SHUTDOWN:
            raise _ShutdownSignal()
        mailbox.deposit(item)

    def drain_nonblocking() -> None:
        while True:
            try:
                item = inbox.get_nowait()
            except queue_module.Empty:
                return
            absorb(item)

    def do_recv(effect: Recv):
        deadline = (None if effect.timeout is None
                    else time.monotonic() + effect.timeout)
        while True:
            envelope = mailbox.try_consume(effect.port)
            if envelope is not None:
                envelope.deliver_time = now()
                return envelope
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise ReceiveTimeout(physical_id, effect.port, effect.timeout or 0.0)
            wait = 0.5 if remaining is None else min(remaining, 0.5)
            try:
                item = inbox.get(timeout=wait)
            except queue_module.Empty:
                continue
            absorb(item)

    def execute(effect):
        nonlocal send_seq
        if isinstance(effect, Compute):
            start = time.perf_counter()
            result = effect.fn(*effect.args, **effect.kwargs)
            outbox.put(("phase", physical_id, node, effect.phase,
                        time.perf_counter() - start))
            return result
        if isinstance(effect, Send):
            send_seq += 1
            envelope = Envelope(src=logical, dst=effect.dst, port=effect.port,
                                payload=effect.payload, seq=send_seq,
                                key=effect.key, src_physical=physical_id,
                                urgent=effect.urgent, send_time=now())
            outbox.put(("send", physical_id, envelope))
            return None
        if isinstance(effect, Recv):
            return do_recv(effect)
        if isinstance(effect, Probe):
            drain_nonblocking()
            return mailbox.has_matching(effect.port)
        if isinstance(effect, Sleep):
            time.sleep(max(0.0, effect.seconds))
            return None
        if isinstance(effect, Checkpoint):
            outbox.put(("checkpoint", logical, effect.state))
            return None
        if isinstance(effect, GetTime):
            return now()
        raise SCPError(f"program yielded a non-effect object: {effect!r}")

    gen = program(ctx, **params)
    value: Any = None
    throw: Optional[BaseException] = None
    try:
        while True:
            try:
                if throw is not None:
                    exc, throw = throw, None
                    effect = gen.throw(exc)
                else:
                    effect = gen.send(value)
            except StopIteration as stop:
                outbox.put(("finished", physical_id, stop.value,
                            mailbox.suppressed_duplicates))
                return
            try:
                value = execute(effect)
            except _ShutdownSignal:
                raise
            except ReceiveTimeout as err:
                value, throw = None, err
    except _ShutdownSignal:
        return
    except ReceiveTimeout as err:
        outbox.put(("crashed", physical_id, f"uncaught ReceiveTimeout: {err}"))
    except Exception as err:  # noqa: BLE001 - program errors are reported
        outbox.put(("crashed", physical_id, repr(err)))


def _child_main(logical: str, replica: int, physical_id: str, node: str,
                program: Callable, params: Dict[str, Any], restored: Any,
                incarnation: int, inbox, outbox, epoch: float) -> None:
    """Entry point of a single-program worker process."""
    _interpret_program(logical, replica, physical_id, node, program, params,
                       restored, incarnation, inbox, outbox, epoch)


# ---------------------------------------------------------------------------
# Parent-process side
# ---------------------------------------------------------------------------

class _ProcessTask:
    """Parent-side record of one physical replica."""

    def __init__(self, spec: ThreadSpec, replica: int, physical_id: str,
                 incarnation: int) -> None:
        self.spec = spec
        self.logical = spec.name
        self.replica = replica
        self.physical_id = physical_id
        self.incarnation = incarnation
        self.daemon = spec.daemon
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.inbox = None
        self.restored: Any = None
        self.status = "ready"
        self.result: Any = None
        self.error: Optional[str] = None
        self.first_seen_dead: Optional[float] = None

    @property
    def alive(self) -> bool:
        return self.status in ("ready", "running")


class ProcessBackend(Backend):
    """Multi-process execution backend with shared-memory data placement."""

    kind = "process"

    def __init__(self, *, crash_policy: str = "raise",
                 default_timeout: Optional[float] = 300.0,
                 start_method: str = "spawn",
                 shutdown_grace: float = 5.0) -> None:
        """Create a process backend.

        Parameters
        ----------
        crash_policy:
            ``"raise"`` re-raises the first program crash as
            :class:`ThreadCrashedError` after the run; ``"record"`` only
            records it in the outcomes.
        default_timeout:
            Wall-clock safety limit (seconds) applied to :meth:`run` unless
            overridden; prevents a wedged run from hanging forever.
        start_method:
            ``multiprocessing`` start method.  ``"spawn"`` (default) is
            portable and immune to fork-with-threads hazards; ``"fork"``
            starts faster on Linux.
        shutdown_grace:
            Seconds stragglers are given to exit on their own once the
            ``until_thread`` has finished, before being shut down.
        """
        if crash_policy not in ("raise", "record"):
            raise ValueError("crash_policy must be 'raise' or 'record'")
        self.crash_policy = crash_policy
        self.default_timeout = default_timeout
        self.start_method = start_method
        self.shutdown_grace = shutdown_grace
        self.router = Router()
        self.collector = MetricsCollector()
        self._mp = multiprocessing.get_context(start_method)
        self._tasks: Dict[str, _ProcessTask] = {}
        self._lock = threading.RLock()
        self._dead_letters: Dict[str, List[Envelope]] = {}
        self._death_callbacks: List[Callable[[str, str, str], None]] = []
        self._checkpoints: Dict[str, Any] = {}
        self._shared_params: Dict[str, Dict[str, Any]] = {}
        self._shared_cubes: List[Any] = []
        self._outbox = None
        self._messages = 0
        self._bytes = 0
        self._epoch = 0.0
        self._start_time = 0.0
        self._app: Optional[Application] = None
        self._ran = False

    # --------------------------------------------------------------- queries
    @property
    def now(self) -> float:
        """Seconds since the run started (wall clock)."""
        return time.perf_counter() - self._start_time if self._start_time else 0.0

    def live_replicas(self, logical: str) -> List[str]:
        with self._lock:
            return [pid for pid in self.router.physical_targets(logical)
                    if pid in self._tasks and self._tasks[pid].alive]

    def checkpoint_of(self, logical: str) -> Any:
        with self._lock:
            return self._checkpoints.get(logical)

    def subscribe_thread_death(self, callback: Callable[[str, str, str], None]) -> None:
        self._death_callbacks.append(callback)

    # ------------------------------------------------------------------- run
    def run(self, app: Application, *, timeout: Optional[float] = None,
            until_thread: Optional[str] = None) -> RunResult:
        """Run ``app`` on real processes.

        ``until_thread`` names a logical thread whose completion ends the run
        (stragglers get ``shutdown_grace`` seconds to drain, then are shut
        down), exactly as on the local backend.
        """
        if self._ran:
            raise RuntimeStateError("ProcessBackend instances are single use; create a new one")
        self._ran = True
        app.validate()
        self._app = app
        timeout = timeout if timeout is not None else self.default_timeout
        self._outbox = self._make_outbox()
        self._epoch = time.monotonic()  # run-relative timestamps (RPL004)
        self._start_time = time.perf_counter()

        try:
            with self._lock:
                tasks = [self._create_task(spec, replica, restored=None, incarnation=0)
                         for spec in app.specs
                         for replica in range(spec.replicas)]
            for task in tasks:
                self._start_task(task)
            deadline = (time.perf_counter() + timeout) if timeout is not None else None
            self._event_loop(until_thread, deadline)
            elapsed = time.perf_counter() - self._start_time
            return self._build_result(elapsed)
        finally:
            self._cleanup()

    # ------------------------------------------------------------ event loop
    def _event_loop(self, until_thread: Optional[str], deadline: Optional[float]) -> None:
        while True:
            self._pump(0.02)
            self._sweep_dead_processes()
            with self._lock:
                if until_thread is not None:
                    group = [t for t in self._tasks.values() if t.logical == until_thread]
                    done = any(t.status == "finished" for t in group)
                    if done or all(not t.alive for t in group):
                        break
                else:
                    if not any(t.alive for t in self._tasks.values() if not t.daemon):
                        break
            if deadline is not None and time.perf_counter() > deadline:
                with self._lock:
                    stuck = [t.physical_id for t in self._tasks.values() if t.alive]
                for pid in stuck:
                    self.kill_thread(pid, reason="timeout")
                raise SCPError(f"process run timed out; still alive: {stuck}")
        self._drain_stragglers(until_thread, deadline)

    def _drain_stragglers(self, until_thread: Optional[str],
                          deadline: Optional[float]) -> None:
        """Give remaining processes a grace period, then shut them down."""
        grace_end = time.perf_counter() + self.shutdown_grace
        while True:
            self._pump(0.02)
            self._sweep_dead_processes()
            with self._lock:
                pending = [t for t in self._tasks.values() if t.alive and not t.daemon
                           and t.logical != until_thread]
            if not pending:
                break
            now = time.perf_counter()
            if now > grace_end or (deadline is not None and now > deadline):
                for task in pending:
                    self.kill_thread(task.physical_id, reason="shutdown")
                break
        with self._lock:
            leftovers = [t for t in self._tasks.values() if t.alive]
        for task in leftovers:
            self.kill_thread(task.physical_id, reason="shutdown")
        # Collect any last reports (a worker may have finished during the
        # sweep above) without blocking on an empty queue.
        for _ in range(50):
            if not self._pump(0.0):
                break

    def _pump(self, block_seconds: float) -> int:
        """Process queued child records; returns how many were handled."""
        handled = 0
        block = block_seconds > 0
        while True:
            try:
                record = (self._outbox.get(timeout=block_seconds) if block
                          else self._outbox.get_nowait())
            except queue_module.Empty:
                return handled
            block = False  # only the first get may block
            self._handle_record(record)
            handled += 1

    def _handle_record(self, record: tuple) -> None:
        tag = record[0]
        if tag == "send":
            envelope = record[2]
            self._route(envelope)
        elif tag == "phase":
            _, pid, node, phase, seconds = record
            with self._lock:
                self.collector.add_phase(phase, seconds)
                self.collector.add_node_busy(node, seconds)
        elif tag == "checkpoint":
            _, logical, state = record
            with self._lock:
                self._checkpoints[logical] = state
        elif tag == "finished":
            _, pid, result, suppressed = record
            with self._lock:
                task = self._tasks.get(pid)
                if task is None or not task.alive:
                    return
                task.status = "finished"
                task.result = result
                self.router.unregister(pid)
                if suppressed:
                    self.collector.increment("duplicates_suppressed", suppressed)
        elif tag == "crashed":
            _, pid, message = record
            self._crash(pid, message)
        else:  # pragma: no cover - protocol bug
            _LOG.warning("unknown child record %r", record)

    def _route(self, envelope: Envelope) -> None:
        with self._lock:
            targets = [pid for pid in self.router.physical_targets(envelope.dst)
                       if pid in self._tasks and self._tasks[pid].alive]
            if not targets:
                self._dead_letters.setdefault(envelope.dst, []).append(envelope)
                self.collector.increment("dead_lettered")
                return
            self._messages += len(targets)
            self._bytes += envelope.nbytes * len(targets)
            inboxes = [self._tasks[pid].inbox for pid in targets]
        for inbox in inboxes:
            inbox.put(envelope)

    def _sweep_dead_processes(self) -> None:
        """Detect replicas whose process died without a terminal report."""
        now = time.perf_counter()
        suspicious: List[str] = []
        with self._lock:
            for task in self._tasks.values():
                if task.status != "running" or task.process is None:
                    continue
                if task.process.exitcode is None:
                    task.first_seen_dead = None
                    continue
                if task.first_seen_dead is None:
                    task.first_seen_dead = now
                elif now - task.first_seen_dead >= _DEATH_CONFIRM_SECONDS:
                    suspicious.append(task.physical_id)
        for pid in suspicious:
            with self._lock:
                task = self._tasks.get(pid)
                exitcode = task.process.exitcode if task and task.process else None
                # A report may have been handled between the sweep and now.
                if task is None or task.status != "running":
                    continue
            self._crash(pid, f"process died without reporting (exit code {exitcode})")

    # --------------------------------------------------------- task plumbing
    def _make_outbox(self):
        """Create the queue children report through (one per run here; the
        pooled backend reuses its pool's long-lived outbox instead)."""
        return self._mp.Queue()

    def _create_task(self, spec: ThreadSpec, replica: int, *, restored: Any,
                     incarnation: int) -> _ProcessTask:
        pid = physical_name(spec.name, replica)
        if pid in self._tasks and self._tasks[pid].alive:
            raise RuntimeStateError(f"physical thread {pid!r} already exists and is alive")
        if spec.name not in self._shared_params:
            params, created = share_cube_params(spec.params)
            self._shared_params[spec.name] = params
            self._shared_cubes.extend(created)
        task = _ProcessTask(spec, replica, pid, incarnation)
        self._provision_task(task, restored)
        self._tasks[pid] = task
        self.router.register(spec.name, pid)
        return task

    def _flush_dead_letters(self, task: _ProcessTask) -> None:
        """Replay buffered envelopes for the task's logical thread.

        Called by :meth:`_start_task` *after* the program is attached to its
        execution vehicle: a pool slot's idle loop discards anything that
        arrives before its assignment, so the order matters there.
        """
        for envelope in self._dead_letters.pop(task.logical, []):
            task.inbox.put(envelope)

    def _provision_task(self, task: _ProcessTask, restored: Any) -> None:
        """Attach an inbox and an execution vehicle (a fresh process here,
        a borrowed pool slot in the pooled subclass) to ``task``."""
        task.restored = restored
        task.inbox = self._mp.Queue()
        task.process = self._mp.Process(
            target=_child_main,
            args=(task.logical, task.replica, task.physical_id, task.physical_id,
                  task.spec.program, self._shared_params[task.logical], restored,
                  task.incarnation, task.inbox, self._outbox, self._epoch),
            name=task.physical_id, daemon=True)

    def _start_task(self, task: _ProcessTask) -> None:
        task.status = "running"
        task.process.start()
        self._flush_dead_letters(task)

    # ----------------------------------------------------------- termination
    def _crash(self, pid: str, message: str) -> None:
        with self._lock:
            task = self._tasks.get(pid)
            if task is None or not task.alive:
                return
            task.status = "crashed"
            task.error = message
            self.router.unregister(pid)
            self.collector.increment("crashes")
            logical = task.logical
        _LOG.warning("process %s crashed: %s", pid, message)
        for callback in self._death_callbacks:
            callback(pid, logical, "crashed")

    # --------------------------------------------------- resiliency controls
    def kill_thread(self, physical_id: str, reason: str = "killed") -> bool:
        """Forcefully terminate a replica's process (fault injection)."""
        with self._lock:
            task = self._tasks.get(physical_id)
            if task is None or not task.alive:
                return False
            task.status = "killed"
            self.router.unregister(physical_id)
            if reason == "killed":
                self.collector.increment("failures_injected")
            process = task.process
            logical = task.logical
        if process is not None and process.is_alive():
            if reason == "killed":
                process.kill()  # SIGKILL: indistinguishable from a real crash
            else:
                try:
                    task.inbox.put(_SHUTDOWN)
                except Exception:  # pragma: no cover - queue already closed
                    pass
                process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
        if reason == "killed":
            for callback in self._death_callbacks:
                callback(physical_id, logical, reason)
        return True

    def spawn_thread(self, spec: ThreadSpec, *, replica: int, node: Optional[str] = None,
                     restored: Any = None, incarnation: int = 1) -> str:
        """Regenerate a replica as a brand-new process while the run goes on."""
        with self._lock:
            task = self._create_task(spec, replica, restored=restored,
                                     incarnation=incarnation)
            self.collector.increment("replicas_regenerated")
        self._start_task(task)
        return task.physical_id

    # ---------------------------------------------------------------- result
    def _build_result(self, elapsed: float) -> RunResult:
        returns: Dict[str, Any] = {}
        outcomes: Dict[str, ThreadOutcome] = {}
        first_crash: Optional[tuple] = None
        with self._lock:
            for pid, task in self._tasks.items():
                outcomes[pid] = ThreadOutcome(physical_id=pid, logical=task.logical,
                                              replica=task.replica, status=task.status,
                                              result=task.result, error=task.error)
                if task.status == "finished" and task.logical not in returns:
                    returns[task.logical] = task.result
                if task.status == "crashed" and first_crash is None:
                    first_crash = (pid, task.error)
            workers = sum(1 for s in (self._app.specs if self._app else [])
                          if s.name.startswith("worker"))
            replication = max((s.replicas for s in (self._app.specs if self._app else [])),
                              default=1)
            metrics = self.collector.finalise(
                elapsed_seconds=elapsed, backend=self.kind,
                workers=max(workers, 1), subcubes=0, replication_level=replication,
                messages=self._messages, bytes_sent=self._bytes)
        if first_crash is not None and self.crash_policy == "raise":
            raise ThreadCrashedError(first_crash[0], f"{first_crash[0]}: {first_crash[1]}")
        return RunResult(returns=returns, outcomes=outcomes, metrics=metrics,
                         elapsed_seconds=elapsed)

    # --------------------------------------------------------------- cleanup
    def _cleanup(self) -> None:
        with self._lock:
            tasks = list(self._tasks.values())
        for task in tasks:
            process = task.process
            if process is None:
                continue
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        for task in tasks:
            if task.inbox is not None:
                task.inbox.cancel_join_thread()
                task.inbox.close()
        if self._outbox is not None:
            self._outbox.cancel_join_thread()
            self._outbox.close()
        for cube in self._shared_cubes:
            cube.close()
        self._shared_cubes.clear()


__all__ = ["ProcessBackend"]
