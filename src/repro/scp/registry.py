"""Backend registry: named execution backends with spec parsing.

Historically every caller that wanted an execution backend went through its
own ``if backend == "sim": ... elif backend == "local": ...`` ladder
(`DistributedPCT.make_backend`, `ResilientPCT.make_backend`, the CLI).  This
module replaces that string dispatch with a single registry:

* :func:`register_backend` -- decorator adding a named backend factory,
* :class:`BackendSpec` -- parsed form of a spec string such as
  ``"process"``, ``"process:8"``, ``"process:fork"`` or ``"sim:sun-ultra"``,
* :class:`BackendContext` -- run-scoped information a factory may need
  (worker count, explicit cluster model, protocol cost model, manager name),
* :func:`create_backend` -- spec + context -> :class:`~repro.scp.runtime.
  Backend` instance.

Spec grammar
------------
``<name>[:<token>...]`` where each colon-separated token is either an
integer (a *worker-count hint*, e.g. ``"process:8"``; picked up by callers
such as :func:`repro.fuse` to size the partition) or a *variant* keyword:

=========  =======================================  =====================
backend    variants                                 meaning
=========  =======================================  =====================
sim        sun-ultra (default), switched, smp       simulated cluster preset
local      --                                       host threads (GIL-bound)
process    spawn (default), fork, forkserver        multiprocessing start method
socket     --                                       node-agent workers over TCP
                                                    (pipeline engine only)
=========  =======================================  =====================

Unknown backend names and variants raise :class:`ValueError` messages that
list what *is* registered, so a typo is a one-line fix rather than a dig
through the source.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..cluster.machine import Cluster
from ..cluster.presets import shared_memory_smp, sun_ultra_lan, switched_lan
from .local_backend import LocalBackend
from .process_backend import ProcessBackend
from .runtime import Backend
from .sim_backend import ProtocolConfig, SimBackend

#: Simulated-cluster presets addressable as ``"sim:<variant>"``.
SIM_PRESETS: Dict[str, Callable[[int], Cluster]] = {
    "sun-ultra": sun_ultra_lan,
    "switched": switched_lan,
    "smp": shared_memory_smp,
}


@dataclass
class BackendContext:
    """Run-scoped inputs a backend factory may consult.

    The context is deliberately mutable: the ``sim`` factory writes the
    cluster it resolved (preset sized to the worker count) back into
    ``cluster`` so the caller -- e.g. the resilient engine, which needs the
    cluster model for placement and camouflage -- can read it afterwards.
    """

    #: Worker-thread count of the run (sizes simulated cluster presets).
    workers: int = 4
    #: Explicit cluster model; when ``None`` the sim factory resolves a preset.
    cluster: Optional[Cluster] = None
    #: Resiliency protocol cost model charged by the simulated backend.
    protocol: Optional[ProtocolConfig] = None
    #: Whether replica results may be shared instead of recomputed (sim).
    share_replica_results: bool = True
    #: Logical name of the manager thread, pinned to the ``"manager"`` node
    #: when the resolved cluster has one.
    manager: Optional[str] = None


#: A backend factory builds a Backend from a parsed spec and a context.
BackendFactory = Callable[["BackendSpec", BackendContext], Backend]


@dataclass(frozen=True)
class _BackendEntry:
    name: str
    factory: BackendFactory
    #: Allowed variant keywords; ``None`` means any, ``()`` means none.
    variants: Optional[Tuple[str, ...]]
    description: str


_BACKENDS: Dict[str, _BackendEntry] = {}


def register_backend(name: str, *, variants: Optional[Tuple[str, ...]] = (),
                     description: str = "") -> Callable[[BackendFactory], BackendFactory]:
    """Register ``factory`` under ``name`` (decorator).

    ``variants`` lists the keywords accepted after the colon in a spec
    string; the empty tuple (default) rejects any variant and ``None``
    accepts all.
    """
    def decorator(factory: BackendFactory) -> BackendFactory:
        if name in _BACKENDS:
            raise ValueError(f"backend {name!r} is already registered")
        _BACKENDS[name] = _BackendEntry(name=name, factory=factory,
                                        variants=variants, description=description)
        return factory
    return decorator


def backend_names() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_BACKENDS)


def describe_backends() -> Dict[str, str]:
    """``name -> one-line description`` for help text and docs."""
    return {name: _BACKENDS[name].description for name in backend_names()}


def _unknown_backend(name: str) -> ValueError:
    return ValueError(f"unknown backend {name!r}; registered backends: "
                      f"{', '.join(backend_names())}")


@dataclass(frozen=True)
class BackendSpec:
    """Parsed form of a backend spec string.

    Attributes
    ----------
    name:
        Registered backend name (``"sim"``, ``"local"``, ``"process"``, ...).
    variant:
        Optional variant keyword (simulated-cluster preset, process start
        method); ``None`` selects the backend's default.
    workers:
        Optional worker-count hint from an integer token (``"process:8"``).
        The registry itself never sizes thread counts; the hint is consumed
        by higher layers (:func:`repro.fuse` partition sizing).
    """

    name: str
    variant: Optional[str] = None
    workers: Optional[int] = None

    @classmethod
    def parse(cls, spec: Union[str, "BackendSpec"]) -> "BackendSpec":
        """Parse ``"name[:token...]"`` into a validated :class:`BackendSpec`."""
        if isinstance(spec, BackendSpec):
            if spec.name not in _BACKENDS:
                raise _unknown_backend(spec.name)
            return spec
        if not isinstance(spec, str) or not spec.strip():
            raise ValueError(f"backend spec must be a non-empty string or BackendSpec, "
                             f"got {spec!r}; registered backends: "
                             f"{', '.join(backend_names())}")
        tokens = [token.strip() for token in spec.split(":")]
        name = tokens[0]
        entry = _BACKENDS.get(name)
        if entry is None:
            raise _unknown_backend(name)
        variant: Optional[str] = None
        workers: Optional[int] = None
        for token in tokens[1:]:
            if not token:
                # An empty or whitespace-only token is a malformed spec, not
                # a separator to skip: "process::8" is most likely a typo'd
                # variant, and silently ignoring it would accept it.
                raise ValueError(
                    f"backend spec {spec!r} contains an empty token; write "
                    f"'name[:variant][:workers]' without empty segments")
            if token.isdigit():
                if workers is not None:
                    raise ValueError(f"backend spec {spec!r} gives two worker counts")
                workers = int(token)
                if workers < 1:
                    raise ValueError(f"backend spec {spec!r}: worker count must be >= 1")
            else:
                if variant is not None:
                    raise ValueError(f"backend spec {spec!r} gives two variants")
                variant = token
        if variant is not None and entry.variants is not None:
            if variant not in entry.variants:
                allowed = ", ".join(entry.variants) if entry.variants else "none"
                raise ValueError(f"backend {name!r} has no variant {variant!r}; "
                                 f"allowed variants: {allowed}")
        return cls(name=name, variant=variant, workers=workers)

    def __str__(self) -> str:
        tokens = [self.name]
        if self.variant is not None:
            tokens.append(self.variant)
        if self.workers is not None:
            tokens.append(str(self.workers))
        return ":".join(tokens)


def create_backend(spec: Union[str, BackendSpec, Backend],
                   context: Optional[BackendContext] = None) -> Backend:
    """Build a :class:`Backend` from ``spec``.

    Already-constructed :class:`Backend` instances pass through unchanged,
    so call sites can accept "spec or instance" uniformly.
    """
    if isinstance(spec, Backend):
        return spec
    parsed = BackendSpec.parse(spec)
    context = context if context is not None else BackendContext()
    return _BACKENDS[parsed.name].factory(parsed, context)


# ---------------------------------------------------------------------------
# Built-in backends
# ---------------------------------------------------------------------------

@register_backend("sim", variants=tuple(SIM_PRESETS),
                  description="discrete-event simulated cluster (virtual time); "
                              "variants: " + ", ".join(SIM_PRESETS))
def _make_sim_backend(spec: BackendSpec, context: BackendContext) -> SimBackend:
    if context.cluster is None:
        preset = SIM_PRESETS[spec.variant or "sun-ultra"]
        context.cluster = preset(max(spec.workers or context.workers, 1))
    pinned = ({context.manager: "manager"}
              if context.manager and "manager" in context.cluster.node_names else None)
    return SimBackend(context.cluster, pinned=pinned, protocol=context.protocol,
                      share_replica_results=context.share_replica_results)


@register_backend("local", variants=(),
                  description="real host threads (genuine concurrency, GIL-bound compute)")
def _make_local_backend(spec: BackendSpec, context: BackendContext) -> LocalBackend:
    return LocalBackend()


@register_backend("process", variants=("spawn", "fork", "forkserver"),
                  description="real OS processes with shared-memory cube placement; "
                              "variants: spawn, fork, forkserver")
def _make_process_backend(spec: BackendSpec, context: BackendContext) -> ProcessBackend:
    method = spec.variant or "spawn"
    if method not in multiprocessing.get_all_start_methods():
        raise ValueError(f"start method {method!r} is not available on this platform; "
                         f"available: {', '.join(multiprocessing.get_all_start_methods())}")
    return ProcessBackend(start_method=method)


@register_backend("socket", variants=(),
                  description="localhost node-agent worker processes over TCP "
                              "(streaming pipeline engine only); the stepping "
                              "stone toward multi-host cluster specs")
def _make_socket_backend(spec: BackendSpec, context: BackendContext) -> Backend:
    # The socket transport provides *stage-task* workers, not an SCP program
    # runtime: there is no mailbox routing for manager/worker generator
    # programs behind it.  The pipeline engine resolves "socket:N" itself
    # (repro.core.streaming.make_stage_executor); a batch engine asking the
    # registry for it is a configuration error worth a precise message.
    raise ValueError(
        "backend 'socket' provides stage-task workers for the streaming "
        "pipeline engine only and has no SCP program runtime; use "
        "engine='pipeline' (e.g. backend='socket:4'), or pick 'sim', "
        "'local' or 'process' for the batch engines")


__all__ = [
    "SIM_PRESETS",
    "BackendContext",
    "BackendSpec",
    "backend_names",
    "create_backend",
    "describe_backends",
    "register_backend",
]
