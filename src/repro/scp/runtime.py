"""Backend-independent runtime facade.

This module defines the objects shared by the local and simulated backends:

* :class:`Context` -- what a thread program sees (its identity, parameters
  and any state restored after regeneration),
* :class:`Application` -- the declarative bundle of thread specifications and
  the communication structure,
* :class:`RunResult` -- return values, per-thread outcomes and run metrics,
* :class:`Backend` -- the abstract execution interface, and
* :func:`plan_placement` -- the default round-robin placement of replicas on
  compute nodes, which mirrors the paper's testbed where replication level 2
  puts two worker processes on every workstation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..cluster.metrics import RunMetrics
from .errors import PlacementError, RuntimeStateError
from .thread import ThreadSpec, physical_name
from .topology import CommunicationStructure


@dataclass
class Context:
    """Identity and environment handed to a thread program.

    Attributes
    ----------
    name:
        Logical thread name (shared by all replicas).
    replica:
        Replica index of this physical thread (0 for the primary copy).
    physical_id:
        ``"<name>#<replica>"``.
    node:
        Name of the node hosting this replica (informational).
    params:
        The keyword parameters declared in the :class:`ThreadSpec`.
    restored:
        The most recent :class:`~repro.scp.effects.Checkpoint` state of the
        replica group, or ``None`` for a fresh start.  Regenerated replicas
        use this to resume instead of recomputing from scratch.
    incarnation:
        0 for initially spawned replicas, incremented on every regeneration.
    """

    name: str
    replica: int
    physical_id: str
    node: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    restored: Any = None
    incarnation: int = 0


@dataclass
class ThreadOutcome:
    """Terminal state of one physical thread."""

    physical_id: str
    logical: str
    replica: int
    status: str  # "finished" | "crashed" | "killed" | "running"
    result: Any = None
    error: Optional[str] = None


@dataclass
class RunResult:
    """Everything returned by a backend run."""

    #: Logical thread name -> return value of the first replica to finish.
    returns: Dict[str, Any] = field(default_factory=dict)
    #: Per-physical-thread outcomes, including crashed and killed replicas.
    outcomes: Dict[str, ThreadOutcome] = field(default_factory=dict)
    #: Aggregated run metrics (elapsed time, traffic, phases, resiliency).
    metrics: RunMetrics = field(default_factory=RunMetrics)
    #: Elapsed seconds (virtual for the simulated backend, wall-clock locally).
    elapsed_seconds: float = 0.0

    def return_of(self, logical: str) -> Any:
        if logical not in self.returns:
            raise KeyError(f"no finished replica of {logical!r}; outcomes: "
                           f"{sorted(self.outcomes)}")
        return self.returns[logical]

    def crashed_threads(self) -> List[str]:
        return sorted(pid for pid, o in self.outcomes.items() if o.status == "crashed")

    def killed_threads(self) -> List[str]:
        return sorted(pid for pid, o in self.outcomes.items() if o.status == "killed")


class Application:
    """A set of thread specifications plus their communication structure."""

    def __init__(self, structure: Optional[CommunicationStructure] = None,
                 *, enforce_structure: bool = False, name: str = "app") -> None:
        self.name = name
        self.structure = structure if structure is not None else CommunicationStructure()
        #: When True, sends along undeclared channels raise inside the program.
        self.enforce_structure = enforce_structure
        self._specs: Dict[str, ThreadSpec] = {}

    # ----------------------------------------------------------------- specs
    def add(self, spec: ThreadSpec) -> ThreadSpec:
        if spec.name in self._specs:
            raise RuntimeStateError(f"thread {spec.name!r} declared twice")
        self._specs[spec.name] = spec
        if not self.structure.has_thread(spec.name):
            self.structure.add_thread(spec.name)
        return spec

    def add_thread(self, name: str, program, *, replicas: int = 1, params: Optional[dict] = None,
                   placement: Optional[Sequence[str]] = None, memory_bytes: int = 0,
                   critical: bool = True, daemon: bool = False) -> ThreadSpec:
        """Convenience wrapper building and registering a :class:`ThreadSpec`."""
        spec = ThreadSpec(name=name, program=program, params=dict(params or {}),
                          replicas=replicas, placement=placement,
                          memory_bytes=memory_bytes, critical=critical, daemon=daemon)
        return self.add(spec)

    @property
    def specs(self) -> List[ThreadSpec]:
        return list(self._specs.values())

    def spec(self, name: str) -> ThreadSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise RuntimeStateError(f"unknown thread {name!r}") from None

    def logical_names(self) -> List[str]:
        return list(self._specs)

    def connect(self, src: str, dst: str, port: str, *, bidirectional: bool = False) -> None:
        self.structure.connect(src, dst, port, bidirectional=bidirectional)

    def validate(self) -> None:
        self.structure.validate()
        if not self._specs:
            raise RuntimeStateError("application declares no threads")


def plan_placement(specs: Iterable[ThreadSpec], worker_nodes: Sequence[str],
                   *, pinned: Optional[Mapping[str, str]] = None) -> Dict[str, str]:
    """Assign every physical replica to a node.

    The default strategy reproduces the paper's experiment: replica 0 of the
    i-th critical thread goes to worker node ``i mod N`` and replica ``r`` is
    shifted by ``r`` positions, so at replication level 2 every node hosts two
    replicas (of different logical threads) and compute per node doubles.

    Parameters
    ----------
    specs:
        Thread specifications to place.
    worker_nodes:
        Ordered list of candidate node names.
    pinned:
        Optional explicit ``logical name -> node`` pinning (e.g. the manager
        on the ``"manager"`` node).

    Returns
    -------
    dict
        ``physical_id -> node name``.
    """
    worker_nodes = list(worker_nodes)
    if not worker_nodes:
        raise PlacementError("no worker nodes available for placement")
    pinned = dict(pinned or {})
    placement: Dict[str, str] = {}
    critical_index = 0
    for spec in specs:
        explicit = list(spec.placement) if spec.placement is not None else None
        for replica in range(spec.replicas):
            pid = physical_name(spec.name, replica)
            if explicit is not None:
                placement[pid] = explicit[replica]
            elif spec.name in pinned:
                placement[pid] = pinned[spec.name]
            else:
                index = (critical_index + replica) % len(worker_nodes)
                placement[pid] = worker_nodes[index]
        if spec.placement is None and spec.name not in pinned:
            critical_index += 1
    return placement


class Backend(abc.ABC):
    """Abstract execution backend."""

    #: Human-readable backend kind recorded in run metrics.
    kind: str = "abstract"

    @classmethod
    def from_spec(cls, spec: Any, context: Any = None) -> "Backend":
        """Build a backend from a registry spec such as ``"process:8"``.

        Delegates to :func:`repro.scp.registry.create_backend`; see that
        module for the spec grammar and the registered names.  ``context``
        is an optional :class:`~repro.scp.registry.BackendContext`.
        """
        from .registry import create_backend

        return create_backend(spec, context)

    @abc.abstractmethod
    def run(self, app: Application, **kwargs: Any) -> RunResult:
        """Execute ``app`` to completion and return its result."""

    # Control interface used by the resiliency layer ------------------------
    def spawn_thread(self, spec: ThreadSpec, *, replica: int, node: Optional[str] = None,
                     restored: Any = None, incarnation: int = 1) -> str:
        """Create an additional physical replica while a run is in progress."""
        raise NotImplementedError(f"{type(self).__name__} does not support dynamic spawning")

    def kill_thread(self, physical_id: str) -> bool:
        """Forcefully terminate a physical replica (fault injection)."""
        raise NotImplementedError(f"{type(self).__name__} does not support kill_thread")


__all__ = [
    "Context",
    "ThreadOutcome",
    "RunResult",
    "Application",
    "Backend",
    "plan_placement",
]
