"""Message envelopes, payload size accounting, and spool-file commits.

The cost model of the simulated backend needs to know how many bytes a
message occupies on the wire.  Rather than actually pickling every payload
(which would dominate the runtime of large simulations), :func:`payload_nbytes`
walks the payload structure and sums the sizes of NumPy arrays, byte strings
and scalars, falling back to :mod:`pickle` only for unknown object graphs.
The estimate errs on the side of the dominant contributors -- the sub-cube
arrays exchanged between manager and workers -- which is what matters for the
shape of Figures 4 and 5.

This module also owns the *atomic spool commit* -- the one way a result
ever crosses a process boundary on the crash-safe paths
(:mod:`repro.scp.transport`): write the payload next to its final name,
then :func:`os.rename` into place.  A SIGKILL either commits a complete
file or leaves nothing; readers never observe a torn write.  Every
transport reuses :func:`commit_spool_file` rather than growing its own
rename-commit implementation.
"""

from __future__ import annotations

import os
import pickle
import sys
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

#: Fixed envelope overhead in bytes: logical addresses, port name, sequence
#: number, flags.  Matches the order of magnitude of an SCPlib/TCP header.
ENVELOPE_OVERHEAD_BYTES = 96

#: Spool-file suffixes a finished stage task commits (atomic rename) and
#: the transports scan for.
RESULT_SUFFIX = ".result"
ERROR_SUFFIX = ".error"


def spool_root() -> Optional[str]:
    """RAM-backed directory for result spool files where the OS has one."""
    return "/dev/shm" if os.path.isdir("/dev/shm") else None


def unlink_quietly(path: str) -> None:
    """Remove ``path`` if it exists; a concurrent unlink is not an error."""
    try:
        os.unlink(path)
    except OSError:
        pass


def commit_spool_file(spool_dir: str, name: str, payload: bytes) -> None:
    """Write ``payload`` and atomically rename into place (the commit).

    The partial file lives in the same directory as its final name so the
    rename never crosses a filesystem boundary (``os.rename`` is only
    atomic within one).  Used by every worker transport: a process killed
    mid-write leaves only the ``.tmp``, which scanners ignore.
    """
    final = os.path.join(spool_dir, name)
    partial = final + ".tmp"
    with open(partial, "wb") as fh:
        fh.write(payload)
    os.rename(partial, final)


def payload_nbytes(payload: Any) -> int:
    """Estimate the serialised size of ``payload`` in bytes.

    NumPy arrays contribute their buffer size, containers are walked
    recursively, strings/bytes contribute their encoded length, numbers a
    fixed 8 bytes.  Objects exposing a ``nbytes_estimate()`` method (such as
    :class:`repro.data.cube.HyperspectralCube`) are asked directly.  Anything
    else is pickled as a last resort.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (bool, int, float, complex, np.generic)):
        return 8
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 16 + sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return 16 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    estimator = getattr(payload, "nbytes_estimate", None)
    if callable(estimator):
        return int(estimator())
    # Dataclass-like objects: walk their __dict__ before resorting to pickle.
    obj_dict = getattr(payload, "__dict__", None)
    if obj_dict:
        return 32 + sum(payload_nbytes(v) for v in obj_dict.values())
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return sys.getsizeof(payload)


@dataclass
class Envelope:
    """A message in flight between two logical threads.

    Attributes
    ----------
    src / src_physical:
        Logical sender name (``"worker.3"``) and the physical replica that
        actually emitted the message (``"worker.3#1"``).
    dst / port:
        Logical destination and named port.
    payload:
        Application payload.
    seq:
        Per-sender send sequence number, assigned by the sending context.
    key:
        Duplicate-suppression key; ``None`` falls back to ``seq``.
    urgent:
        Control traffic flag (heartbeats, acknowledgements).
    send_time / deliver_time:
        Timestamps filled in by the backend (virtual or wall-clock seconds).
    """

    src: str
    dst: str
    port: str
    payload: Any = None
    seq: int = 0
    key: Optional[Tuple[Any, ...]] = None
    src_physical: str = ""
    urgent: bool = False
    send_time: float = 0.0
    deliver_time: float = 0.0

    @property
    def dedup_key(self) -> Tuple[Any, ...]:
        """Key under which receivers suppress replicated duplicates."""
        if self.key is not None:
            return (self.src, self.port) + tuple(self.key)
        return (self.src, self.port, self.seq)

    @property
    def nbytes(self) -> int:
        """Estimated wire size of the envelope including headers."""
        return ENVELOPE_OVERHEAD_BYTES + payload_nbytes(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Envelope {self.src}->{self.dst}:{self.port} seq={self.seq} "
                f"bytes={self.nbytes}>")


__all__ = [
    "ENVELOPE_OVERHEAD_BYTES",
    "ERROR_SUFFIX",
    "Envelope",
    "RESULT_SUFFIX",
    "commit_spool_file",
    "payload_nbytes",
    "spool_root",
    "unlink_quietly",
]
