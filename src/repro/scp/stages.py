"""Stage-task execution on borrowed pool slots: the streaming engine's motor.

The SCP backends run *programs* -- long-lived effectful generators wired
into a manager/worker application.  The streaming pipeline engine
(:mod:`repro.core.streaming`) needs something much smaller: fire thousands
of short, pure *stage tasks* (screen this tile, accumulate this covariance
partial, colour-map that tile) at a bounded set of worker processes and
collect their results as futures, with several independent fusions in
flight at once.

This module provides that layer:

* a tiny child-side task protocol (:func:`try_run_stage`) the pool's idle
  loop understands alongside program assignments, so stage tasks execute on
  the very same long-lived :class:`~repro.scp.pool.ProcessPool` slots the
  session backends borrow;
* :class:`PoolStageExecutor` -- the parent-side dispatcher: it borrows a
  slot per task, routes the pool's shared outbox back to per-task futures,
  sweeps for slots that died mid-task (SIGKILL, OOM) and transparently
  re-dispatches the task on a fresh slot, and enforces *backpressure*: at
  most ``workers`` tasks are in flight and further ``submit`` calls block,
  which is what bounds the memory of a streaming fusion to O(tiles in
  flight) instead of O(cube);
* :class:`ThreadStageExecutor` -- the same interface on host threads, used
  by the ``local`` and ``sim`` backend specs (no pickling, GIL-bound
  compute but identical results);
* a typed error taxonomy (:class:`StageError`, :class:`StageCrashError`)
  so a stream either completes or fails cleanly -- never hangs.

Determinism note: stage tasks must be *pure* module-level functions of
their arguments.  That is what makes crash recovery invisible -- a task
re-run on a fresh slot returns bit-identical results -- and what the crash
matrix tests assert stage by stage.

Crash-safe result transport
---------------------------
Multiprocessing queues cannot survive a SIGKILLed writer: a process killed
mid-``put`` leaves a partial pickle frame that wedges every later read,
and one killed between ``send_bytes`` and releasing the queue's shared
write-lock leaks a non-robust POSIX semaphore that blocks every *other*
process's feeder forever (both failure modes were observed under the
crash-matrix tests; the second is why ``concurrent.futures`` declares a
pool "broken" on any worker death).  Stage results therefore never touch
a queue at all: the child pickles the result (or the error text) to a
*spool file* on tmpfs and commits it with an atomic ``os.rename``, and
the parent's router discovers completions by scanning the spool
directory.  A kill either commits a complete file or leaves nothing, no
lock is shared on the result path, and the router can never block -- which
is what makes the "completes or fails typed, never hangs" contract hold.
"""

from __future__ import annotations

import itertools
import os
import pickle
import shutil
import tempfile
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, Optional, Tuple

from ..logging_utils import get_logger
from .errors import SCPError

_LOG = get_logger("scp.stages")

#: First element of a stage-task tuple deposited on a slot's inbox.
_STAGE_ASSIGN = "__scp_stage_assign__"

#: Spool-file suffixes a finished task commits (atomic rename) and the
#: router scans for.
_RESULT_SUFFIX = ".result"
_ERROR_SUFFIX = ".error"

#: Seconds a slot process may be observed dead without a committed spool
#: file before its task is re-dispatched (a result renamed just before
#: death is picked up by the scan within one poll tick).
_DEATH_CONFIRM_SECONDS = 0.25


def _spool_root() -> Optional[str]:
    """RAM-backed directory for result spool files where the OS has one."""
    return "/dev/shm" if os.path.isdir("/dev/shm") else None


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


class ThroughputEWMA:
    """Exponentially weighted moving average of a stage's throughput.

    Observations are ``(units, seconds)`` pairs (for the streaming engine:
    rows projected and the task's measured wall clock); :meth:`rate` is the
    smoothed units-per-second estimate the adaptive tile scheduler sizes
    the next tile from.  Thread-safe: stream drivers record from their own
    threads.
    """

    def __init__(self, alpha: float = 0.4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._alpha = alpha
        self._rate: Optional[float] = None
        self._observations = 0
        self._lock = threading.Lock()

    def record(self, units: float, seconds: float) -> None:
        """Fold one ``units``-in-``seconds`` observation into the average."""
        if units < 0:
            raise ValueError("units must be >= 0")
        observed = units / max(seconds, 1e-9)
        with self._lock:
            self._observations += 1
            if self._rate is None:
                self._rate = observed
            else:
                self._rate = self._alpha * observed + (1 - self._alpha) * self._rate

    @property
    def observations(self) -> int:
        with self._lock:
            return self._observations

    def rate(self) -> Optional[float]:
        """Smoothed units/second, or ``None`` before the first observation."""
        with self._lock:
            return self._rate


class StageError(SCPError):
    """A stage task failed and the failure is attributable to the task.

    Raised out of the task's future when the stage function itself raised
    (deterministic program error -- retrying would fail identically) or when
    the executor was closed underneath a pending task.
    """

    def __init__(self, stage: str, message: str) -> None:
        super().__init__(f"stage {stage!r}: {message}")
        self.stage = stage


class StageCrashError(StageError):
    """A stage task's worker process died and the retry budget is exhausted.

    Distinct from :class:`StageError` so callers can tell "my stage function
    is buggy" from "the execution substrate kept dying under me".
    """


def _commit_spool_file(spool_dir: str, name: str, payload: bytes) -> None:
    """Write ``payload`` and atomically rename into place (the commit)."""
    final = os.path.join(spool_dir, name)
    partial = final + ".tmp"
    with open(partial, "wb") as fh:
        fh.write(payload)
    os.rename(partial, final)


def try_run_stage(item: Any, outbox) -> bool:
    """Child-side protocol: execute ``item`` if it is a stage task.

    Called from the pool slot's idle loop for every inbox item.  Returns
    True when ``item`` was a stage task (handled here, loop continues),
    False when it is something else (a program assignment, a stale
    envelope) the caller should interpret itself.  ``outbox`` is unused --
    results travel through spool files precisely so no queue is shared
    with processes that may be SIGKILLed (see the module docstring).

    The stage function runs under a blanket exception guard: a failing task
    commits an error file and leaves the slot healthy and reusable, so one
    poisoned tile cannot take a worker down with it.
    """
    if not (isinstance(item, tuple) and len(item) == 7 and item[0] == _STAGE_ASSIGN):
        return False
    _, task_id, attempt, spool_dir, fn, args, kwargs = item
    stem = f"{task_id}-{attempt}"
    try:
        try:
            result = fn(*args, **kwargs)
        except Exception as err:  # noqa: BLE001 - task errors reported, not fatal
            _commit_spool_file(spool_dir, stem + _ERROR_SUFFIX,
                               repr(err).encode("utf-8", "replace"))
            return True
        _commit_spool_file(spool_dir, stem + _RESULT_SUFFIX,
                           pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # spool dir gone: the executor was closed underneath
        pass           # this task; keep the slot alive regardless
    return True


class _PendingStage:
    """Parent-side record of one in-flight stage task."""

    __slots__ = ("task_id", "stage", "fn", "args", "kwargs", "future",
                 "slot", "attempt", "first_seen_dead")

    def __init__(self, task_id: int, stage: str, fn: Callable,
                 args: Tuple, kwargs: Dict) -> None:
        self.task_id = task_id
        self.stage = stage
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.future: Future = Future()
        self.slot = None
        self.attempt = 0
        self.first_seen_dead: Optional[float] = None


class PoolStageExecutor:
    """Dispatch stage tasks onto :class:`~repro.scp.pool.ProcessPool` slots.

    Parameters
    ----------
    pool:
        The slot pool tasks borrow from.  The executor owns the pool's
        shared outbox for its lifetime (its router thread drains it), so a
        pool must not serve a :class:`~repro.scp.pool.PooledProcessBackend`
        run and a live stage executor at the same time -- the session layer
        guarantees this by pinning one engine per session.
    workers:
        Maximum stage tasks in flight; the bounded stage queue.  A
        ``submit`` beyond it blocks the caller (backpressure) until a slot
        frees up.
    max_retries:
        How many times a task whose slot *process died* is re-dispatched on
        a fresh slot before its future fails with :class:`StageCrashError`.
        Deterministic task errors are never retried.
    owns_pool:
        When True the pool is closed together with the executor (the
        one-shot engine path); sessions keep their pool alive across
        executors and pass False.
    """

    def __init__(self, pool, *, workers: int = 4, max_retries: int = 2,
                 owns_pool: bool = False, poll_interval: float = 0.002) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._pool = pool
        self._workers = workers
        self._max_retries = max_retries
        self._owns_pool = owns_pool
        self._poll_interval = poll_interval
        self._slots_free = threading.BoundedSemaphore(workers)
        self._pending: Dict[int, _PendingStage] = {}
        #: Crash-retry tasks waiting for a warm slot (see _flush_deferred).
        self._deferred: list = []
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._closed = False
        self._spool = tempfile.mkdtemp(prefix="scp-stages-", dir=_spool_root())
        # Pre-spawn the slot budget from the constructing thread: steady-state
        # dispatches then find idle slots instead of forking from driver or
        # router threads.  (Forking there is analysed safe for what the child
        # touches -- its own fresh inbox and the outbox, whose parent-side
        # thread locks are only ever used by putting processes -- but not
        # forking at all is cheaper to reason about; only the crash-retry
        # respawn still forks off-thread.)
        if not pool.closed:
            pool.ensure(workers)
        #: Tasks re-dispatched after their slot died (observable chaos metric).
        self.retries = 0
        #: Result-payload bytes read back through the spool, per stage.  The
        #: zero-copy benchmark's primary observable: with shared-memory
        #: output placement the ``project`` stage's entry collapses from
        #: O(pixels) pickled arrays to O(1) row-range acknowledgements.
        self.stage_payload_bytes: Dict[str, int] = {}
        self._kill_requests: Dict[str, int] = {}
        #: Injected kills that actually fired, per stage (chaos observability:
        #: recovery metrics diff this against ``retries``).
        self.kills_delivered: Dict[str, int] = {}
        self._router = threading.Thread(target=self._route, daemon=True,
                                        name="stage-router")
        self._router.start()

    # ------------------------------------------------------------------ API
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    def submit(self, stage: str, fn: Callable, *args, **kwargs) -> Future:
        """Queue one stage task; returns its future.

        Blocks while ``workers`` tasks are already in flight -- that is the
        bounded stage queue providing backpressure to the tile producers.
        """
        while not self._slots_free.acquire(timeout=0.1):
            if self._closed:
                raise StageError(stage, "stage executor is closed")
        record = _PendingStage(next(self._ids), stage, fn, args, kwargs)
        with self._lock:
            # Re-checked under the lock: close() drains _pending under the
            # same lock after setting _closed, so a racing submit either
            # lands before the drain (and is failed by it) or sees _closed
            # here -- a task can never be registered with no router left to
            # resolve it.
            if self._closed:
                self._slots_free.release()
                raise StageError(stage, "stage executor is closed")
            self._pending[record.task_id] = record
        try:
            self._dispatch(record, self._pool.acquire())
        except Exception:
            with self._lock:
                self._pending.pop(record.task_id, None)
            self._slots_free.release()
            raise
        return record.future

    def inject_kill(self, stage: str, kills: int = 1) -> None:
        """Chaos hook: SIGKILL the slot of the next ``kills`` tasks of
        ``stage`` right after dispatch, exactly as a mid-stage OOM kill or
        node loss would.  The crash-matrix tests drive every pipeline stage
        through this and assert the stream still completes bit-identically
        (retry budget permitting) or fails with a typed error.

        A request only fires when a task of ``stage`` actually dispatches.
        On a long-lived session executor an unconsumed request would
        otherwise leak into the *next* run (an empty stream, a stage name
        that never dispatches); callers injecting chaos should drain
        leftovers with :meth:`cancel_kills` at the end of each run --
        :attr:`pending_kills` makes the leak observable.
        """
        if kills < 1:
            raise ValueError("kills must be >= 1")
        with self._lock:
            self._kill_requests[stage] = self._kill_requests.get(stage, 0) + kills

    @property
    def pending_kills(self) -> Dict[str, int]:
        """Outstanding :meth:`inject_kill` requests that have not fired yet."""
        with self._lock:
            return {stage: count for stage, count
                    in self._kill_requests.items() if count > 0}

    def cancel_kills(self, stage: Optional[str] = None) -> Dict[str, int]:
        """Withdraw outstanding kill requests (all stages, or just ``stage``).

        Returns what was cancelled, so chaos harnesses can both clean up
        after a run and report how many injected kills never dispatched.
        """
        with self._lock:
            if stage is None:
                cancelled = {name: count for name, count
                             in self._kill_requests.items() if count > 0}
                self._kill_requests.clear()
            else:
                count = self._kill_requests.pop(stage, 0)
                cancelled = {stage: count} if count > 0 else {}
        return cancelled

    # ------------------------------------------------------------- dispatch
    def _dispatch(self, record: _PendingStage, slot) -> None:
        with self._lock:
            if self._pending.get(record.task_id) is not record:
                # close() failed this task between registration and dispatch;
                # hand the unused slot straight back.
                abandoned = True
            else:
                abandoned = False
                record.slot = slot
                record.first_seen_dead = None
                record.attempt += 1
            chaos = self._kill_requests.get(record.stage, 0)
            if chaos > 0 and not abandoned:
                if chaos == 1:
                    # Drop exhausted entries so pending_kills only reports
                    # requests that can still fire.
                    del self._kill_requests[record.stage]
                else:
                    self._kill_requests[record.stage] = chaos - 1
        if abandoned:
            self._pool.release(slot)
            return
        slot.inbox.put((_STAGE_ASSIGN, record.task_id, record.attempt,
                        self._spool, record.fn, record.args, record.kwargs))
        if chaos > 0:
            slot.process.kill()
            with self._lock:
                self.kills_delivered[record.stage] = (
                    self.kills_delivered.get(record.stage, 0) + 1)

    # --------------------------------------------------------------- router
    def _route(self) -> None:
        """Scan the spool for committed results; sweep for dead slots.

        Pure directory polling: the router shares no lock and reads no
        queue that a SIGKILLed worker could corrupt, so it can never block
        (the property the crash matrix leans on).
        """
        while not self._closed:
            if self._scan_spool():
                self._flush_deferred()  # the resolves just freed slots
            self._sweep()
            # Tight polling only while work is in flight; an idle session's
            # router must not spin the CPU.
            time.sleep(self._poll_interval if self._pending else 0.05)

    def _scan_spool(self) -> int:
        """Resolve every committed spool file; returns how many."""
        try:
            names = os.listdir(self._spool)
        except OSError:  # spool removed by close()
            return 0
        resolved = 0
        for name in names:
            if name.endswith(_RESULT_SUFFIX):
                error = False
            elif name.endswith(_ERROR_SUFFIX):
                error = True
            else:
                continue  # an in-progress .tmp
            stem = name.rsplit(".", 1)[0]
            try:
                task_id, attempt = (int(part) for part in stem.split("-"))
            except ValueError:  # pragma: no cover - foreign file in the spool
                continue
            self._resolve(task_id, attempt, os.path.join(self._spool, name),
                          error=error)
            resolved += 1
        return resolved

    def _resolve(self, task_id: int, attempt: int, path: str, *,
                 error: bool) -> None:
        with self._lock:
            record = self._pending.get(task_id)
            if record is None or attempt != record.attempt:
                # A stale file from an attempt whose slot was discarded
                # (e.g. killed right after committing, then retried): the
                # retry's file is the one that counts.
                _unlink_quietly(path)
                return
            del self._pending[task_id]
        self._pool.release(record.slot)
        self._slots_free.release()
        try:
            with open(path, "rb") as fh:
                payload = fh.read()
            with self._lock:
                self.stage_payload_bytes[record.stage] = (
                    self.stage_payload_bytes.get(record.stage, 0) + len(payload))
            if error:
                record.future.set_exception(StageError(
                    record.stage, payload.decode("utf-8", "replace")))
            else:
                record.future.set_result(pickle.loads(payload))
        except Exception as err:  # the rename committed, so this is abnormal
            record.future.set_exception(StageCrashError(
                record.stage, f"could not read spooled result: {err!r}"))
        finally:
            _unlink_quietly(path)

    def _sweep(self) -> None:
        """Detect slots that died mid-task; retry or fail their tasks."""
        now = time.monotonic()
        confirmed = []
        with self._lock:
            for record in self._pending.values():
                slot = record.slot
                if slot is None or slot.process.exitcode is None:
                    record.first_seen_dead = None
                    continue
                if record.first_seen_dead is None:
                    record.first_seen_dead = now
                elif now - record.first_seen_dead >= _DEATH_CONFIRM_SECONDS:
                    confirmed.append(record)
        for record in confirmed:
            self._pool.discard(record.slot)
            if record.attempt <= self._max_retries:
                self.retries += 1
                _LOG.warning("stage %r task %d lost its slot (attempt %d); "
                             "re-dispatching", record.stage, record.task_id,
                             record.attempt)
                with self._lock:
                    record.slot = None
                    record.first_seen_dead = None
                    self._deferred.append(record)
            else:
                self._fail(record, StageCrashError(
                    record.stage,
                    f"worker process died {record.attempt} time(s) running "
                    f"task {record.task_id}; retry budget exhausted"))
        self._flush_deferred()

    def _flush_deferred(self) -> None:
        """Re-dispatch crash-retry tasks onto warm slots as they free up.

        Run on the router thread, which must not *fork* new slot processes
        while driver threads are mid-put on other queues (a forked child can
        inherit feeder state that loses its first assignment -- observed as
        a wedged retry slot).  Retries therefore wait for an existing idle
        slot; only when every slot is gone (total loss) does the pool grow
        from here as a last resort.
        """
        while True:
            with self._lock:
                if not self._deferred:
                    return
                record = self._deferred[0]
            try:
                slot = self._pool.acquire(allow_spawn=False)
                if slot is None and self._pool.size == 0:
                    slot = self._pool.acquire()
            except Exception as err:  # pool closed underneath the retry
                with self._lock:
                    if self._deferred and self._deferred[0] is record:
                        self._deferred.pop(0)
                self._fail(record, StageCrashError(
                    record.stage,
                    f"could not re-dispatch after slot death: {err!r}"))
                continue
            if slot is None:
                return  # all slots busy; a resolve will free one, next tick
            with self._lock:
                if self._deferred and self._deferred[0] is record:
                    self._deferred.pop(0)
            self._dispatch(record, slot)

    def _fail(self, record: _PendingStage, error: StageError) -> None:
        with self._lock:
            if self._pending.pop(record.task_id, None) is None:
                return
        self._slots_free.release()
        record.future.set_exception(error)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Stop routing, fail pending tasks, discard their slots (idempotent).

        An abandoned stream may leave tasks mid-execution; their slots are
        discarded rather than released (a recycled slot must be genuinely
        idle) and their futures fail with a typed error, so nothing blocks
        interpreter shutdown on a queue feeder thread.
        """
        if self._closed:
            return
        self._closed = True
        self._router.join(timeout=2.0)
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            self._deferred.clear()
        for record in pending:
            if record.slot is not None:
                self._pool.discard(record.slot)
            if not record.future.done():
                record.future.set_exception(
                    StageError(record.stage, "stage executor closed with the "
                                             "task still in flight"))
        if self._owns_pool:
            self._pool.close()
        shutil.rmtree(self._spool, ignore_errors=True)

    def __enter__(self) -> "PoolStageExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ThreadStageExecutor:
    """The stage-executor interface on host threads.

    Used by the ``local`` and ``sim`` backend specs: no processes, no
    pickling, genuine overlap only where numpy releases the GIL -- but the
    exact same futures-and-backpressure contract, and bit-identical results
    (stage tasks are pure functions).
    """

    def __init__(self, *, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        from concurrent.futures import ThreadPoolExecutor
        self._executor = ThreadPoolExecutor(max_workers=workers,
                                            thread_name_prefix="stage")
        self._slots_free = threading.BoundedSemaphore(workers)
        self._closed = False
        self._in_flight = 0
        self._count_lock = threading.Lock()
        self.retries = 0  # interface parity; threads do not die under us
        #: Interface parity: thread results never touch a pickle spool.
        self.stage_payload_bytes: Dict[str, int] = {}
        #: Interface parity: no kill can ever fire on a thread executor.
        self.kills_delivered: Dict[str, int] = {}

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_flight(self) -> int:
        with self._count_lock:
            return self._in_flight

    def inject_kill(self, stage: str, kills: int = 1) -> None:
        """Interface parity with :class:`PoolStageExecutor`, but host threads
        cannot be SIGKILLed; crash-matrix scenarios need a process backend."""
        raise NotImplementedError(
            "thread-backed stage executors cannot lose a worker to SIGKILL; "
            "use a 'process' backend spec to exercise crash recovery")

    @property
    def pending_kills(self) -> Dict[str, int]:
        """Interface parity: no kill request can ever be queued here, so a
        reused thread executor can never leak one into the next run."""
        return {}

    def cancel_kills(self, stage: Optional[str] = None) -> Dict[str, int]:
        """Interface parity with :meth:`PoolStageExecutor.cancel_kills`."""
        return {}

    def submit(self, stage: str, fn: Callable, *args, **kwargs) -> Future:
        while not self._slots_free.acquire(timeout=0.1):
            if self._closed:
                raise StageError(stage, "stage executor is closed")
        if self._closed:
            self._slots_free.release()
            raise StageError(stage, "stage executor is closed")

        def run():
            try:
                return fn(*args, **kwargs)
            except StageError:
                raise
            except Exception as err:
                raise StageError(stage, repr(err)) from err

        # Relay through an outer future so a task cancelled by close()
        # surfaces as the module's typed StageError, exactly as on the
        # process-backed executor, instead of a raw CancelledError.
        outer: Future = Future()
        with self._count_lock:
            self._in_flight += 1
        try:
            inner = self._executor.submit(run)
        except RuntimeError as err:  # close() won the race to shutdown
            with self._count_lock:
                self._in_flight -= 1
            self._slots_free.release()
            raise StageError(stage, "stage executor is closed") from err

        def relay(finished: Future) -> None:
            with self._count_lock:
                self._in_flight -= 1
            self._slots_free.release()
            if finished.cancelled():
                outer.set_exception(StageError(
                    stage, "stage executor closed with the task still in flight"))
                return
            error = finished.exception()
            if error is not None:
                outer.set_exception(error)
            else:
                outer.set_result(finished.result())

        inner.add_done_callback(relay)
        return outer

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ThreadStageExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["PoolStageExecutor", "ThreadStageExecutor", "ThroughputEWMA",
           "StageError", "StageCrashError", "try_run_stage"]
