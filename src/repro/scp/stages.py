"""Stage-task execution over worker transports: the streaming engine's motor.

The SCP backends run *programs* -- long-lived effectful generators wired
into a manager/worker application.  The streaming pipeline engine
(:mod:`repro.core.streaming`) needs something much smaller: fire thousands
of short, pure *stage tasks* (screen this tile, accumulate this covariance
partial, colour-map that tile) at a bounded set of workers and collect
their results as futures, with several independent fusions in flight at
once.

This module provides that layer on top of the worker-transport seam
(:mod:`repro.scp.transport`):

* a tiny child-side task protocol (:func:`try_run_stage`) the pool's idle
  loop and the socket transport's workers both understand, so stage tasks
  execute on whatever substrate the transport provides;
* :class:`TransportStageExecutor` -- the parent-side dispatcher: it
  borrows a worker per task from its transport, routes committed results
  back to per-task futures, sweeps for workers that died mid-task
  (SIGKILL, OOM, whole-node loss) and transparently re-dispatches the
  task on a fresh worker, and enforces *backpressure*: at most
  ``workers`` tasks are in flight and further ``submit`` calls block,
  which is what bounds the memory of a streaming fusion to O(tiles in
  flight) instead of O(cube);
* :class:`PoolStageExecutor` / :class:`ThreadStageExecutor` -- the
  historical entry points, now thin shims binding the unified executor
  to the ``forked-process`` and ``inprocess`` transports;
* :class:`StageAccountingMixin` -- the kill-request bookkeeping and
  per-stage observability counters every executor shares (one copy,
  identical semantics on threads and processes);
* a typed error taxonomy (:class:`StageError`, :class:`StageCrashError`)
  so a stream either completes or fails cleanly -- never hangs.

Determinism note: stage tasks must be *pure* module-level functions of
their arguments.  That is what makes crash recovery invisible -- a task
re-run on a fresh worker returns bit-identical results -- and what the
crash matrix tests assert stage by stage.

Crash-safe result transport
---------------------------
Multiprocessing queues cannot survive a SIGKILLed writer: a process killed
mid-``put`` leaves a partial pickle frame that wedges every later read,
and one killed between ``send_bytes`` and releasing the queue's shared
write-lock leaks a non-robust POSIX semaphore that blocks every *other*
process's feeder forever (both failure modes were observed under the
crash-matrix tests; the second is why ``concurrent.futures`` declares a
pool "broken" on any worker death).  Stage results therefore never touch
a queue at all: the child pickles the result (or the error text) to a
*spool file* on tmpfs and commits it with an atomic ``os.rename``
(:func:`repro.scp.serialization.commit_spool_file`), and the parent's
router discovers completions by scanning the spool directory.  A kill
either commits a complete file or leaves nothing, no lock is shared on
the result path, and the router can never block -- which is what makes
the "completes or fails typed, never hangs" contract hold.  This
invariant now lives in :mod:`repro.scp.transport`, where every transport
(forked pool slots and socket node agents alike) reuses it.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..logging_utils import get_logger
from .errors import SCPError
from .serialization import (ERROR_SUFFIX as _ERROR_SUFFIX,
                            RESULT_SUFFIX as _RESULT_SUFFIX,
                            commit_spool_file as _commit_spool_file)
from .transport import (STAGE_ASSIGN as _STAGE_ASSIGN, CommittedResult,
                        ForkedProcessTransport, InProcessTransport, TaskFrame,
                        WorkerTransport)

_LOG = get_logger("scp.stages")

#: Seconds a worker may be observed dead without a committed spool file
#: before its task is re-dispatched (a result committed just before death
#: is picked up by the scan within one poll tick).
_DEATH_CONFIRM_SECONDS = 0.25


class ThroughputEWMA:
    """Exponentially weighted moving average of a stage's throughput.

    Observations are ``(units, seconds)`` pairs (for the streaming engine:
    rows projected and the task's measured wall clock); :meth:`rate` is the
    smoothed units-per-second estimate the adaptive tile scheduler sizes
    the next tile from.  Thread-safe: stream drivers record from their own
    threads.
    """

    def __init__(self, alpha: float = 0.4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._alpha = alpha
        self._rate: Optional[float] = None
        self._observations = 0
        self._lock = threading.Lock()

    def record(self, units: float, seconds: float) -> None:
        """Fold one ``units``-in-``seconds`` observation into the average."""
        if units < 0:
            raise ValueError("units must be >= 0")
        observed = units / max(seconds, 1e-9)
        with self._lock:
            self._observations += 1
            if self._rate is None:
                self._rate = observed
            else:
                self._rate = self._alpha * observed + (1 - self._alpha) * self._rate

    @property
    def observations(self) -> int:
        with self._lock:
            return self._observations

    def rate(self) -> Optional[float]:
        """Smoothed units/second, or ``None`` before the first observation."""
        with self._lock:
            return self._rate


class StageError(SCPError):
    """A stage task failed and the failure is attributable to the task.

    Raised out of the task's future when the stage function itself raised
    (deterministic program error -- retrying would fail identically) or when
    the executor was closed underneath a pending task.
    """

    def __init__(self, stage: str, message: str) -> None:
        super().__init__(f"stage {stage!r}: {message}")
        self.stage = stage


class StageCrashError(StageError):
    """A stage task's worker process died and the retry budget is exhausted.

    Distinct from :class:`StageError` so callers can tell "my stage function
    is buggy" from "the execution substrate kept dying under me".
    """


def try_run_stage(item: Any, outbox) -> bool:
    """Child-side protocol: execute ``item`` if it is a stage task.

    Called from the worker's idle loop for every inbox item (pool slots
    and socket-transport workers share this function).  Returns True when
    ``item`` was a stage task (handled here, loop continues), False when
    it is something else (a program assignment, a stale envelope) the
    caller should interpret itself.  ``outbox`` is unused -- results
    travel through spool files precisely so no queue is shared with
    processes that may be SIGKILLed (see the module docstring).

    The stage function runs under a blanket exception guard: a failing task
    commits an error file and leaves the worker healthy and reusable, so
    one poisoned tile cannot take a worker down with it.
    """
    if not (isinstance(item, tuple) and len(item) == 7 and item[0] == _STAGE_ASSIGN):
        return False
    _, task_id, attempt, spool_dir, fn, args, kwargs = item
    stem = f"{task_id}-{attempt}"
    try:
        try:
            result = fn(*args, **kwargs)
        except Exception as err:  # noqa: BLE001 - task errors reported, not fatal
            _commit_spool_file(spool_dir, stem + _ERROR_SUFFIX,
                               repr(err).encode("utf-8", "replace"))
            return True
        _commit_spool_file(spool_dir, stem + _RESULT_SUFFIX,
                           pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # spool dir gone: the executor was closed underneath
        pass           # this task; keep the worker alive regardless
    return True


class _PendingStage:
    """Parent-side record of one in-flight stage task."""

    __slots__ = ("task_id", "stage", "fn", "args", "kwargs", "future",
                 "ref", "attempt", "first_seen_dead", "dispatched_at")

    def __init__(self, task_id: int, stage: str, fn: Callable,
                 args: Tuple, kwargs: Dict) -> None:
        self.task_id = task_id
        self.stage = stage
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.future: Future = Future()
        self.ref = None
        self.attempt = 0
        self.first_seen_dead: Optional[float] = None
        self.dispatched_at: float = 0.0


def _validate_executor_params(workers: int, max_retries: int) -> None:
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")


class StageAccountingMixin:
    """Kill-request accounting and per-stage observability counters.

    ``PoolStageExecutor`` and ``ThreadStageExecutor`` used to carry their
    own (divergent) copies of this bookkeeping; it now lives in exactly
    one place so every executor -- whatever its transport -- exposes
    identical semantics:

    * :meth:`inject_kill` validates its count *first* (``ValueError`` on
      ``kills < 1`` everywhere), then rejects transports whose workers
      cannot be SIGKILLed (``NotImplementedError`` on host threads);
    * :attr:`pending_kills` / :meth:`cancel_kills` report and withdraw
      requests that have not fired, so a reused session executor can
      never leak a kill into its next run;
    * :attr:`retries`, :attr:`kills_delivered`,
      :attr:`stage_payload_bytes` and :attr:`stage_throughput` are the
      chaos/performance observables the scenario simulator and the
      benchmarks read.

    The host class provides ``self._lock`` (a ``threading.Lock``) and a
    ``supports_kill`` property.
    """

    def _init_accounting(self) -> None:
        #: Tasks re-dispatched after their worker died (chaos metric).
        self.retries = 0
        #: Result-payload bytes read back through the spool, per stage.
        #: The zero-copy benchmark's primary observable: with shared-memory
        #: output placement the ``project`` stage's entry collapses from
        #: O(pixels) pickled arrays to O(1) row-range acknowledgements.
        #: Stays empty on in-process transports (nothing is serialised).
        self.stage_payload_bytes: Dict[str, int] = {}
        #: Injected kills that actually fired, per stage (chaos
        #: observability: recovery metrics diff this against ``retries``).
        self.kills_delivered: Dict[str, int] = {}
        #: Smoothed tasks/second per stage (heterogeneous-worker signal).
        self.stage_throughput: Dict[str, ThroughputEWMA] = {}
        self._kill_requests: Dict[str, int] = {}

    @property
    def supports_kill(self) -> bool:  # overridden by the host class
        return False

    def inject_kill(self, stage: str, kills: int = 1) -> None:
        """Chaos hook: SIGKILL the worker of the next ``kills`` tasks of
        ``stage`` right after dispatch, exactly as a mid-stage OOM kill or
        node loss would.  The crash-matrix tests drive every pipeline stage
        through this and assert the stream still completes bit-identically
        (retry budget permitting) or fails with a typed error.

        A request only fires when a task of ``stage`` actually dispatches.
        On a long-lived session executor an unconsumed request would
        otherwise leak into the *next* run (an empty stream, a stage name
        that never dispatches); callers injecting chaos should drain
        leftovers with :meth:`cancel_kills` at the end of each run --
        :attr:`pending_kills` makes the leak observable.
        """
        if kills < 1:
            raise ValueError("kills must be >= 1")
        if not self.supports_kill:
            raise NotImplementedError(
                "thread-backed stage executors cannot lose a worker to "
                "SIGKILL; use a 'process' or 'socket' backend spec to "
                "exercise crash recovery")
        with self._lock:
            self._kill_requests[stage] = self._kill_requests.get(stage, 0) + kills

    @property
    def pending_kills(self) -> Dict[str, int]:
        """Outstanding :meth:`inject_kill` requests that have not fired yet."""
        with self._lock:
            return {stage: count for stage, count
                    in self._kill_requests.items() if count > 0}

    def cancel_kills(self, stage: Optional[str] = None) -> Dict[str, int]:
        """Withdraw outstanding kill requests (all stages, or just ``stage``).

        Returns what was cancelled, so chaos harnesses can both clean up
        after a run and report how many injected kills never dispatched.
        """
        with self._lock:
            if stage is None:
                cancelled = {name: count for name, count
                             in self._kill_requests.items() if count > 0}
                self._kill_requests.clear()
            else:
                count = self._kill_requests.pop(stage, 0)
                cancelled = {stage: count} if count > 0 else {}
        return cancelled

    def _take_kill_request_locked(self, stage: str) -> bool:
        """Consume one kill request for ``stage`` (caller holds the lock)."""
        count = self._kill_requests.get(stage, 0)
        if count <= 0:
            return False
        if count == 1:
            # Drop exhausted entries so pending_kills only reports
            # requests that can still fire.
            del self._kill_requests[stage]
        else:
            self._kill_requests[stage] = count - 1
        return True

    def _note_payload(self, stage: str, nbytes: int) -> None:
        with self._lock:
            self.stage_payload_bytes[stage] = (
                self.stage_payload_bytes.get(stage, 0) + nbytes)

    def _note_kill_delivered(self, stage: str) -> None:
        with self._lock:
            self.kills_delivered[stage] = self.kills_delivered.get(stage, 0) + 1

    def _note_task_done(self, stage: str, dispatched_at: float) -> None:
        ewma = self.stage_throughput.get(stage)
        if ewma is None:
            with self._lock:
                ewma = self.stage_throughput.setdefault(stage, ThroughputEWMA())
        ewma.record(1.0, time.monotonic() - dispatched_at)


class TransportStageExecutor(StageAccountingMixin):
    """Dispatch stage tasks onto the workers of a :class:`WorkerTransport`.

    Parameters
    ----------
    transport:
        The worker substrate.  The executor owns it for its lifetime
        (``close()`` closes it); a transport wrapping a shared resource
        -- e.g. a session's :class:`~repro.scp.pool.ProcessPool` -- keeps
        that resource alive through its own ``owns_pool`` flag.
    workers:
        Maximum stage tasks in flight; the bounded stage queue.  A
        ``submit`` beyond it blocks the caller (backpressure) until a
        worker frees up.
    max_retries:
        How many times a task whose *worker died* is re-dispatched on a
        fresh worker before its future fails with
        :class:`StageCrashError`.  Deterministic task errors are never
        retried.
    """

    def __init__(self, transport: WorkerTransport, *, workers: int = 4,
                 max_retries: int = 2, poll_interval: float = 0.002) -> None:
        _validate_executor_params(workers, max_retries)
        self._transport = transport
        self._workers = workers
        self._max_retries = max_retries
        self._poll_interval = poll_interval
        self._slots_free = threading.BoundedSemaphore(workers)
        self._pending: Dict[int, _PendingStage] = {}
        #: Crash-retry tasks waiting for a warm worker (see _flush_deferred).
        self._deferred: List[_PendingStage] = []
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._closed = False
        self._init_accounting()
        # Pre-provision the worker budget from the constructing thread:
        # steady-state dispatches then find idle workers instead of
        # spawning from driver or router threads (forking there can race
        # other threads' queue feeders; only the crash-retry respawn
        # still grows the substrate off-thread, as a last resort).
        try:
            transport.start(workers)
        except Exception:
            transport.close()
            raise
        self._router = threading.Thread(target=self._route, daemon=True,
                                        name="stage-router")
        self._router.start()

    # ------------------------------------------------------------------ API
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def transport(self) -> WorkerTransport:
        """The worker transport this executor dispatches through."""
        return self._transport

    @property
    def supports_kill(self) -> bool:
        """Whether :meth:`inject_kill` can SIGKILL a real worker."""
        return self._transport.supports_kill

    @property
    def uses_processes(self) -> bool:
        """Whether results cross a process boundary (zero-copy payoff)."""
        return self._transport.uses_processes

    def submit(self, stage: str, fn: Callable, *args, **kwargs) -> Future:
        """Queue one stage task; returns its future.

        Blocks while ``workers`` tasks are already in flight -- that is the
        bounded stage queue providing backpressure to the tile producers.
        """
        while not self._slots_free.acquire(timeout=0.1):
            if self._closed:
                raise StageError(stage, "stage executor is closed")
        record = _PendingStage(next(self._ids), stage, fn, args, kwargs)
        with self._lock:
            # Re-checked under the lock: close() drains _pending under the
            # same lock after setting _closed, so a racing submit either
            # lands before the drain (and is failed by it) or sees _closed
            # here -- a task can never be registered with no router left to
            # resolve it.
            if self._closed:
                self._slots_free.release()
                raise StageError(stage, "stage executor is closed")
            self._pending[record.task_id] = record
        try:
            ref = self._transport.acquire()
            if ref is None:
                raise StageError(stage, "no worker available to dispatch")
            self._dispatch(record, ref)
        except Exception:
            with self._lock:
                self._pending.pop(record.task_id, None)
            self._slots_free.release()
            raise
        return record.future

    # ------------------------------------------------------------- dispatch
    def _dispatch(self, record: _PendingStage, ref) -> None:
        with self._lock:
            if self._pending.get(record.task_id) is not record:
                # close() failed this task between registration and dispatch;
                # hand the unused worker straight back.
                abandoned = True
                chaos = False
            else:
                abandoned = False
                record.ref = ref
                record.first_seen_dead = None
                record.attempt += 1
                record.dispatched_at = time.monotonic()
                chaos = self._take_kill_request_locked(record.stage)
        if abandoned:
            self._transport.release(ref)
            return
        self._transport.send(ref, TaskFrame(
            task_id=record.task_id, attempt=record.attempt, stage=record.stage,
            fn=record.fn, args=record.args, kwargs=record.kwargs))
        if chaos:
            self._transport.kill(ref)
            self._note_kill_delivered(record.stage)

    # --------------------------------------------------------------- router
    def _route(self) -> None:
        """Collect committed results; sweep for dead workers.

        The router reads no queue that a SIGKILLed worker could corrupt --
        commits arrive through the transport's crash-safe path (spool scan
        or in-memory hand-off), so it can never block (the property the
        crash matrix leans on).
        """
        while not self._closed:
            resolved = 0
            for committed in self._transport.poll_committed():
                if self._resolve(committed):
                    resolved += 1
            if resolved:
                self._flush_deferred()  # the resolves just freed workers
            self._sweep()
            # Tight polling only while work is in flight; an idle session's
            # router must not spin the CPU.
            self._transport.wait(self._poll_interval if self._pending else 0.05)

    def _resolve(self, committed: CommittedResult) -> bool:
        with self._lock:
            record = self._pending.get(committed.task_id)
            if record is None or committed.attempt != record.attempt:
                # A stale commit from an attempt whose worker was discarded
                # (e.g. killed right after committing, then retried): the
                # retry's commit is the one that counts.  The transport
                # already consumed the stale file.
                return False
            del self._pending[committed.task_id]
        if record.ref is not None:
            self._transport.release(record.ref)
        self._slots_free.release()
        if committed.payload_nbytes:
            self._note_payload(record.stage, committed.payload_nbytes)
        self._note_task_done(record.stage, record.dispatched_at)
        if committed.crash:  # the commit happened, so this is abnormal
            record.future.set_exception(StageCrashError(
                record.stage, str(committed.value)))
        elif committed.error:
            value = committed.value
            if isinstance(value, StageError):
                record.future.set_exception(value)
            elif isinstance(value, BaseException):
                error = StageError(record.stage, repr(value))
                error.__cause__ = value
                record.future.set_exception(error)
            else:
                record.future.set_exception(StageError(record.stage, str(value)))
        else:
            record.future.set_result(committed.value)
        return True

    def _sweep(self) -> None:
        """Detect workers that died mid-task; retry or fail their tasks."""
        now = time.monotonic()
        confirmed = []
        with self._lock:
            for record in self._pending.values():
                if record.ref is None or self._transport.probe(record.ref):
                    record.first_seen_dead = None
                    continue
                if record.first_seen_dead is None:
                    record.first_seen_dead = now
                elif now - record.first_seen_dead >= _DEATH_CONFIRM_SECONDS:
                    confirmed.append(record)
        for record in confirmed:
            self._transport.discard(record.ref)
            if record.attempt <= self._max_retries:
                self.retries += 1
                _LOG.warning("stage %r task %d lost its worker (attempt %d); "
                             "re-dispatching", record.stage, record.task_id,
                             record.attempt)
                with self._lock:
                    record.ref = None
                    record.first_seen_dead = None
                    self._deferred.append(record)
            else:
                self._fail(record, StageCrashError(
                    record.stage,
                    f"worker process died {record.attempt} time(s) running "
                    f"task {record.task_id}; retry budget exhausted"))
        self._flush_deferred()

    def _flush_deferred(self) -> None:
        """Re-dispatch crash-retry tasks onto warm workers as they free up.

        Run on the router thread, which must not *spawn* new worker
        processes while driver threads are mid-put on other queues (a
        forked child can inherit feeder state that loses its first
        assignment -- observed as a wedged retry slot).  Retries therefore
        wait for an existing idle worker; only when every worker is gone
        (total loss -- a dead pool, or a SIGKILLed node agent) does the
        substrate grow or restart from here as a last resort.
        """
        while True:
            with self._lock:
                if not self._deferred:
                    return
                record = self._deferred[0]
            try:
                ref = self._transport.acquire(spawn=False)
                if ref is None and self._transport.alive_workers() == 0:
                    ref = self._transport.acquire()
            except Exception as err:  # transport closed underneath the retry
                with self._lock:
                    if self._deferred and self._deferred[0] is record:
                        self._deferred.pop(0)
                self._fail(record, StageCrashError(
                    record.stage,
                    f"could not re-dispatch after slot death: {err!r}"))
                continue
            if ref is None:
                return  # all workers busy; a resolve will free one, next tick
            with self._lock:
                if self._deferred and self._deferred[0] is record:
                    self._deferred.pop(0)
            self._dispatch(record, ref)

    def _fail(self, record: _PendingStage, error: StageError) -> None:
        with self._lock:
            if self._pending.pop(record.task_id, None) is None:
                return
        self._slots_free.release()
        record.future.set_exception(error)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Stop routing, settle pending tasks, close the transport
        (idempotent).

        Killable transports (processes): an abandoned stream may leave
        tasks mid-execution; their workers are discarded rather than
        released (a recycled worker must be genuinely idle) and their
        futures fail with a typed error, so nothing blocks interpreter
        shutdown on a queue feeder thread.

        Drain-on-close transports (host threads): running tasks cannot be
        abandoned, so the transport is closed first -- which waits for
        them -- and their already-committed results resolve normally.
        """
        if self._closed:
            return
        self._closed = True
        self._router.join(timeout=2.0)
        if getattr(self._transport, "drain_on_close", False):
            self._transport.close()  # waits for running thread tasks
            for committed in self._transport.poll_committed():
                self._resolve(committed)
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            self._deferred.clear()
        for record in pending:
            if record.ref is not None:
                self._transport.discard(record.ref)
            if not record.future.done():
                record.future.set_exception(
                    StageError(record.stage, "stage executor closed with the "
                                             "task still in flight"))
        self._transport.close()

    def __enter__(self) -> "TransportStageExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PoolStageExecutor(TransportStageExecutor):
    """Stage tasks on :class:`~repro.scp.pool.ProcessPool` slots.

    The historical entry point for the ``process:N`` path, now a thin
    binding of :class:`TransportStageExecutor` to a
    :class:`~repro.scp.transport.ForkedProcessTransport`.

    Parameters
    ----------
    pool:
        The slot pool tasks borrow from.  The executor owns the pool's
        spool transport for its lifetime; a pool must not serve a
        :class:`~repro.scp.pool.PooledProcessBackend` run and a live
        stage executor at the same time -- the session layer guarantees
        this by pinning one engine per session.
    owns_pool:
        When True the pool is closed together with the executor (the
        one-shot engine path); sessions keep their pool alive across
        executors and pass False.
    """

    def __init__(self, pool, *, workers: int = 4, max_retries: int = 2,
                 owns_pool: bool = False, poll_interval: float = 0.002) -> None:
        _validate_executor_params(workers, max_retries)
        super().__init__(ForkedProcessTransport(pool, owns_pool=owns_pool),
                         workers=workers, max_retries=max_retries,
                         poll_interval=poll_interval)


class ThreadStageExecutor(TransportStageExecutor):
    """The stage-executor interface on host threads.

    Used by the ``local`` and ``sim`` backend specs: no processes, no
    pickling, genuine overlap only where numpy releases the GIL -- but the
    exact same futures-and-backpressure contract, and bit-identical results
    (stage tasks are pure functions).  Now a thin binding of
    :class:`TransportStageExecutor` to an
    :class:`~repro.scp.transport.InProcessTransport`.
    """

    def __init__(self, *, workers: int = 4) -> None:
        _validate_executor_params(workers, 0)
        super().__init__(InProcessTransport(workers=workers), workers=workers,
                         max_retries=0)


__all__ = ["PoolStageExecutor", "StageAccountingMixin", "StageCrashError",
           "StageError", "ThreadStageExecutor", "ThroughputEWMA",
           "TransportStageExecutor", "try_run_stage"]
