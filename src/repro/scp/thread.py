"""Thread specifications and physical naming.

A *logical thread* is what the application declares: the manager, worker 3,
the attack monitor.  A *physical thread* (or replica) is one executing copy
of a logical thread, hosted on a particular node.  The resiliency layer may
create several physical replicas per logical thread (the paper's "shadow
threads", Figure 1) and regenerate them after failures, so the two notions
are kept strictly separate throughout the runtime.

Physical identifiers have the form ``"<logical>#<replica>"`` (for example
``"worker.3#1"``); :func:`physical_name` and :func:`parse_physical` convert
between the two representations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional, Sequence, Tuple

#: Type of a thread program: a generator function taking the backend context.
ThreadProgram = Callable[..., Generator]

_SEPARATOR = "#"


def physical_name(logical: str, replica: int) -> str:
    """Return the physical identifier of ``replica`` of ``logical``."""
    if _SEPARATOR in logical:
        raise ValueError(f"logical thread names may not contain {_SEPARATOR!r}: {logical!r}")
    if replica < 0:
        raise ValueError("replica index must be non-negative")
    return f"{logical}{_SEPARATOR}{replica}"


def parse_physical(physical_id: str) -> Tuple[str, int]:
    """Split a physical identifier into ``(logical, replica)``."""
    if _SEPARATOR not in physical_id:
        # Unreplicated identifiers are accepted for convenience.
        return physical_id, 0
    logical, _, replica = physical_id.rpartition(_SEPARATOR)
    try:
        return logical, int(replica)
    except ValueError:
        raise ValueError(f"malformed physical thread id {physical_id!r}") from None


@dataclass
class ThreadSpec:
    """Declaration of one logical thread of an application.

    Attributes
    ----------
    name:
        Logical name, unique within the application.
    program:
        Generator function implementing the thread; called as
        ``program(ctx, **params)``.
    params:
        Keyword arguments passed to the program (problem data, configuration).
    replicas:
        Number of physical replicas to create initially (resiliency level).
    placement:
        Optional sequence of node names, one per replica.  ``None`` lets the
        backend/resource manager choose.
    memory_bytes:
        Estimated resident size of the thread's state; used by node memory
        accounting and placement.
    critical:
        Whether this thread is mission critical, i.e. eligible for replication
        and regeneration.  The paper never replicates the manager ("the
        sensor itself"), so the fusion application marks it non-critical.
    daemon:
        Daemon threads (failure detectors, monitors) do not keep the run
        alive: the run finishes when every non-daemon thread has returned.
    """

    name: str
    program: ThreadProgram
    params: Dict[str, Any] = field(default_factory=dict)
    replicas: int = 1
    placement: Optional[Sequence[str]] = None
    memory_bytes: int = 0
    critical: bool = True
    daemon: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("thread name must be non-empty")
        if _SEPARATOR in self.name:
            raise ValueError(f"thread names may not contain {_SEPARATOR!r}")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.placement is not None and len(self.placement) < self.replicas:
            raise ValueError(
                f"placement for {self.name!r} lists {len(self.placement)} nodes "
                f"but {self.replicas} replicas were requested")

    def physical_ids(self) -> Tuple[str, ...]:
        """Physical identifiers of the initially created replicas."""
        return tuple(physical_name(self.name, r) for r in range(self.replicas))

    def with_replicas(self, replicas: int,
                      placement: Optional[Sequence[str]] = None) -> "ThreadSpec":
        """Return a copy with a different replication level."""
        return ThreadSpec(
            name=self.name,
            program=self.program,
            params=self.params,
            replicas=replicas,
            placement=placement if placement is not None else self.placement,
            memory_bytes=self.memory_bytes,
            critical=self.critical,
            daemon=self.daemon,
        )


__all__ = ["ThreadSpec", "ThreadProgram", "physical_name", "parse_physical"]
