"""Explicit communication-structure description.

The paper argues that reconfiguring a distributed application on the fly
requires "an explicit representation of the communication structure used by
the application".  :class:`CommunicationStructure` is that representation: a
machine-independent, declarative description of the logical threads of an
application and the channels between them.  The runtime uses it to validate
sends (is the destination part of the declared structure?), the resiliency
layer mutates it when replicas are regenerated on new nodes, and tests can
assert structural invariants on it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from .errors import UnknownDestinationError


@dataclass(frozen=True)
class ChannelDecl:
    """A declared logical channel ``src --(port)--> dst``."""

    src: str
    dst: str
    port: str

    def reversed(self) -> "ChannelDecl":
        return ChannelDecl(src=self.dst, dst=self.src, port=self.port)


class CommunicationStructure:
    """Declarative graph of logical threads and channels.

    The structure is *logical*: replicas of a thread share the logical name
    and therefore the declared channels.  Placement (which node hosts which
    physical replica) is tracked separately by the backend/cluster; this
    object only records the application-visible shape, which is exactly what
    must be preserved across reconfigurations.
    """

    def __init__(self) -> None:
        self._threads: Set[str] = set()
        self._channels: Set[ChannelDecl] = set()
        self._generation = 0

    # --------------------------------------------------------------- threads
    @property
    def threads(self) -> List[str]:
        return sorted(self._threads)

    @property
    def channels(self) -> List[ChannelDecl]:
        return sorted(self._channels, key=lambda c: (c.src, c.dst, c.port))

    @property
    def generation(self) -> int:
        """Incremented every time the structure is mutated (reconfiguration)."""
        return self._generation

    def add_thread(self, name: str) -> None:
        if not name:
            raise ValueError("thread name must be non-empty")
        self._threads.add(name)
        self._generation += 1

    def remove_thread(self, name: str) -> None:
        """Remove a logical thread and every channel touching it."""
        self._threads.discard(name)
        self._channels = {c for c in self._channels if c.src != name and c.dst != name}
        self._generation += 1

    def has_thread(self, name: str) -> bool:
        return name in self._threads

    # -------------------------------------------------------------- channels
    def connect(self, src: str, dst: str, port: str, *, bidirectional: bool = False) -> None:
        """Declare that ``src`` may send to ``dst`` on ``port``."""
        for endpoint in (src, dst):
            if endpoint not in self._threads:
                raise UnknownDestinationError(
                    f"cannot connect unknown thread {endpoint!r}; declare it first")
        decl = ChannelDecl(src, dst, port)
        self._channels.add(decl)
        if bidirectional:
            self._channels.add(decl.reversed())
        self._generation += 1

    def disconnect(self, src: str, dst: str, port: Optional[str] = None) -> None:
        self._channels = {
            c for c in self._channels
            if not (c.src == src and c.dst == dst and (port is None or c.port == port))
        }
        self._generation += 1

    def allows(self, src: str, dst: str, port: str) -> bool:
        """True when the declared structure contains the channel."""
        return ChannelDecl(src, dst, port) in self._channels

    def destinations_of(self, src: str) -> List[Tuple[str, str]]:
        """``(dst, port)`` pairs reachable from ``src``."""
        return sorted({(c.dst, c.port) for c in self._channels if c.src == src})

    def sources_of(self, dst: str) -> List[Tuple[str, str]]:
        """``(src, port)`` pairs that may send to ``dst``."""
        return sorted({(c.src, c.port) for c in self._channels if c.dst == dst})

    def neighbours(self, name: str) -> Set[str]:
        out = {c.dst for c in self._channels if c.src == name}
        inc = {c.src for c in self._channels if c.dst == name}
        return out | inc

    # ------------------------------------------------------------- factories
    @classmethod
    def manager_worker(cls, workers: int, *, manager: str = "manager",
                       worker_prefix: str = "worker") -> "CommunicationStructure":
        """The paper's manager/worker star topology.

        The manager owns ``task`` channels towards every worker and every
        worker owns ``result`` and ``request`` channels back to the manager.
        """
        structure = cls()
        structure.add_thread(manager)
        for i in range(workers):
            name = f"{worker_prefix}.{i}"
            structure.add_thread(name)
            structure.connect(manager, name, "task")
            structure.connect(manager, name, "control")
            structure.connect(name, manager, "result")
            structure.connect(name, manager, "request")
        return structure

    # -------------------------------------------------------------- validity
    def validate(self) -> None:
        """Check internal consistency (every channel endpoint is declared)."""
        for channel in self._channels:
            for endpoint in (channel.src, channel.dst):
                if endpoint not in self._threads:
                    raise UnknownDestinationError(
                        f"channel {channel} references undeclared thread {endpoint!r}")

    def copy(self) -> "CommunicationStructure":
        clone = CommunicationStructure()
        clone._threads = set(self._threads)
        clone._channels = set(self._channels)
        clone._generation = self._generation
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CommunicationStructure threads={len(self._threads)} "
                f"channels={len(self._channels)} gen={self._generation}>")


__all__ = ["ChannelDecl", "CommunicationStructure"]
